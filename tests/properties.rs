//! Property-based tests over the core data structures and invariants,
//! spanning crates (cache model, DRI resizing semantics, circuit
//! monotonicity, workload generation).

use cache_sim::cache::{AccessKind, Cache};
use cache_sim::config::CacheConfig;
use cache_sim::icache::InstCache;
use cache_sim::replacement::ReplacementPolicy;
use dri_core::{DriConfig, DriICache, ThrottleConfig};
use proptest::prelude::*;
use sram_circuit::cell::SramCell;
use sram_circuit::gating::GatedVddConfig;
use sram_circuit::process::Process;
use sram_circuit::units::{Celsius, Volts};

fn arb_cache_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..=4, 0u32..=2, 0u32..=2).prop_map(|(size_pow, block_pow, assoc_pow)| {
        CacheConfig::new(
            1024 << size_pow,
            32 << block_pow,
            1 << assoc_pow,
            1,
            ReplacementPolicy::Lru,
        )
    })
}

proptest! {
    #[test]
    fn cache_access_after_fill_always_hits(
        cfg in arb_cache_config(),
        addrs in prop::collection::vec(0u64..1 << 20, 1..200),
    ) {
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            let _ = cache.access(a, AccessKind::Read);
            // Immediately after an access the block must be resident.
            prop_assert!(cache.probe(a));
            prop_assert!(cache.access(a, AccessKind::Read).hit);
        }
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        cfg in arb_cache_config(),
        addrs in prop::collection::vec(0u64..1 << 22, 1..300),
    ) {
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            let _ = cache.access(a, AccessKind::Read);
        }
        let capacity = (cfg.size_bytes / cfg.block_bytes) as usize;
        prop_assert!(cache.occupancy() <= capacity);
        // Hits + misses must equal accesses.
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
    }

    #[test]
    fn cache_eviction_reports_exactly_the_displaced_block(
        addrs in prop::collection::vec(0u64..1 << 22, 1..200),
    ) {
        // Direct-mapped: any eviction must name a block that conflicts
        // (same set) with the incoming one.
        let cfg = CacheConfig::new(4096, 32, 1, 1, ReplacementPolicy::Lru);
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            let out = cache.access(a, AccessKind::Read);
            if let Some(ev) = out.evicted {
                let sets = cfg.num_sets();
                prop_assert_eq!(
                    ev.block_addr & (sets - 1),
                    cfg.block_addr(a) & (sets - 1),
                    "victim must share the set"
                );
                prop_assert!(!cache.probe(ev.block_addr << cfg.offset_bits()));
            }
        }
    }

    #[test]
    fn dri_blocks_in_surviving_sets_survive_downsizing(
        set_idx in 0u64..32,
        tag_bits in 0u64..16,
    ) {
        // Any block whose (smallest-size) set index is below the new size
        // must still hit after a downsize — the resizing-tag-bit argument
        // of paper §2.2.
        let cfg = DriConfig {
            max_size_bytes: 8192,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            size_bound_bytes: 1024,
            miss_bound: 5,
            sense_interval: 1000,
            divisibility: 2,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        };
        let mut dri = DriICache::new(cfg);
        // Block index within the bound region (32 sets): always survives.
        let block = set_idx | (tag_bits << 5);
        let addr = block * 32;
        let _ = dri.access(addr, 0);
        prop_assert!(dri.probe(addr));
        // Quiet interval: downsize by one step.
        dri.retire_instructions(1000, 1000);
        prop_assert!(dri.active_sets() < cfg.max_sets());
        if (block & (dri.active_sets() - 1)) == (block & (cfg.max_sets() - 1)) {
            prop_assert!(
                dri.probe(addr),
                "block in set {} must survive at {} sets",
                block & (cfg.max_sets() - 1),
                dri.active_sets()
            );
        }
    }

    #[test]
    fn dri_active_sets_always_within_bounds_and_power_of_two(
        accesses in prop::collection::vec((0u64..1 << 18, 0u64..3), 10..150),
    ) {
        let cfg = DriConfig {
            max_size_bytes: 16 * 1024,
            block_bytes: 32,
            associativity: 2,
            latency: 1,
            size_bound_bytes: 1024,
            miss_bound: 10,
            sense_interval: 500,
            divisibility: 2,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        };
        let mut dri = DriICache::new(cfg);
        let mut cycle = 0;
        for &(addr, burst) in &accesses {
            for i in 0..=burst {
                let _ = dri.access(addr.wrapping_add(i * 32), cycle);
            }
            cycle += 400 + burst;
            dri.retire_instructions(400 + burst, cycle);
            prop_assert!(dri.active_sets().is_power_of_two());
            prop_assert!(dri.active_sets() >= cfg.bound_sets());
            prop_assert!(dri.active_sets() <= cfg.max_sets());
        }
        dri.finish(cycle.max(1));
        let f = dri.avg_active_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "fraction {}", f);
    }

    #[test]
    fn dri_invalidate_all_aliases_leaves_no_copy(
        addr in 0u64..1 << 20,
        quiet_intervals in 1u64..4,
        noise in prop::collection::vec(0u64..1 << 20, 0..50),
    ) {
        let cfg = DriConfig {
            max_size_bytes: 8192,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            size_bound_bytes: 512,
            miss_bound: 3,
            sense_interval: 100,
            divisibility: 2,
            throttle: ThrottleConfig { enabled: false, ..Default::default() },
            replacement: ReplacementPolicy::Lru,
        };
        let mut dri = DriICache::new(cfg);
        let mut cycle = 0u64;
        // Touch the block at several sizes to plant aliases.
        for _ in 0..quiet_intervals {
            let _ = dri.access(addr, cycle);
            cycle += 100;
            dri.retire_instructions(100, cycle);
        }
        for &n in &noise {
            let _ = dri.access(n, cycle);
        }
        let _ = dri.access(addr, cycle);
        let _ = dri.invalidate_all_aliases(addr);
        prop_assert!(!dri.probe(addr));
        // No copy under any mask either: re-access must miss.
        prop_assert!(!dri.access(addr, cycle));
    }

    #[test]
    fn leakage_is_monotone_in_vt(
        vt_lo_mv in 150u32..400,
        delta_mv in 1u32..100,
    ) {
        let process = Process::tsmc180();
        let t = Celsius::new(110.0);
        let lo = SramCell::standard(&process, Volts::new(f64::from(vt_lo_mv) / 1000.0));
        let hi = SramCell::standard(
            &process,
            Volts::new(f64::from(vt_lo_mv + delta_mv) / 1000.0),
        );
        prop_assert!(
            lo.leakage_current(&process, t).value() > hi.leakage_current(&process, t).value()
        );
    }

    #[test]
    fn gating_always_saves_energy_and_costs_read_time(
        width_scale in 0.25f64..4.0,
    ) {
        let process = Process::tsmc180();
        let t = Celsius::new(110.0);
        let cell = SramCell::standard(&process, Volts::new(0.2));
        let base = GatedVddConfig::hpca01(&process);
        let cfg = base.clone().with_gate_width(base.gate_width() * width_scale);
        let savings = cfg.energy_savings(&cell, &process, t);
        prop_assert!(savings > 0.5, "savings {}", savings);
        prop_assert!(savings < 1.0);
        let penalty = cfg.read_time_penalty(&cell, &process);
        prop_assert!(penalty >= 1.0);
    }

    #[test]
    fn generated_programs_are_well_formed_and_deterministic(
        footprint_kb in 1u64..32,
        seed in 0u64..1000,
    ) {
        use synth_workload::generator::{generate, GeneratorSpec};
        use synth_workload::machine::Machine;
        let mut spec = GeneratorSpec::basic("prop", footprint_kb * 1024, 50_000);
        spec.seed = seed;
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.program.insts().len(), b.program.insts().len());
        // Programs validate (all targets in range) and never halt within a
        // modest budget (the outer wrap).
        a.program.validate();
        let mut m = Machine::new(&a.program);
        let s = m.run(20_000);
        prop_assert_eq!(s.retired, 20_000);
        prop_assert!(!s.halted);
    }
}
