//! Cross-crate integration tests: the whole stack — workload generation,
//! OoO timing, cache hierarchy, DRI adaptation, and energy accounting —
//! exercised together the way the experiment harness uses it.

use dri::cache::icache::{ConventionalICache, InstCache};
use dri::cpu::config::CpuConfig;
use dri::cpu::core::Core;
use dri::dri::{DriConfig, DriICache};
use dri::energy::params::EnergyParams;
use dri::experiments::runner::compare_with_baseline;
use dri::experiments::{run_conventional, run_dri, RunConfig};
use dri::workload::suite::Benchmark;

fn quick(b: Benchmark) -> RunConfig {
    let mut cfg = RunConfig::quick(b);
    cfg.dri.size_bound_bytes = 4 * 1024;
    cfg.dri.miss_bound = 100;
    cfg
}

#[test]
fn dri_and_conventional_execute_identical_instruction_streams() {
    // The i-cache only affects *timing*; both runs must commit the same
    // number of instructions and the same loads/stores/branches.
    let cfg = quick(Benchmark::Li);
    let conv = run_conventional(&cfg);
    let dri = run_dri(&cfg);
    assert_eq!(conv.timing.instructions, dri.timing.instructions);
    assert_eq!(conv.timing.loads, dri.timing.loads);
    assert_eq!(conv.timing.stores, dri.timing.stores);
    assert_eq!(conv.timing.branches, dri.timing.branches);
}

#[test]
fn dri_never_beats_conventional_on_pure_timing() {
    // Resizing can only add misses, so a DRI run is never faster than the
    // baseline of the same geometry.
    for b in [Benchmark::Compress, Benchmark::Mgrid, Benchmark::Perl] {
        let cfg = quick(b);
        let conv = run_conventional(&cfg);
        let dri = run_dri(&cfg);
        assert!(
            dri.timing.cycles >= conv.timing.cycles,
            "{}: DRI {} cycles vs conventional {}",
            b.name(),
            dri.timing.cycles,
            conv.timing.cycles
        );
    }
}

#[test]
fn class1_benchmark_saves_energy_end_to_end() {
    let cfg = quick(Benchmark::Compress);
    let baseline = run_conventional(&cfg);
    let dri = run_dri(&cfg);
    let c = compare_with_baseline(&cfg, &baseline, &dri);
    assert!(
        c.relative_energy_delay < 0.7,
        "ED {}",
        c.relative_energy_delay
    );
    assert!(c.avg_size_fraction < 0.5);
    // Components must sum to the total.
    let sum = c.leakage_component + c.dynamic_component;
    assert!((sum - c.relative_energy_delay).abs() < 1e-9);
}

#[test]
fn full_size_bound_is_exactly_the_baseline() {
    // With the size-bound pinned at the full size the DRI cache can never
    // resize, so timing and misses must match the conventional run
    // exactly, and the relative energy-delay must be 1.
    let mut cfg = quick(Benchmark::M88ksim);
    cfg.dri.size_bound_bytes = cfg.dri.max_size_bytes;
    let baseline = run_conventional(&cfg);
    let dri = run_dri(&cfg);
    assert_eq!(dri.timing.cycles, baseline.timing.cycles);
    assert_eq!(dri.icache.misses, baseline.icache.misses);
    let c = compare_with_baseline(&cfg, &baseline, &dri);
    assert!((c.relative_energy_delay - 1.0).abs() < 1e-9);
    assert_eq!(c.extra_l2_accesses, 0);
}

#[test]
fn energy_params_derived_and_published_agree_end_to_end() {
    // Swapping the published constants for the circuit-derived ones moves
    // the relative energy-delay only slightly (the derived constants match
    // within a few percent).
    let cfg = quick(Benchmark::Applu);
    let baseline = run_conventional(&cfg);
    let dri = run_dri(&cfg);
    let published = compare_with_baseline(&cfg, &baseline, &dri);
    let mut derived_cfg = cfg.clone();
    derived_cfg.energy = EnergyParams::hpca01_derived();
    let derived = compare_with_baseline(&derived_cfg, &baseline, &dri);
    // The derived parameters carry the ~3% residual standby leakage the
    // paper rounds to zero; on a mostly-gated run that raises the
    // energy-delay by ~10-15%, and the derived result must be the larger.
    assert!(derived.relative_energy_delay > published.relative_energy_delay);
    let delta = derived.relative_energy_delay - published.relative_energy_delay;
    assert!(
        delta / published.relative_energy_delay < 0.2,
        "published {} vs derived {}",
        published.relative_energy_delay,
        derived.relative_energy_delay
    );
}

#[test]
fn geometry_variants_run_and_report_consistent_bits() {
    for dri_cfg in [
        DriConfig::hpca01_64k_dm(),
        DriConfig::hpca01_64k_4way(),
        DriConfig::hpca01_128k_dm(),
    ] {
        let mut cfg = quick(Benchmark::Swim);
        let bound = cfg.dri.size_bound_bytes;
        cfg.dri = DriConfig {
            size_bound_bytes: bound,
            miss_bound: 100,
            sense_interval: 20_000,
            ..dri_cfg
        };
        let dri = run_dri(&cfg);
        assert_eq!(
            dri.dri.resizing_bits,
            (dri_cfg.max_size_bytes / bound).trailing_zeros(),
        );
        assert!(dri.timing.instructions > 0);
    }
}

#[test]
fn alias_invalidation_is_visible_through_the_whole_stack() {
    // Run a core, then unmap a hot code page: every alias must be gone.
    let generated = Benchmark::Li.build();
    let mut cfg = DriConfig::hpca01_64k_dm();
    cfg.sense_interval = 20_000;
    cfg.size_bound_bytes = 4 * 1024;
    let mut core = Core::new(&generated.program, CpuConfig::hpca01(), DriICache::new(cfg));
    core.run(300_000);
    // (Core has no mutable icache access by design; construct a fresh DRI
    // cache and replay a prefix to exercise invalidate_all_aliases here.)
    let mut dri = DriICache::new(cfg);
    let base = generated.program.base_addr();
    for i in 0..50_000u64 {
        let _ = dri.access(base + (i % 4096) * 4, i);
        dri.retire_instructions(1, i);
    }
    let dropped = dri.invalidate_all_aliases(base);
    assert!(dropped >= 1, "hot entry block must have at least one copy");
    assert!(!dri.probe(base));
}

#[test]
fn conventional_baseline_miss_rates_stay_low() {
    // Paper §5.3: conventional 64K miss rates below ~1% (per cycle).
    for b in Benchmark::all() {
        let mut cfg = RunConfig::hpca01(b);
        cfg.instruction_budget = Some(1_500_000);
        let conv = run_conventional(&cfg);
        let mr = conv.icache.misses as f64 / conv.timing.cycles as f64;
        assert!(
            mr < 0.025,
            "{}: conventional per-cycle miss rate {mr}",
            b.name()
        );
    }
}

#[test]
fn conventional_icache_trait_object_compatibility() {
    // InstCache implementations are interchangeable behind the trait.
    fn misses_with<IC: InstCache>(ic: IC, budget: u64) -> u64 {
        let generated = Benchmark::Mgrid.build();
        let mut core = Core::new(&generated.program, CpuConfig::hpca01(), ic);
        core.run(budget);
        core.icache().stats().misses
    }
    let conv = misses_with(ConventionalICache::hpca01(), 100_000);
    let dri = misses_with(DriICache::new(DriConfig::hpca01_64k_dm()), 100_000);
    // Before any resize happens, a full-size DRI cache behaves like the
    // conventional one.
    assert!(dri >= conv);
}
