//! Property tests for the extension caches (decay, way-resizing, and the
//! resizable d-cache): accounting identities and policy invariants under
//! arbitrary access streams.

use cache_sim::cache::AccessKind;
use cache_sim::icache::InstCache;
use cache_sim::replacement::ReplacementPolicy;
use dri_core::{
    DecayConfig, DecayICache, DriConfig, ResizableDCache, ThrottleConfig, WayConfig,
    WayResizableICache,
};
use proptest::prelude::*;

fn dcfg() -> DriConfig {
    DriConfig {
        max_size_bytes: 8192,
        block_bytes: 32,
        associativity: 1,
        latency: 1,
        size_bound_bytes: 1024,
        miss_bound: 8,
        sense_interval: 500,
        divisibility: 2,
        throttle: ThrottleConfig::default(),
        replacement: ReplacementPolicy::Lru,
    }
}

proptest! {
    #[test]
    fn decay_cache_counters_are_consistent(
        stream in prop::collection::vec((0u64..1 << 14, 1u64..2000), 10..200),
    ) {
        let mut c = DecayICache::new(DecayConfig {
            size_bytes: 4096,
            block_bytes: 32,
            associativity: 2,
            latency: 1,
            decay_interval_cycles: 2000,
            replacement: ReplacementPolicy::Lru,
        });
        let mut cycle = 0u64;
        for &(a, dt) in &stream {
            cycle += dt;
            let _ = c.access(a * 32, cycle);
        }
        c.finish(cycle);
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(c.decay_stats().decay_induced_misses <= s.misses);
        let f = c.avg_active_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "fraction {}", f);
    }

    #[test]
    fn decay_interval_infinity_behaves_like_a_plain_cache(
        stream in prop::collection::vec(0u64..1 << 12, 10..200),
    ) {
        // With an enormous decay interval nothing ever decays: behaviour
        // must match a conventional cache of the same geometry.
        let geometry = cache_sim::config::CacheConfig::new(
            4096, 32, 2, 1, ReplacementPolicy::Lru,
        );
        let mut plain = cache_sim::cache::Cache::new(geometry);
        let mut decay = DecayICache::new(DecayConfig {
            size_bytes: 4096,
            block_bytes: 32,
            associativity: 2,
            latency: 1,
            decay_interval_cycles: u64::MAX / 2,
            replacement: ReplacementPolicy::Lru,
        });
        for (i, &a) in stream.iter().enumerate() {
            let h1 = plain.access(a * 32, AccessKind::Read).hit;
            let h2 = decay.access(a * 32, i as u64);
            prop_assert_eq!(h1, h2, "divergence at access {}", i);
        }
        prop_assert_eq!(decay.decay_stats().decay_induced_misses, 0);
    }

    #[test]
    fn way_cache_active_ways_stay_in_range(
        ops in prop::collection::vec((0u64..1 << 16, any::<bool>()), 10..150),
    ) {
        let mut c = WayResizableICache::new(WayConfig {
            size_bytes: 8192,
            block_bytes: 32,
            associativity: 4,
            latency: 1,
            min_ways: 1,
            miss_bound: 6,
            sense_interval: 300,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        });
        let mut cycle = 0u64;
        for &(a, quiet) in &ops {
            let _ = c.access(a * 32, cycle);
            let step = if quiet { 300 } else { 5 };
            cycle += step;
            c.retire_instructions(step, cycle);
            prop_assert!((1..=4).contains(&c.active_ways()));
        }
        c.finish(cycle.max(1));
        let f = c.avg_active_fraction();
        prop_assert!((0.25 - 1e-9..=1.0).contains(&f), "fraction {}", f);
    }

    #[test]
    fn dcache_writeback_accounting_is_complete(
        ops in prop::collection::vec(
            (0u64..1 << 12, any::<bool>(), any::<bool>()),
            10..200,
        ),
    ) {
        // Every write-back recorded per access or per resize must appear
        // in the aggregate stats counter, and vice versa.
        let mut c = ResizableDCache::new(dcfg());
        let mut cycle = 0u64;
        let mut access_wbs = 0u64;
        for &(a, is_write, quiet) in &ops {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let out = c.access(a * 32, kind, cycle);
            access_wbs += out.writebacks;
            let step = if quiet { 500 } else { 3 };
            cycle += step;
            c.retire_instructions(step, cycle);
        }
        prop_assert_eq!(
            c.stats().writebacks,
            access_wbs + c.resize_writebacks(),
            "aggregate writebacks must equal per-access plus resize-driven"
        );
    }

    #[test]
    fn dcache_never_hits_two_aliases(
        quiet_then_touch in prop::collection::vec((0u64..256, 0u64..3), 5..60),
    ) {
        // After any resize history, an address hits at most once per
        // access and a scrub leaves exactly one resident copy.
        let mut c = ResizableDCache::new(dcfg());
        let mut cycle = 0u64;
        for &(block, quiet) in &quiet_then_touch {
            let addr = block * 32;
            let _ = c.access(addr, AccessKind::Write, cycle);
            for _ in 0..quiet {
                cycle += 500;
                c.retire_instructions(500, cycle);
            }
            // The block must be findable under the current mask — unless a
            // resize gated it away, in which case one re-access restores it.
            let mut present = c.probe(addr);
            if !present {
                let _ = c.access(addr, AccessKind::Read, cycle);
                present = c.probe(addr);
            }
            prop_assert!(present);
        }
    }
}
