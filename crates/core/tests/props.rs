//! Property tests for DRI resizing semantics: the index-mapping theorem
//! behind flush-free downsizing, accounting consistency, and monotone
//! behaviour of the adaptive loop.

use cache_sim::icache::InstCache;
use cache_sim::replacement::ReplacementPolicy;
use dri_core::{DriConfig, DriICache, ThrottleConfig};
use proptest::prelude::*;

fn cfg(max_kb: u64, bound_kb: u64, assoc: u32) -> DriConfig {
    DriConfig {
        max_size_bytes: max_kb * 1024,
        block_bytes: 32,
        associativity: assoc,
        latency: 1,
        size_bound_bytes: bound_kb * 1024,
        miss_bound: 8,
        sense_interval: 512,
        divisibility: 2,
        throttle: ThrottleConfig::default(),
        replacement: ReplacementPolicy::Lru,
    }
}

proptest! {
    #[test]
    fn downsize_mapping_theorem(
        block in 0u64..1 << 20,
        s1_pow in 3u32..11,
        s2_pow in 1u32..10,
    ) {
        // The §2.2 invariant in arithmetic form: if a block's set index at
        // s1 sets is below s2 (s2 | s1), its index at s2 is identical.
        prop_assume!(s2_pow < s1_pow);
        let s1 = 1u64 << s1_pow;
        let s2 = 1u64 << s2_pow;
        let idx1 = block & (s1 - 1);
        if idx1 < s2 {
            prop_assert_eq!(block & (s2 - 1), idx1);
        }
    }

    #[test]
    fn dri_shift_mask_indexing_matches_div_mod_math(
        max_pow in 1u32..=7,
        bound_pow in 0u32..=7,
        assoc_pow in 0u32..=2,
        addrs in prop::collection::vec(0u64..1 << 40, 1..64),
    ) {
        // The DRI access path maintains a precomputed size mask across
        // resizes; the reference math divides by geometry. They must agree
        // at every reachable active size.
        prop_assume!(bound_pow <= max_pow);
        let c = cfg(1 << max_pow, 1 << bound_pow, 1 << assoc_pow);
        prop_assume!(c.size_bound_bytes >= c.block_bytes * u64::from(c.associativity));
        c.validate();
        let mut active = c.max_sets();
        while active >= c.bound_sets() {
            for &addr in &addrs {
                let div_block = addr / c.block_bytes;
                let div_set = div_block % active;
                prop_assert_eq!(c.block_addr(addr), div_block);
                prop_assert_eq!(c.set_index(addr, active), div_set);
                prop_assert_eq!(
                    (addr >> c.offset_bits()) & (active - 1),
                    div_set,
                    "shift/mask at {:#x} with {} sets",
                    addr,
                    active
                );
            }
            if active == 1 {
                break;
            }
            active /= 2;
        }
    }

    #[test]
    fn hits_plus_misses_equals_accesses_through_arbitrary_resizing(
        ops in prop::collection::vec((0u64..1 << 16, any::<bool>()), 10..300),
    ) {
        let mut dri = DriICache::new(cfg(16, 1, 1));
        let mut cycle = 0u64;
        for &(addr, quiet) in &ops {
            let _ = dri.access(addr * 32, cycle);
            cycle += if quiet { 512 } else { 3 };
            dri.retire_instructions(if quiet { 512 } else { 3 }, cycle);
        }
        let s = dri.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, ops.len() as u64);
    }

    #[test]
    fn probe_agrees_with_access_hit(
        addrs in prop::collection::vec(0u64..1 << 14, 2..150),
    ) {
        let mut dri = DriICache::new(cfg(8, 1, 2));
        for (cycle, &a) in addrs.iter().enumerate() {
            let addr = a * 32;
            let present = dri.probe(addr);
            let hit = dri.access(addr, cycle as u64);
            prop_assert_eq!(present, hit, "probe/access disagree at {:#x}", addr);
        }
    }

    #[test]
    fn average_size_never_exceeds_max_or_undershoots_bound(
        quiet_intervals in 1u64..30,
    ) {
        let c = cfg(16, 2, 1);
        let mut dri = DriICache::new(c);
        let mut cycle = 0u64;
        for _ in 0..quiet_intervals {
            cycle += 512;
            dri.retire_instructions(512, cycle);
        }
        dri.finish(cycle.max(1));
        let avg = dri.avg_size_bytes();
        prop_assert!(avg <= c.max_size_bytes as f64 + 1e-9);
        // The time-average can exceed the bound (starts at max) but never
        // undershoots it.
        prop_assert!(avg >= c.size_bound_bytes as f64 - 1e-9);
        prop_assert!(dri.active_size_bytes() >= c.size_bound_bytes);
    }

    #[test]
    fn resizing_tag_bits_match_geometry(
        max_pow in 1u64..8,
        bound_pow in 0u64..8,
    ) {
        prop_assume!(bound_pow <= max_pow);
        let c = cfg(1 << max_pow, 1 << bound_pow, 1);
        prop_assert_eq!(
            c.resizing_tag_bits(),
            (max_pow - bound_pow) as u32
        );
    }

    #[test]
    fn divisibility_steps_are_exact_powers(
        div_pow in 1u32..3,
        quiet in 1u64..6,
    ) {
        let mut c = cfg(16, 1, 1);
        c.divisibility = 1 << div_pow;
        let mut dri = DriICache::new(c);
        let start = dri.active_sets();
        let mut cycle = 0;
        for _ in 0..quiet {
            cycle += 512;
            dri.retire_instructions(512, cycle);
        }
        let shrink = start / dri.active_sets();
        prop_assert!(shrink.is_power_of_two());
        // Each quiet interval divides by exactly the divisibility until
        // the bound.
        let expected = (u64::from(c.divisibility)).pow(quiet as u32);
        let floor = start / c.bound_sets();
        prop_assert_eq!(shrink, expected.min(floor));
    }
}
