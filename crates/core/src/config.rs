//! Configuration of the DRI i-cache (paper §2.1 and Figure 1).
//!
//! Five parameters govern resizing:
//!
//! * **miss-bound** — the per-interval miss count the adaptive loop steers
//!   toward: more misses than the bound → upsize, fewer → downsize
//!   ("fine-grain" control);
//! * **size-bound** — the minimum size the cache may assume, preventing
//!   thrashing ("coarse-grain" control); it also fixes the number of
//!   *resizing tag bits* the tag array must carry;
//! * **sense-interval** — the monitoring window in dynamic instructions;
//! * **divisibility** — the factor by which each resize changes the size;
//! * **throttle** — a small saturating counter that detects repeated
//!   resizing between two adjacent sizes and locks out downsizing for a
//!   fixed number of intervals.

use cache_sim::replacement::ReplacementPolicy;

/// Throttling mechanism parameters (paper §2.1, §5.3: a 3-bit saturating
/// counter triggering a 10-interval downsize lockout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThrottleConfig {
    /// Width of the saturating reversal counter in bits.
    pub counter_bits: u32,
    /// Number of successive intervals downsizing stays disabled once the
    /// counter saturates.
    pub lockout_intervals: u32,
    /// Master enable (the ablation benches switch this off).
    pub enabled: bool,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            counter_bits: 3,
            lockout_intervals: 10,
            enabled: true,
        }
    }
}

impl ThrottleConfig {
    /// Saturation value of the counter (`2^bits − 1`).
    pub fn saturation(&self) -> u32 {
        (1u32 << self.counter_bits) - 1
    }
}

/// Full configuration of a DRI i-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DriConfig {
    /// Maximum (base) capacity in bytes — the size a conventional i-cache
    /// of the same design would have.
    pub max_size_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Ways per set (resizing changes the number of *sets*, never ways).
    pub associativity: u32,
    /// Hit latency in cycles (the size-mask gate level is assumed folded
    /// into the decode tree, paper §2.2).
    pub latency: u64,
    /// Minimum capacity in bytes (the size-bound).
    pub size_bound_bytes: u64,
    /// Miss count per sense interval steered toward.
    pub miss_bound: u64,
    /// Sense-interval length in dynamic (committed) instructions.
    pub sense_interval: u64,
    /// Resizing factor (paper default 2; §5.6 evaluates 4 and 8).
    pub divisibility: u32,
    /// Throttle parameters.
    pub throttle: ThrottleConfig,
    /// Replacement policy within a set.
    pub replacement: ReplacementPolicy,
}

impl DriConfig {
    /// The paper's base DRI i-cache: 64K direct-mapped, 32-byte blocks,
    /// 1-cycle latency, 1K size-bound, divisibility 2. The miss-bound and
    /// sense-interval default to 100 misses per 100K instructions — a
    /// scaled-down version of the paper's "ten thousand misses per one
    /// million instructions" example, matching the shorter synthetic runs
    /// (see EXPERIMENTS.md); experiments override both per benchmark.
    pub fn hpca01_64k_dm() -> Self {
        DriConfig {
            max_size_bytes: 64 * 1024,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            size_bound_bytes: 1024,
            miss_bound: 100,
            sense_interval: 100_000,
            divisibility: 2,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Figure 6's 64K four-way variant.
    pub fn hpca01_64k_4way() -> Self {
        DriConfig {
            associativity: 4,
            ..Self::hpca01_64k_dm()
        }
    }

    /// Figure 6's 128K direct-mapped variant (one more resizing tag bit so
    /// the size-bound stays 1K, paper §5.5).
    pub fn hpca01_128k_dm() -> Self {
        DriConfig {
            max_size_bytes: 128 * 1024,
            ..Self::hpca01_64k_dm()
        }
    }

    /// Checks all invariants.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two, the size-bound exceeds the
    /// maximum size or leaves fewer than one set, divisibility is < 2, or
    /// the sense interval is zero.
    pub fn validate(&self) {
        assert!(
            self.max_size_bytes.is_power_of_two(),
            "max size must be a power of two, got {}",
            self.max_size_bytes
        );
        assert!(
            self.size_bound_bytes.is_power_of_two(),
            "size-bound must be a power of two, got {}",
            self.size_bound_bytes
        );
        assert!(
            self.size_bound_bytes <= self.max_size_bytes,
            "size-bound {} exceeds max size {}",
            self.size_bound_bytes,
            self.max_size_bytes
        );
        assert!(
            self.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(self.associativity > 0, "associativity must be positive");
        let row_bytes = self.block_bytes * u64::from(self.associativity);
        assert!(
            self.size_bound_bytes >= row_bytes,
            "size-bound {} smaller than one row ({} bytes)",
            self.size_bound_bytes,
            row_bytes
        );
        assert!(
            self.divisibility >= 2 && self.divisibility.is_power_of_two(),
            "divisibility must be a power of two >= 2, got {}",
            self.divisibility
        );
        assert!(self.sense_interval > 0, "sense interval must be positive");
        assert!(self.max_sets().is_power_of_two());
        assert!(self.bound_sets().is_power_of_two());
    }

    /// Sets at full size.
    pub fn max_sets(&self) -> u64 {
        self.max_size_bytes / self.block_bytes / u64::from(self.associativity)
    }

    /// Sets at the size-bound.
    pub fn bound_sets(&self) -> u64 {
        self.size_bound_bytes / self.block_bytes / u64::from(self.associativity)
    }

    /// Address bits consumed by the block offset.
    pub fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// Number of resizing tag bits: the extra tag bits (beyond a
    /// conventional cache of the maximum size) required so tags stay
    /// meaningful down to the size-bound. Paper §2.1: a 64K cache with a 1K
    /// size-bound carries 16 + 6 tag bits.
    pub fn resizing_tag_bits(&self) -> u32 {
        (self.max_size_bytes / self.size_bound_bytes).trailing_zeros()
    }

    /// Block address for `addr`.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.offset_bits()
    }

    /// Set index of `addr` when `active_sets` sets are powered — the size
    /// mask of Figure 1.
    pub fn set_index(&self, addr: u64, active_sets: u64) -> u64 {
        debug_assert!(active_sets.is_power_of_two());
        self.block_addr(addr) & (active_sets - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_validates() {
        let c = DriConfig::hpca01_64k_dm();
        c.validate();
        assert_eq!(c.max_sets(), 2048);
        assert_eq!(c.bound_sets(), 32);
    }

    #[test]
    fn resizing_tag_bits_matches_papers_example() {
        // 64K with 1K size-bound -> 6 resizing bits (tags go 16 -> 22).
        let c = DriConfig::hpca01_64k_dm();
        assert_eq!(c.resizing_tag_bits(), 6);
        // 128K with the same 1K bound -> one more bit (paper §5.5).
        let big = DriConfig::hpca01_128k_dm();
        assert_eq!(big.resizing_tag_bits(), 7);
    }

    #[test]
    fn four_way_variant_has_fewer_sets() {
        let c = DriConfig::hpca01_64k_4way();
        c.validate();
        assert_eq!(c.max_sets(), 512);
        assert_eq!(c.bound_sets(), 8);
        assert_eq!(c.resizing_tag_bits(), 6);
    }

    #[test]
    fn set_index_masks_by_active_size() {
        let c = DriConfig::hpca01_64k_dm();
        let addr = 0x12345 << c.offset_bits();
        assert_eq!(c.set_index(addr, 2048), 0x12345 & 0x7ff);
        assert_eq!(c.set_index(addr, 32), 0x12345 & 0x1f);
    }

    #[test]
    fn throttle_saturation() {
        assert_eq!(ThrottleConfig::default().saturation(), 7);
        let wide = ThrottleConfig {
            counter_bits: 4,
            ..Default::default()
        };
        assert_eq!(wide.saturation(), 15);
    }

    #[test]
    #[should_panic(expected = "size-bound")]
    fn rejects_bound_above_max() {
        let c = DriConfig {
            size_bound_bytes: 128 * 1024,
            ..DriConfig::hpca01_64k_dm()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "divisibility")]
    fn rejects_divisibility_one() {
        let c = DriConfig {
            divisibility: 1,
            ..DriConfig::hpca01_64k_dm()
        };
        c.validate();
    }
}
