//! A way-memoizing i-cache: links between consecutively fetched lines
//! steer both the probe and the leakage gating.
//!
//! Ishihara & Fallah's *way memoization* stores, with each cache line, a
//! link to the line fetched next, so the following access can probe a
//! single way instead of all ways (their goal was dynamic energy). This
//! module adapts the idea into a *leakage* policy, so it can be swept
//! side by side with the DRI i-cache, cache decay, and way-resizing:
//!
//! * each line carries a **link** to the line (set × ways + way) that was
//!   fetched after it; a matching link turns the next access into a
//!   single-way *memo probe*;
//! * the links double as a liveness oracle: a line that is the target of
//!   a link is probably about to be fetched again, so the gating sweep
//!   only powers off **unlinked** lines after one *gate interval* of
//!   idleness — linked lines get four intervals before they are gated
//!   regardless;
//! * a gated line keeps its tag (like cache decay), so an access to it is
//!   classified as a *gate-induced miss* and the line is refilled and
//!   re-powered.
//!
//! The leakage accounting (time-weighted live-line integration at
//! `gate_interval / 4` sweep granularity) mirrors [`crate::decay`], so
//! head-to-head energy numbers differ only by policy, not by bookkeeping.

use cache_sim::icache::InstCache;
use cache_sim::policy::LeakagePolicy;
use cache_sim::replacement::ReplacementPolicy;
use cache_sim::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for [`WayMemoICache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMemoConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Hit latency in cycles.
    pub latency: u64,
    /// An *unlinked* line idle for this many cycles is gated off; linked
    /// lines survive four intervals before gating.
    pub gate_interval_cycles: u64,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl WayMemoConfig {
    /// A 64K four-way way-memoizing i-cache (way memoization needs
    /// associativity to have something to memoize) with a 64K-cycle gate
    /// interval, matching the decay preset's mid-range interval.
    pub fn hpca01_64k_4way() -> Self {
        WayMemoConfig {
            size_bytes: 64 * 1024,
            block_bytes: 32,
            associativity: 4,
            latency: 1,
            gate_interval_cycles: 64 * 1024,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Checks the invariants.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry or a zero gate interval.
    pub fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "size must be 2^n");
        assert!(self.block_bytes.is_power_of_two(), "block must be 2^n");
        assert!(self.associativity >= 1, "need at least one way");
        assert!(
            self.gate_interval_cycles > 0,
            "gate interval must be positive"
        );
        let blocks = self.size_bytes / self.block_bytes;
        assert!(
            blocks.is_multiple_of(u64::from(self.associativity))
                && (blocks / u64::from(self.associativity)).is_power_of_two(),
            "set count must be a power of two"
        );
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / u64::from(self.associativity)
    }

    fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    /// A valid line may still be *gated*: powered off with its tag
    /// retained, so gate-induced misses can be classified.
    gated: bool,
    block_addr: u64,
    last_used_cycle: u64,
    lru: u64,
    filled_at: u64,
    /// Line index (set × ways + way) fetched right after this line, if
    /// any — the memoized way.
    link: Option<u32>,
}

/// Way-memoization statistics beyond the common cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WayMemoStats {
    /// Hits resolved by the single-way memo probe alone.
    pub memo_hits: u64,
    /// Accesses that fell back to probing every powered way.
    pub full_probes: u64,
    /// Misses caused by gating (the line was present but powered off).
    pub gate_induced_misses: u64,
    /// Lines gated off by the sweeps.
    pub lines_gated: u64,
}

/// The way-memoizing i-cache.
#[derive(Debug, Clone)]
pub struct WayMemoICache {
    cfg: WayMemoConfig,
    lines: Vec<Line>,
    /// Incoming-link count per line frame: how many lines' `link` point
    /// here. A nonzero count defers gating (the frame is predicted to be
    /// fetched soon).
    link_refs: Vec<u32>,
    /// The line accessed (hit or filled) most recently, whose `link` the
    /// next access updates — and follows for its memo probe.
    prev_line: Option<usize>,
    stats: CacheStats,
    memo_stats: WayMemoStats,
    clock: u64,
    rng: SmallRng,
    // Precomputed geometry (shift/mask indexing, as in the sibling models).
    offset_bits: u32,
    index_mask: u64,
    ways: usize,
    // Active-fraction integration: swept periodically like cache decay.
    next_sweep_cycle: u64,
    last_mark_cycle: u64,
    weighted_live_cycles: f64,
    live_at_mark: u64,
    finished_at: Option<u64>,
}

impl WayMemoICache {
    /// Builds an empty way-memoizing cache (empty lines count as gated).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: WayMemoConfig) -> Self {
        cfg.validate();
        let total = (cfg.num_sets() * u64::from(cfg.associativity)) as usize;
        let sweep = (cfg.gate_interval_cycles / 4).max(1);
        WayMemoICache {
            lines: vec![Line::default(); total],
            link_refs: vec![0; total],
            prev_line: None,
            stats: CacheStats::default(),
            memo_stats: WayMemoStats::default(),
            clock: 0,
            rng: SmallRng::seed_from_u64(0x3A31_0C8E),
            offset_bits: cfg.offset_bits(),
            index_mask: cfg.num_sets() - 1,
            ways: cfg.associativity as usize,
            cfg,
            next_sweep_cycle: sweep,
            last_mark_cycle: 0,
            weighted_live_cycles: 0.0,
            live_at_mark: 0,
            finished_at: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WayMemoConfig {
        &self.cfg
    }

    /// Way-memoization statistics.
    pub fn memo_stats(&self) -> &WayMemoStats {
        &self.memo_stats
    }

    /// Number of lines currently powered (valid and not gated).
    pub fn live_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid && !l.gated).count() as u64
    }

    /// Average powered fraction of the array over the run (integrated at
    /// sweep granularity: gate_interval / 4).
    pub fn avg_active_fraction(&self) -> f64 {
        let end = self.finished_at.unwrap_or(self.last_mark_cycle);
        if end == 0 {
            return 1.0;
        }
        (self.weighted_live_cycles / end as f64) / self.lines.len() as f64
    }

    /// Points `from`'s link at `to`, maintaining the incoming-link
    /// refcounts that steer the gating sweep.
    fn relink(&mut self, from: usize, to: usize) {
        if let Some(old) = self.lines[from].link {
            if old as usize == to {
                return;
            }
            self.link_refs[old as usize] = self.link_refs[old as usize].saturating_sub(1);
        }
        self.lines[from].link = Some(to as u32);
        self.link_refs[to] += 1;
    }

    /// Clears `at`'s outgoing link (used when its frame is refilled with
    /// a new block, whose successor is not yet known).
    fn unlink(&mut self, at: usize) {
        if let Some(old) = self.lines[at].link.take() {
            self.link_refs[old as usize] = self.link_refs[old as usize].saturating_sub(1);
        }
    }

    fn sweep(&mut self, cycle: u64) {
        // Integrate the previous segment at its live count, then re-count.
        let span = (cycle.max(self.last_mark_cycle) - self.last_mark_cycle) as f64;
        self.weighted_live_cycles += span * self.live_at_mark as f64;
        self.last_mark_cycle = cycle.max(self.last_mark_cycle);
        let interval = self.cfg.gate_interval_cycles;
        let mut live = 0u64;
        for (i, line) in self.lines.iter_mut().enumerate() {
            if !line.valid || line.gated {
                continue;
            }
            let idle = cycle.saturating_sub(line.last_used_cycle);
            let unlinked = self.link_refs[i] == 0;
            if idle >= 4 * interval || (idle >= interval && unlinked) {
                line.gated = true;
                self.memo_stats.lines_gated += 1;
            } else {
                live += 1;
            }
        }
        self.live_at_mark = live;
        let step = (interval / 4).max(1);
        while self.next_sweep_cycle <= cycle {
            self.next_sweep_cycle += step;
        }
    }

    fn maybe_sweep(&mut self, cycle: u64) {
        if cycle >= self.next_sweep_cycle {
            self.sweep(cycle);
        }
    }

    #[inline]
    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }
}

impl InstCache for WayMemoICache {
    fn access(&mut self, addr: u64, cycle: u64) -> bool {
        self.maybe_sweep(cycle);
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.reads += 1;
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        let range = self.set_range(set);

        // Memo probe: follow the previously accessed line's link. A match
        // costs a single way; anything else falls back to a full probe.
        let memo_target = self.prev_line.and_then(|p| self.lines[p].link);
        let mut hit_at = None;
        if let Some(t) = memo_target {
            let t = t as usize;
            if range.contains(&t) {
                let line = &self.lines[t];
                if line.valid && !line.gated && line.block_addr == block {
                    hit_at = Some(t);
                    self.memo_stats.memo_hits += 1;
                }
            }
        }

        let mut gated_match = false;
        if hit_at.is_none() {
            self.memo_stats.full_probes += 1;
            for i in range.clone() {
                let line = &mut self.lines[i];
                if line.valid && line.block_addr == block {
                    if line.gated {
                        // Present but powered off: the gating was premature.
                        line.valid = false;
                        gated_match = true;
                    } else {
                        hit_at = Some(i);
                    }
                    break;
                }
            }
        }

        if let Some(i) = hit_at {
            let clock = self.clock;
            let line = &mut self.lines[i];
            line.last_used_cycle = cycle;
            line.lru = clock;
            self.stats.hits += 1;
            if let Some(p) = self.prev_line {
                self.relink(p, i);
            }
            self.prev_line = Some(i);
            return true;
        }

        self.stats.misses += 1;
        if gated_match {
            self.memo_stats.gate_induced_misses += 1;
        }

        // Allocate: prefer an invalid or gated way, else evict.
        let lines = &mut self.lines[range.clone()];
        let victim_way = if let Some(i) = lines.iter().position(|l| !l.valid || l.gated) {
            i
        } else {
            self.stats.evictions += 1;
            self.cfg.replacement.pick_victim_with(
                lines.len(),
                |i| lines[i].lru,
                |i| lines[i].filled_at,
                &mut self.rng,
            )
        };
        let victim = range.start + victim_way;
        // The frame's old successor link dies with its old block; incoming
        // links to the frame stay (they now mispredict and self-correct).
        self.unlink(victim);
        self.lines[victim] = Line {
            valid: true,
            gated: false,
            block_addr: block,
            last_used_cycle: cycle,
            lru: self.clock,
            filled_at: self.clock,
            link: None,
        };
        if let Some(p) = self.prev_line {
            if p != victim {
                self.relink(p, victim);
            }
        }
        self.prev_line = Some(victim);
        false
    }

    fn hit_latency(&self) -> u64 {
        self.cfg.latency
    }

    fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    fn finish(&mut self, cycle: u64) {
        self.sweep(cycle);
        self.finished_at = Some(cycle.max(1));
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl LeakagePolicy for WayMemoICache {
    fn policy_id(&self) -> &'static str {
        "way_memo"
    }

    fn active_size_bytes(&self) -> u64 {
        self.live_lines() * self.cfg.block_bytes
    }

    fn avg_active_fraction(&self) -> f64 {
        WayMemoICache::avg_active_fraction(self)
    }

    fn avg_size_bytes(&self) -> f64 {
        WayMemoICache::avg_active_fraction(self) * self.cfg.size_bytes as f64
    }

    fn resizes(&self) -> u64 {
        self.memo_stats.lines_gated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(interval: u64) -> WayMemoConfig {
        WayMemoConfig {
            size_bytes: 2048,
            block_bytes: 32,
            associativity: 2,
            latency: 1,
            gate_interval_cycles: interval,
            replacement: ReplacementPolicy::Lru,
        }
    }

    #[test]
    fn repeated_loops_hit_through_the_memo_links() {
        let mut c = WayMemoICache::new(small(1_000_000));
        let mut cycle = 0;
        // First pass builds the links; later passes follow them.
        for _ in 0..10 {
            for i in 0..8u64 {
                cycle += 1;
                let _ = c.access(i * 32, cycle);
            }
        }
        assert_eq!(c.stats().misses, 8, "one cold miss per block");
        assert!(
            c.memo_stats().memo_hits >= 8 * 8,
            "steady-state passes ride the links: {:?}",
            c.memo_stats()
        );
    }

    #[test]
    fn unlinked_idle_lines_gate_after_one_interval() {
        let mut c = WayMemoICache::new(small(1000));
        for i in 0..8u64 {
            let _ = c.access(i * 32, 0);
        }
        // Break the chain into line 0 so its frame is unlinked, then idle.
        assert_eq!(c.live_lines(), 8);
        let _ = c.access(9000 * 32, 10); // park prev elsewhere
        c.finish(5000);
        assert!(c.live_lines() < 9, "idle lines were gated");
        assert!(c.memo_stats().lines_gated >= 1);
    }

    #[test]
    fn gated_lines_miss_and_refill() {
        let mut c = WayMemoICache::new(small(1000));
        let _ = c.access(0x100, 0);
        // Idle far past 4x the interval: gated even though linked-ness
        // may linger.
        assert!(!c.access(0x100, 10_000), "gate-induced miss");
        assert_eq!(c.memo_stats().gate_induced_misses, 1);
        assert!(c.access(0x100, 10_010), "refilled and re-powered");
    }

    #[test]
    fn linked_lines_survive_longer_than_unlinked_ones() {
        let mut c = WayMemoICache::new(small(1000));
        // A->B->A loop: both frames end up link targets.
        for n in 0..6u64 {
            let _ = c.access(0x100 + (n % 2) * 0x20, n);
        }
        let linked_live_at = |cycle| {
            let mut probe = c.clone();
            probe.finish(cycle);
            probe.live_lines()
        };
        // After one interval the linked pair is still powered...
        assert_eq!(linked_live_at(1500), 2, "linked lines deferred");
        // ...but past four intervals everything idle is gated.
        assert_eq!(linked_live_at(5000), 0);
    }

    #[test]
    fn active_fraction_falls_for_idle_caches() {
        let mut c = WayMemoICache::new(small(1000));
        for i in 0..32u64 {
            let _ = c.access(i * 32, 0);
        }
        c.finish(100_000);
        assert!(
            WayMemoICache::avg_active_fraction(&c) < 0.1,
            "fraction {}",
            WayMemoICache::avg_active_fraction(&c)
        );
    }

    #[test]
    fn leakage_policy_surface_is_consistent() {
        let mut c = WayMemoICache::new(small(1000));
        let _ = c.access(0x40, 0);
        let _ = c.access(0x60, 1);
        c.finish(100);
        assert_eq!(LeakagePolicy::policy_id(&c), "way_memo");
        assert_eq!(c.active_size_bytes(), 2 * 32);
        let cfg_bytes = c.config().size_bytes as f64;
        let via_trait = LeakagePolicy::avg_size_bytes(&c);
        let direct = WayMemoICache::avg_active_fraction(&c) * cfg_bytes;
        assert_eq!(via_trait.to_bits(), direct.to_bits());
        assert_eq!(c.resizing_tag_bits(), 0);
    }

    #[test]
    fn evicting_a_frame_clears_its_outgoing_link() {
        let mut cfg = small(1_000_000);
        cfg.associativity = 1; // 64 sets, DM: easy conflicts
        let mut c = WayMemoICache::new(cfg);
        let stride = 64 * 32; // same-set stride
        let _ = c.access(0, 0);
        let _ = c.access(32, 1); // line 0 -> line 1 link
        let _ = c.access(stride, 2); // evicts block 0's frame

        // The refcount bookkeeping must stay balanced: re-walking the
        // chain rebuilds links without underflow or double counts.
        for n in 0..6u64 {
            let _ = c.access((n % 3) * 32, 10 + n);
        }
        let total_refs: u32 = c.link_refs.iter().sum();
        let total_links = c.lines.iter().filter(|l| l.link.is_some()).count() as u32;
        assert_eq!(total_refs, total_links, "refcounts track links exactly");
    }

    #[test]
    #[should_panic(expected = "gate interval")]
    fn rejects_zero_interval() {
        let _ = WayMemoICache::new(small(0));
    }
}
