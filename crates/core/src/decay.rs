//! Cache decay: the per-line leakage policy the DRI line of work led to.
//!
//! The DRI i-cache gates *sets* under global miss-rate feedback. The
//! successor idea (Kaxiras, Hu, Martonosi, "Cache Decay", ISCA 2001) gates
//! *individual lines* that have not been referenced for a fixed *decay
//! interval* — exploiting the observation (cited by this paper via Peir et
//! al.) that at any instant over half the block frames are "dead", waiting
//! to miss. Implementing decay here lets the repository compare the two
//! policies under identical substrates:
//!
//! * decay adapts at line granularity with no global controller, but every
//!   decayed line that was *not* dead costs a full miss;
//! * DRI resizing preserves the surviving sets' contents and bounds the
//!   miss rate explicitly, but gates at coarse power-of-two granularity.
//!
//! The decay timer is modelled in cycles (the hardware uses a cascaded
//! global + 2-bit per-line counter scheme; we keep exact last-use cycles,
//! which the 2-bit scheme approximates within one global tick).

use cache_sim::icache::InstCache;
use cache_sim::policy::LeakagePolicy;
use cache_sim::replacement::ReplacementPolicy;
use cache_sim::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for [`DecayICache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecayConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Hit latency in cycles.
    pub latency: u64,
    /// A line unreferenced for this many cycles is gated off.
    pub decay_interval_cycles: u64,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl DecayConfig {
    /// A 64K direct-mapped decaying i-cache with a 64K-cycle decay
    /// interval (mid-range of the decay paper's 8K–512K sweep).
    pub fn hpca01_64k_dm() -> Self {
        DecayConfig {
            size_bytes: 64 * 1024,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            decay_interval_cycles: 64 * 1024,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Checks the invariants.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry or a zero decay interval.
    pub fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "size must be 2^n");
        assert!(self.block_bytes.is_power_of_two(), "block must be 2^n");
        assert!(self.associativity >= 1, "need at least one way");
        assert!(
            self.decay_interval_cycles > 0,
            "decay interval must be positive"
        );
        let blocks = self.size_bytes / self.block_bytes;
        assert!(
            blocks.is_multiple_of(u64::from(self.associativity))
                && (blocks / u64::from(self.associativity)).is_power_of_two(),
            "set count must be a power of two"
        );
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / u64::from(self.associativity)
    }

    fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    block_addr: u64,
    /// Cycle of the last reference (drives decay). A line whose last use
    /// is older than the decay interval is *dead*: gated off, but its tag
    /// is retained by the model so decay-induced misses can be classified.
    last_used_cycle: u64,
    /// Monotonic counter for LRU among live lines.
    lru: u64,
    filled_at: u64,
    /// Whether this line's current death has been tallied by a sweep.
    dead_counted: bool,
}

/// Decay statistics beyond the common cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecayStats {
    /// Misses caused by decay (the line was present but gated off) — the
    /// policy's "premature decay" cost.
    pub decay_induced_misses: u64,
    /// Lines gated off by the sweeps.
    pub lines_decayed: u64,
}

/// The decaying i-cache.
#[derive(Debug, Clone)]
pub struct DecayICache {
    cfg: DecayConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    decay_stats: DecayStats,
    clock: u64,
    rng: SmallRng,
    // Precomputed geometry: shift/mask indexing instead of per-access
    // division through `DecayConfig::num_sets`.
    offset_bits: u32,
    index_mask: u64,
    ways: usize,
    // Active-fraction integration: swept periodically.
    next_sweep_cycle: u64,
    last_mark_cycle: u64,
    weighted_live_cycles: f64,
    live_at_mark: u64,
    finished_at: Option<u64>,
}

impl DecayICache {
    /// Builds an empty decaying cache (empty lines count as gated).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DecayConfig) -> Self {
        cfg.validate();
        let total = (cfg.num_sets() * u64::from(cfg.associativity)) as usize;
        let sweep = (cfg.decay_interval_cycles / 4).max(1);
        DecayICache {
            lines: vec![Line::default(); total],
            stats: CacheStats::default(),
            decay_stats: DecayStats::default(),
            clock: 0,
            rng: SmallRng::seed_from_u64(0xDECA_4DE0),
            offset_bits: cfg.offset_bits(),
            index_mask: cfg.num_sets() - 1,
            ways: cfg.associativity as usize,
            cfg,
            next_sweep_cycle: sweep,
            last_mark_cycle: 0,
            weighted_live_cycles: 0.0,
            live_at_mark: 0,
            finished_at: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DecayConfig {
        &self.cfg
    }

    /// Decay-specific statistics.
    pub fn decay_stats(&self) -> &DecayStats {
        &self.decay_stats
    }

    fn is_live(&self, line: &Line, cycle: u64) -> bool {
        line.valid && cycle.saturating_sub(line.last_used_cycle) < self.cfg.decay_interval_cycles
    }

    /// Number of lines currently live (powered) at `cycle`.
    pub fn live_lines(&self, cycle: u64) -> u64 {
        self.lines.iter().filter(|l| self.is_live(l, cycle)).count() as u64
    }

    /// Average powered fraction of the array over the run (integrated at
    /// sweep granularity: decay_interval / 4).
    pub fn avg_active_fraction(&self) -> f64 {
        let end = self.finished_at.unwrap_or(self.last_mark_cycle);
        if end == 0 {
            return 1.0;
        }
        (self.weighted_live_cycles / end as f64) / self.lines.len() as f64
    }

    fn sweep(&mut self, cycle: u64) {
        // Integrate the previous segment at its live count, then re-count.
        let span = (cycle.max(self.last_mark_cycle) - self.last_mark_cycle) as f64;
        self.weighted_live_cycles += span * self.live_at_mark as f64;
        self.last_mark_cycle = cycle.max(self.last_mark_cycle);
        let interval = self.cfg.decay_interval_cycles;
        let mut live = 0u64;
        for line in &mut self.lines {
            if !line.valid {
                continue;
            }
            if cycle.saturating_sub(line.last_used_cycle) >= interval {
                if !line.dead_counted {
                    line.dead_counted = true;
                    self.decay_stats.lines_decayed += 1;
                }
            } else {
                live += 1;
            }
        }
        self.live_at_mark = live;
        let step = (self.cfg.decay_interval_cycles / 4).max(1);
        while self.next_sweep_cycle <= cycle {
            self.next_sweep_cycle += step;
        }
    }

    fn maybe_sweep(&mut self, cycle: u64) {
        if cycle >= self.next_sweep_cycle {
            self.sweep(cycle);
        }
    }

    #[inline]
    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }
}

impl InstCache for DecayICache {
    #[inline]
    fn access(&mut self, addr: u64, cycle: u64) -> bool {
        self.maybe_sweep(cycle);
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.reads += 1;
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        let range = self.set_range(set);
        let interval = self.cfg.decay_interval_cycles;

        // Hit: line valid *and* not decayed (dead lines keep their tags in
        // the model purely so this classification is possible).
        let mut decayed_match = false;
        for line in &mut self.lines[range.clone()] {
            if line.valid && line.block_addr == block {
                if cycle.saturating_sub(line.last_used_cycle) < interval {
                    line.last_used_cycle = cycle;
                    line.lru = self.clock;
                    self.stats.hits += 1;
                    return true;
                }
                // Present but gated: the decay was premature.
                line.valid = false;
                decayed_match = true;
                break;
            }
        }
        self.stats.misses += 1;
        if decayed_match {
            self.decay_stats.decay_induced_misses += 1;
        }

        // Allocate: prefer an invalid/decayed way, else evict.
        let clock = self.clock;
        let lines = &mut self.lines[range];
        let victim = if let Some(i) = lines
            .iter()
            .position(|l| !l.valid || cycle.saturating_sub(l.last_used_cycle) >= interval)
        {
            i
        } else {
            self.stats.evictions += 1;
            self.cfg.replacement.pick_victim_with(
                lines.len(),
                |i| lines[i].lru,
                |i| lines[i].filled_at,
                &mut self.rng,
            )
        };
        lines[victim] = Line {
            valid: true,
            block_addr: block,
            last_used_cycle: cycle,
            lru: clock,
            filled_at: clock,
            dead_counted: false,
        };
        false
    }

    fn hit_latency(&self) -> u64 {
        self.cfg.latency
    }

    fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    fn finish(&mut self, cycle: u64) {
        self.sweep(cycle);
        self.finished_at = Some(cycle.max(1));
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl LeakagePolicy for DecayICache {
    fn policy_id(&self) -> &'static str {
        "decay"
    }

    fn active_size_bytes(&self) -> u64 {
        // Live-line count as of the last sweep mark: decay has no single
        // "current size" between sweeps, so the mark is the honest answer.
        self.live_at_mark * self.cfg.block_bytes
    }

    fn avg_active_fraction(&self) -> f64 {
        DecayICache::avg_active_fraction(self)
    }

    fn avg_size_bytes(&self) -> f64 {
        DecayICache::avg_active_fraction(self) * self.cfg.size_bytes as f64
    }

    fn resizes(&self) -> u64 {
        self.decay_stats.lines_decayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(interval: u64) -> DecayConfig {
        DecayConfig {
            size_bytes: 2048,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            decay_interval_cycles: interval,
            replacement: ReplacementPolicy::Lru,
        }
    }

    #[test]
    fn recently_used_lines_hit() {
        let mut c = DecayICache::new(small(1000));
        assert!(!c.access(0x100, 10));
        assert!(c.access(0x100, 20));
        assert!(c.access(0x100, 900));
    }

    #[test]
    fn stale_lines_decay_and_miss() {
        let mut c = DecayICache::new(small(1000));
        let _ = c.access(0x100, 0);
        // Next touch at cycle 1500: past the decay interval — a miss, and
        // specifically a decay-induced one.
        assert!(!c.access(0x100, 1500));
        assert_eq!(c.decay_stats().decay_induced_misses, 1);
        // Refilled: hits again.
        assert!(c.access(0x100, 1510));
    }

    #[test]
    fn touching_resets_the_decay_timer() {
        let mut c = DecayICache::new(small(1000));
        let _ = c.access(0x100, 0);
        assert!(c.access(0x100, 900));
        // 900 + 999 < 900 + 1000: still live because the timer restarted.
        assert!(c.access(0x100, 1899));
    }

    #[test]
    fn live_lines_reflect_decay() {
        let mut c = DecayICache::new(small(1000));
        for i in 0..8u64 {
            let _ = c.access(i * 32, 0);
        }
        assert_eq!(c.live_lines(10), 8);
        assert_eq!(c.live_lines(2000), 0, "all decayed");
    }

    #[test]
    fn active_fraction_falls_for_idle_caches() {
        let mut c = DecayICache::new(small(1000));
        for i in 0..32u64 {
            let _ = c.access(i * 32, 0);
        }
        // Idle for a long time: sweeps run on finish.
        c.finish(100_000);
        assert!(
            c.avg_active_fraction() < 0.1,
            "fraction {}",
            c.avg_active_fraction()
        );
    }

    #[test]
    fn hot_loop_keeps_its_lines_live() {
        let mut c = DecayICache::new(small(1000));
        let mut cycle = 0;
        for _ in 0..1000 {
            for i in 0..8u64 {
                cycle += 10;
                let _ = c.access(i * 32, cycle);
            }
        }
        c.finish(cycle);
        // 8 of 64 lines stay live: fraction near 8/64 after warmup.
        let f = c.avg_active_fraction();
        assert!(f > 0.05 && f < 0.3, "fraction {f}");
        assert_eq!(c.decay_stats().decay_induced_misses, 0);
    }

    #[test]
    fn shorter_intervals_decay_more_aggressively() {
        let run = |interval: u64| {
            let mut c = DecayICache::new(small(interval));
            let mut cycle = 0;
            // Re-touch each line every ~640 cycles.
            for _ in 0..200 {
                for i in 0..8u64 {
                    cycle += 80;
                    let _ = c.access(i * 32, cycle);
                }
            }
            c.finish(cycle);
            (
                c.decay_stats().decay_induced_misses,
                c.avg_active_fraction(),
            )
        };
        let (short_misses, short_frac) = run(500); // reuse distance 640 > 500
        let (long_misses, long_frac) = run(5000);
        assert!(short_misses > long_misses);
        assert!(short_frac < long_frac);
    }

    #[test]
    fn associative_decay_prefers_dead_ways_for_allocation() {
        let mut cfg = small(1000);
        cfg.associativity = 2;
        let mut c = DecayICache::new(cfg);
        let s = 32 * 32; // same-set stride (32 sets of 32B)
        let _ = c.access(0, 0);
        let _ = c.access(s, 10);
        // Let way holding block 0 decay, then allocate a third block: it
        // must take the dead way, leaving the live line resident.
        let _ = c.access(2 * s, 1500);
        assert!(c.access(2 * s, 1510));
        assert_eq!(c.stats().evictions, 0, "dead way reused, no eviction");
    }

    #[test]
    #[should_panic(expected = "decay interval")]
    fn rejects_zero_interval() {
        let _ = DecayICache::new(small(0));
    }
}
