//! A dynamically resizable *data* cache: the extension the paper scoped
//! out ("because of complications involving dirty cache blocks, studying
//! d-cache designs is beyond the scope of this paper", §2).
//!
//! Two complications distinguish the d-cache from the i-cache, and this
//! module implements both:
//!
//! 1. **Downsizing gates dirty lines.** Before a set is powered off, its
//!    dirty lines must be written back; [`ResizableDCache::resize_writebacks`]
//!    counts them so the harness can charge L2 energy/latency.
//! 2. **Upsizing cannot tolerate aliases.** For a read-only i-cache,
//!    multiple stale copies are harmless; for a write-back d-cache a write
//!    to one alias would orphan the others. On every fill, this design
//!    probes the block's position under each intermediate size (at most
//!    `log2(max/bound)` extra probes, sequential in hardware and off the
//!    hit path) and invalidates any alias found — writing it back first if
//!    dirty, since the alias may hold the freshest data.
//!
//! The adaptive feedback loop (miss counter, sense interval, miss-bound,
//! size-bound, divisibility, throttle) is identical to the i-cache's.

use crate::config::DriConfig;
use cache_sim::cache::AccessKind;
use cache_sim::policy::LeakagePolicy;
use cache_sim::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    block_addr: u64,
    last_used: u64,
    filled_at: u64,
}

/// Outcome of one d-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DAccess {
    /// Whether the block was present (and not just as a stale alias).
    pub hit: bool,
    /// Dirty lines written back by this access (evictions plus dirty
    /// aliases removed on fill).
    pub writebacks: u64,
}

/// The resizable write-back data cache.
#[derive(Debug, Clone)]
pub struct ResizableDCache {
    cfg: DriConfig,
    lines: Vec<Line>,
    active_sets: u64,
    stats: CacheStats,
    clock: u64,
    rng: SmallRng,
    // Precomputed per-access geometry, maintained across resizes (see
    // `DriICache`): offset shift and current size mask.
    offset_bits: u32,
    index_mask: u64,
    ways: usize,
    interval_misses: u64,
    insts_into_interval: u64,
    intervals_elapsed: u64,
    resizes: u64,
    resize_writebacks: u64,
    lockout_remaining: u32,
    throttle_counter: u32,
    last_resize_pair: Option<(u64, u64)>,
    last_mark_cycle: u64,
    weighted_set_cycles: f64,
    finished_at: Option<u64>,
}

impl ResizableDCache {
    /// Builds the cache at full size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`DriConfig::validate`]).
    pub fn new(cfg: DriConfig) -> Self {
        cfg.validate();
        let total = (cfg.max_sets() * u64::from(cfg.associativity)) as usize;
        ResizableDCache {
            lines: vec![Line::default(); total],
            active_sets: cfg.max_sets(),
            stats: CacheStats::default(),
            clock: 0,
            rng: SmallRng::seed_from_u64(0xDCAC_4E51),
            offset_bits: cfg.offset_bits(),
            index_mask: cfg.max_sets() - 1,
            ways: cfg.associativity as usize,
            cfg,
            interval_misses: 0,
            insts_into_interval: 0,
            intervals_elapsed: 0,
            resizes: 0,
            resize_writebacks: 0,
            lockout_remaining: 0,
            throttle_counter: 0,
            last_resize_pair: None,
            last_mark_cycle: 0,
            weighted_set_cycles: 0.0,
            finished_at: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DriConfig {
        &self.cfg
    }

    /// Currently powered sets.
    pub fn active_sets(&self) -> u64 {
        self.active_sets
    }

    /// Currently powered capacity in bytes.
    pub fn active_size_bytes(&self) -> u64 {
        self.active_sets * self.cfg.block_bytes * u64::from(self.cfg.associativity)
    }

    /// Common cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resizes performed.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Dirty lines written back *because of downsizing* (as opposed to
    /// ordinary evictions) — the cost unique to resizable d-caches.
    pub fn resize_writebacks(&self) -> u64 {
        self.resize_writebacks
    }

    /// Average powered fraction over cycles.
    pub fn avg_active_fraction(&self) -> f64 {
        let end = self.finished_at.unwrap_or(self.last_mark_cycle);
        if end == 0 {
            return 1.0;
        }
        (self.weighted_set_cycles / end as f64) / self.cfg.max_sets() as f64
    }

    #[inline]
    fn row(&self, set: u64) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }

    /// Looks up the block under the *current* mask without side effects.
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        self.lines[self.row(set)]
            .iter()
            .any(|l| l.valid && l.block_addr == block)
    }

    /// Removes aliases of `block` at every size's position except the
    /// current one; returns how many dirty aliases had to be written back.
    fn scrub_aliases(&mut self, block: u64) -> u64 {
        let current_set = block & self.index_mask;
        let mut writebacks = 0;
        let mut sets_checked = self.cfg.bound_sets();
        while sets_checked <= self.cfg.max_sets() {
            let set = block & (sets_checked - 1);
            if set != current_set {
                let row = self.row(set);
                for line in &mut self.lines[row] {
                    if line.valid && line.block_addr == block {
                        if line.dirty {
                            writebacks += 1;
                            self.stats.writebacks += 1;
                        }
                        line.valid = false;
                        self.stats.invalidations += 1;
                    }
                }
            }
            sets_checked *= 2;
        }
        writebacks
    }

    /// Performs a load (`AccessKind::Read`) or store (`AccessKind::Write`).
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind, _cycle: u64) -> DAccess {
        self.clock += 1;
        self.stats.accesses += 1;
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        let row = self.row(set);

        if let Some(line) = self.lines[row.clone()]
            .iter_mut()
            .find(|l| l.valid && l.block_addr == block)
        {
            line.last_used = self.clock;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return DAccess {
                hit: true,
                writebacks: 0,
            };
        }

        self.stats.misses += 1;
        self.interval_misses += 1;
        // A stale alias elsewhere may hold the freshest copy: scrub before
        // refetching (the fill conceptually reads the written-back data).
        let mut writebacks = self.scrub_aliases(block);

        let clock = self.clock;
        let dirty = kind == AccessKind::Write;
        let lines = &mut self.lines[row];
        if let Some(line) = lines.iter_mut().find(|l| !l.valid) {
            *line = Line {
                valid: true,
                dirty,
                block_addr: block,
                last_used: clock,
                filled_at: clock,
            };
            return DAccess {
                hit: false,
                writebacks,
            };
        }
        let victim = self.cfg.replacement.pick_victim_with(
            lines.len(),
            |i| lines[i].last_used,
            |i| lines[i].filled_at,
            &mut self.rng,
        );
        if lines[victim].dirty {
            writebacks += 1;
            self.stats.writebacks += 1;
        }
        self.stats.evictions += 1;
        lines[victim] = Line {
            valid: true,
            dirty,
            block_addr: block,
            last_used: clock,
            filled_at: clock,
        };
        DAccess {
            hit: false,
            writebacks,
        }
    }

    fn advance_integration(&mut self, cycle: u64) {
        let cycle = cycle.max(self.last_mark_cycle);
        let span = (cycle - self.last_mark_cycle) as f64;
        self.weighted_set_cycles += span * self.active_sets as f64;
        self.last_mark_cycle = cycle;
    }

    fn apply_size(&mut self, new_sets: u64, cycle: u64) {
        if new_sets == self.active_sets {
            return;
        }
        self.advance_integration(cycle);
        if new_sets < self.active_sets {
            // Write back dirty lines in the sets being gated, then drop
            // everything in them.
            let ways = self.cfg.associativity as usize;
            let start = new_sets as usize * ways;
            let end = self.active_sets as usize * ways;
            for line in &mut self.lines[start..end] {
                if line.valid {
                    if line.dirty {
                        self.resize_writebacks += 1;
                        self.stats.writebacks += 1;
                    }
                    line.valid = false;
                    self.stats.invalidations += 1;
                }
            }
        }
        self.active_sets = new_sets;
        self.index_mask = new_sets - 1;
        self.resizes += 1;
    }

    fn end_interval(&mut self, cycle: u64) {
        self.intervals_elapsed += 1;
        if self.lockout_remaining > 0 {
            self.lockout_remaining -= 1;
        }
        let misses = self.interval_misses;
        self.interval_misses = 0;
        let from = self.active_sets;
        if misses > self.cfg.miss_bound {
            let to = (from * u64::from(self.cfg.divisibility)).min(self.cfg.max_sets());
            if to != from {
                self.apply_size(to, cycle);
                self.note_throttle(from, to);
            }
        } else if misses < self.cfg.miss_bound && self.lockout_remaining == 0 {
            let to = (from / u64::from(self.cfg.divisibility)).max(self.cfg.bound_sets());
            if to != from {
                self.apply_size(to, cycle);
                self.note_throttle(from, to);
            }
        }
    }

    fn note_throttle(&mut self, from: u64, to: u64) {
        if !self.cfg.throttle.enabled {
            return;
        }
        if self.last_resize_pair == Some((to, from)) {
            self.throttle_counter = (self.throttle_counter + 1).min(self.cfg.throttle.saturation());
            if self.throttle_counter == self.cfg.throttle.saturation() {
                self.lockout_remaining = self.cfg.throttle.lockout_intervals;
                self.throttle_counter = 0;
            }
        } else {
            self.throttle_counter = 0;
        }
        self.last_resize_pair = Some((from, to));
    }

    /// Instruction-count feed for the sense-interval machinery.
    pub fn retire_instructions(&mut self, n: u64, cycle: u64) {
        self.insts_into_interval += n;
        while self.insts_into_interval >= self.cfg.sense_interval {
            self.insts_into_interval -= self.cfg.sense_interval;
            self.end_interval(cycle);
        }
    }

    /// Closes the active-fraction integration.
    pub fn finish(&mut self, cycle: u64) {
        self.advance_integration(cycle);
        self.finished_at = Some(cycle.max(1));
    }
}

// The d-cache has its own read/write access surface (it is not an
// `InstCache`), but its leakage accounting is the same shape as every
// other model's — which is exactly why the two facets are separate traits.
impl LeakagePolicy for ResizableDCache {
    fn policy_id(&self) -> &'static str {
        "dri_dcache"
    }

    fn active_size_bytes(&self) -> u64 {
        ResizableDCache::active_size_bytes(self)
    }

    fn avg_active_fraction(&self) -> f64 {
        ResizableDCache::avg_active_fraction(self)
    }

    fn avg_size_bytes(&self) -> f64 {
        ResizableDCache::avg_active_fraction(self) * self.cfg.max_size_bytes as f64
    }

    fn resizes(&self) -> u64 {
        ResizableDCache::resizes(self)
    }

    fn intervals(&self) -> u64 {
        self.intervals_elapsed
    }

    fn resizing_tag_bits(&self) -> u32 {
        self.cfg.resizing_tag_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThrottleConfig;
    use cache_sim::replacement::ReplacementPolicy;

    fn cfg() -> DriConfig {
        DriConfig {
            max_size_bytes: 4096,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            size_bound_bytes: 512,
            miss_bound: 10,
            sense_interval: 1000,
            divisibility: 2,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        }
    }

    #[test]
    fn read_your_writes() {
        let mut c = ResizableDCache::new(cfg());
        let a = c.access(0x100, AccessKind::Write, 0);
        assert!(!a.hit);
        assert!(c.access(0x100, AccessKind::Read, 1).hit);
    }

    #[test]
    fn downsizing_writes_back_dirty_lines_only() {
        let mut c = ResizableDCache::new(cfg());
        // Set 100 (gated by the first downsize): one dirty, one clean in
        // nearby gated sets.
        let dirty_addr = 100 * 32;
        let clean_addr = 101 * 32;
        let _ = c.access(dirty_addr, AccessKind::Write, 0);
        let _ = c.access(clean_addr, AccessKind::Read, 0);
        assert_eq!(c.resize_writebacks(), 0);
        c.retire_instructions(1000, 1000); // quiet interval: 128 -> 64 sets
        assert_eq!(c.active_sets(), 64);
        assert_eq!(c.resize_writebacks(), 1, "only the dirty line writes back");
        assert!(!c.probe(dirty_addr));
        assert!(!c.probe(clean_addr));
    }

    #[test]
    fn surviving_dirty_lines_keep_their_data() {
        let mut c = ResizableDCache::new(cfg());
        let low = 3 * 32; // set 3 survives any downsize above the bound
        let _ = c.access(low, AccessKind::Write, 0);
        c.retire_instructions(1000, 1000);
        assert!(c.probe(low));
        assert!(c.access(low, AccessKind::Read, 2000).hit);
        assert_eq!(c.resize_writebacks(), 0);
    }

    #[test]
    fn upsizing_never_leaves_a_dirty_alias_behind() {
        let mut c = ResizableDCache::new(cfg());
        // Shrink to 64 sets, dirty a block whose 128-set index differs.
        c.retire_instructions(1000, 1000);
        assert_eq!(c.active_sets(), 64);
        let block = 100u64; // at 64 sets -> set 36; at 128 sets -> set 100
        let addr = block * 32;
        let _ = c.access(addr, AccessKind::Write, 1500);
        // Grow back to 128 sets.
        for i in 0..20u64 {
            let _ = c.access(i * 32 * 1024 + 7 * 32, AccessKind::Read, 1500);
        }
        c.retire_instructions(1000, 2000);
        assert_eq!(c.active_sets(), 128);
        // Access under the new mask: the stale dirty alias at set 36 must
        // be scrubbed (written back) as part of the refill.
        let out = c.access(addr, AccessKind::Read, 2500);
        assert!(!out.hit);
        assert_eq!(out.writebacks, 1, "dirty alias written back");
        // The block is now resident exactly once (at the current mask);
        // re-scrubbing finds nothing more to write back.
        assert!(c.probe(addr));
        let again = c.access(addr, AccessKind::Read, 2600);
        assert!(again.hit);
        assert_eq!(again.writebacks, 0);
    }

    #[test]
    fn eviction_of_dirty_victim_counts_a_writeback() {
        let mut c = ResizableDCache::new(cfg());
        let _ = c.access(0, AccessKind::Write, 0);
        let out = c.access(4096, AccessKind::Read, 1); // conflicts in 128-set DM
        assert!(!out.hit);
        assert_eq!(out.writebacks, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn adaptive_loop_matches_icache_behaviour() {
        let mut c = ResizableDCache::new(cfg());
        let mut cycle = 0;
        for expected in [64, 32, 16, 16] {
            cycle += 1000;
            c.retire_instructions(1000, cycle);
            assert_eq!(c.active_sets(), expected);
        }
        c.finish(cycle);
        assert!(c.avg_active_fraction() < 1.0);
        assert!(c.resizes() >= 3);
    }

    #[test]
    fn writes_to_hit_lines_do_not_writeback() {
        let mut c = ResizableDCache::new(cfg());
        let _ = c.access(0x40, AccessKind::Write, 0);
        let _ = c.access(0x40, AccessKind::Write, 1);
        let _ = c.access(0x40, AccessKind::Write, 2);
        assert_eq!(c.stats().writebacks, 0);
    }
}
