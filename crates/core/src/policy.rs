//! Per-level leakage-policy selection: which cache model guards the L1
//! i-cache, and how its parameters derive from the DRI baseline.
//!
//! [`PolicyConfig`] is the *configuration-side* counterpart of the
//! [`cache_sim::policy::LeakagePolicy`] trait: one enum variant per
//! adaptive i-cache model, carrying that model's full parameter set, with
//! a stable [`id`](PolicyConfig::id) string matching the model's
//! `policy_id`. The experiments crate threads a `PolicyConfig` through
//! `RunConfig`, the result-store key derivation, the manifest's
//! `policy =` option, and the `DRI_POLICY` environment variable, so any
//! figure can run under any policy — and the derived FNV-128 keys stay
//! disjoint per policy kind.
//!
//! The `*_from` constructors derive each alternative policy's parameters
//! from a [`DriConfig`], so a sweep that tunes the DRI miss-bound and
//! size-bound can be replayed under decay, way-resizing, or
//! way-memoization on the *same geometry* with directly comparable
//! feedback settings.

use crate::config::DriConfig;
use crate::decay::DecayConfig;
use crate::way_memo::WayMemoConfig;
use crate::way_resize::WayConfig;

/// Which leakage policy guards the L1 i-cache, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyConfig {
    /// DRI set-resizing under gated-Vdd (the paper's contribution).
    Dri(DriConfig),
    /// Per-line cache decay (Kaxiras/Hu/Martonosi).
    Decay(DecayConfig),
    /// Way-resizing (the Albonesi-style alternative of paper §2).
    WayResize(WayConfig),
    /// Way-memoization adapted to leakage (Ishihara & Fallah).
    WayMemo(WayMemoConfig),
}

impl PolicyConfig {
    /// The stable policy-kind identifier, matching the corresponding
    /// model's `LeakagePolicy::policy_id` (and the record kind under
    /// which its results are persisted).
    pub fn id(&self) -> &'static str {
        match self {
            PolicyConfig::Dri(_) => "dri",
            PolicyConfig::Decay(_) => "decay",
            PolicyConfig::WayResize(_) => "way_resize",
            PolicyConfig::WayMemo(_) => "way_memo",
        }
    }

    /// Every selectable policy id, in presentation order (the strings
    /// `DRI_POLICY` and the manifest's `policy =` option accept).
    pub fn all_ids() -> [&'static str; 4] {
        ["dri", "decay", "way_resize", "way_memo"]
    }

    /// Builds the policy named `id`, deriving its parameters from `dri`
    /// (see the `*_from` constructors). `None` for an unknown id.
    pub fn from_id(id: &str, dri: &DriConfig) -> Option<PolicyConfig> {
        match id {
            "dri" => Some(PolicyConfig::Dri(*dri)),
            "decay" => Some(PolicyConfig::Decay(Self::decay_from(dri))),
            "way_resize" => Some(PolicyConfig::WayResize(Self::way_resize_from(dri))),
            "way_memo" => Some(PolicyConfig::WayMemo(Self::way_memo_from(dri))),
            _ => None,
        }
    }

    /// A decay configuration on `dri`'s geometry. The decay interval is
    /// four sense intervals' worth of cycles: long enough that a line
    /// surviving a full DRI monitoring window is also kept alive here,
    /// short enough that dead lines gate within the same order of
    /// magnitude as a DRI downsize decision.
    pub fn decay_from(dri: &DriConfig) -> DecayConfig {
        DecayConfig {
            size_bytes: dri.max_size_bytes,
            block_bytes: dri.block_bytes,
            associativity: dri.associativity,
            latency: dri.latency,
            decay_interval_cycles: dri.sense_interval * 4,
            replacement: dri.replacement,
        }
    }

    /// A way-resizing configuration on `dri`'s geometry, sharing its
    /// miss-bound feedback loop (way-resizing has no size-bound — its
    /// floor is `min_ways`, here 1, i.e. `size / associativity` bytes).
    pub fn way_resize_from(dri: &DriConfig) -> WayConfig {
        WayConfig {
            size_bytes: dri.max_size_bytes,
            block_bytes: dri.block_bytes,
            associativity: dri.associativity,
            latency: dri.latency,
            min_ways: 1,
            miss_bound: dri.miss_bound,
            sense_interval: dri.sense_interval,
            throttle: dri.throttle,
            replacement: dri.replacement,
        }
    }

    /// A way-memoization configuration on `dri`'s geometry, gating
    /// unlinked lines after four sense intervals' worth of idle cycles
    /// (the same horizon as [`decay_from`](Self::decay_from), so the two
    /// line-granular policies compare like for like).
    pub fn way_memo_from(dri: &DriConfig) -> WayMemoConfig {
        WayMemoConfig {
            size_bytes: dri.max_size_bytes,
            block_bytes: dri.block_bytes,
            associativity: dri.associativity,
            latency: dri.latency,
            gate_interval_cycles: dri.sense_interval * 4,
            replacement: dri.replacement,
        }
    }

    /// Checks the selected policy's invariants.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped configuration is invalid (see each
    /// configuration type's `validate`).
    pub fn validate(&self) {
        match self {
            PolicyConfig::Dri(c) => c.validate(),
            PolicyConfig::Decay(c) => c.validate(),
            PolicyConfig::WayResize(c) => c.validate(),
            PolicyConfig::WayMemo(c) => c.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_roundtrips_and_validates() {
        let dri = DriConfig::hpca01_64k_4way();
        for id in PolicyConfig::all_ids() {
            let p = PolicyConfig::from_id(id, &dri).expect("known id");
            assert_eq!(p.id(), id);
            p.validate();
        }
        assert_eq!(PolicyConfig::from_id("nope", &dri), None);
    }

    #[test]
    fn derived_policies_share_the_dri_geometry() {
        let dri = DriConfig::hpca01_64k_dm();
        let decay = PolicyConfig::decay_from(&dri);
        assert_eq!(decay.size_bytes, dri.max_size_bytes);
        assert_eq!(decay.decay_interval_cycles, dri.sense_interval * 4);
        let way = PolicyConfig::way_resize_from(&dri);
        assert_eq!(way.size_bytes, dri.max_size_bytes);
        assert_eq!(way.miss_bound, dri.miss_bound);
        assert_eq!(way.min_ways, 1);
        let memo = PolicyConfig::way_memo_from(&dri);
        assert_eq!(memo.gate_interval_cycles, dri.sense_interval * 4);
        assert_eq!(memo.block_bytes, dri.block_bytes);
    }

    #[test]
    fn policy_config_is_hashable_and_comparable() {
        use std::collections::HashSet;
        let dri = DriConfig::hpca01_64k_4way();
        let mut set = HashSet::new();
        for id in PolicyConfig::all_ids() {
            set.insert(PolicyConfig::from_id(id, &dri).unwrap());
        }
        assert_eq!(set.len(), 4, "all four policies are distinct keys");
    }
}
