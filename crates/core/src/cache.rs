//! The Dynamically ResIzable i-cache (paper §2, Figure 1).
//!
//! A DRI i-cache is a set-associative cache whose *active set count* moves
//! between a size-bound and the full size under miss-rate feedback:
//!
//! * a **miss counter** accumulates misses over each **sense interval**
//!   (measured in committed instructions);
//! * at each interval end the cache **upsizes** (misses > miss-bound) or
//!   **downsizes** (misses < miss-bound) by the **divisibility** factor;
//! * the **size mask** selects index bits for the current size; tags always
//!   carry enough bits (the *resizing tag bits*) for the smallest size, so
//!   surviving blocks stay correct across downsizing without flushes;
//! * a **throttle** counter detects repeated resizing between two adjacent
//!   sizes and locks out downsizing for a fixed number of intervals;
//! * disabled sets are **gated off** (their contents are lost and their
//!   leakage collapses to the standby level — see `sram-circuit`).
//!
//! Upsizing can leave *aliases*: a block fetched at the new, larger index
//! may coexist with a stale copy at the old index. For a read-only i-cache
//! this is harmless (paper §2.2); [`DriICache::invalidate_all_aliases`]
//! provides the page-unmap escape hatch.

use crate::config::DriConfig;
use cache_sim::icache::InstCache;
use cache_sim::policy::LeakagePolicy;
use cache_sim::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Direction of a resize step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResizeDirection {
    /// The miss counter exceeded the miss-bound: more sets powered on.
    Upsize,
    /// The miss counter was below the miss-bound: sets gated off.
    Downsize,
}

/// A recorded size change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Simulation cycle of the decision.
    pub cycle: u64,
    /// Sense interval index (0-based) whose end triggered the change.
    pub interval: u64,
    /// Active sets before.
    pub from_sets: u64,
    /// Active sets after.
    pub to_sets: u64,
}

impl ResizeEvent {
    /// Direction of this event.
    pub fn direction(&self) -> ResizeDirection {
        if self.to_sets > self.from_sets {
            ResizeDirection::Upsize
        } else {
            ResizeDirection::Downsize
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    block_addr: u64,
    last_used: u64,
    filled_at: u64,
}

/// The DRI i-cache.
#[derive(Debug, Clone)]
pub struct DriICache {
    cfg: DriConfig,
    lines: Vec<Line>,
    active_sets: u64,
    stats: CacheStats,
    clock: u64,
    rng: SmallRng,
    // Precomputed per-access geometry: the offset shift and the size mask
    // of Figure 1 (`active_sets - 1`), maintained across resizes so the
    // fetch path performs no division.
    offset_bits: u32,
    index_mask: u64,
    ways: usize,
    // Sense-interval machinery.
    interval_misses: u64,
    insts_into_interval: u64,
    intervals_elapsed: u64,
    resize_events: Vec<ResizeEvent>,
    // Throttle.
    throttle_counter: u32,
    lockout_remaining: u32,
    last_resize_pair: Option<(u64, u64)>,
    // Active-fraction integration over cycles.
    last_mark_cycle: u64,
    weighted_set_cycles: f64,
    finished_at: Option<u64>,
}

impl DriICache {
    /// Builds a DRI i-cache, initially at full size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`DriConfig::validate`]).
    pub fn new(cfg: DriConfig) -> Self {
        cfg.validate();
        let total = (cfg.max_sets() * u64::from(cfg.associativity)) as usize;
        DriICache {
            lines: vec![Line::default(); total],
            active_sets: cfg.max_sets(),
            stats: CacheStats::default(),
            clock: 0,
            rng: SmallRng::seed_from_u64(0xD121_1CAC),
            offset_bits: cfg.offset_bits(),
            index_mask: cfg.max_sets() - 1,
            ways: cfg.associativity as usize,
            cfg,
            interval_misses: 0,
            insts_into_interval: 0,
            intervals_elapsed: 0,
            resize_events: Vec::new(),
            throttle_counter: 0,
            lockout_remaining: 0,
            last_resize_pair: None,
            last_mark_cycle: 0,
            weighted_set_cycles: 0.0,
            finished_at: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DriConfig {
        &self.cfg
    }

    /// Currently powered sets.
    pub fn active_sets(&self) -> u64 {
        self.active_sets
    }

    /// Currently powered capacity in bytes.
    pub fn active_size_bytes(&self) -> u64 {
        self.active_sets * self.cfg.block_bytes * u64::from(self.cfg.associativity)
    }

    /// Misses accumulated in the current sense interval.
    pub fn interval_misses(&self) -> u64 {
        self.interval_misses
    }

    /// Completed sense intervals.
    pub fn intervals_elapsed(&self) -> u64 {
        self.intervals_elapsed
    }

    /// Every resize that has occurred.
    pub fn resize_events(&self) -> &[ResizeEvent] {
        &self.resize_events
    }

    /// Whether downsizing is currently locked out by the throttle.
    pub fn is_throttled(&self) -> bool {
        self.lockout_remaining > 0
    }

    /// Average active fraction (powered sets over maximum sets), integrated
    /// over cycles up to `finish` (or the last event if not yet finished).
    pub fn avg_active_fraction(&self) -> f64 {
        let end = self.finished_at.unwrap_or(self.last_mark_cycle);
        if end == 0 {
            return 1.0;
        }
        // Integration is closed at each mark, so nothing is pending here.
        (self.weighted_set_cycles / end as f64) / self.cfg.max_sets() as f64
    }

    /// Average powered capacity in bytes over the run.
    pub fn avg_size_bytes(&self) -> f64 {
        self.avg_active_fraction() * self.cfg.max_size_bytes as f64
    }

    #[inline]
    fn row(&self, set: u64) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }

    /// Looks up the block containing `addr` under the current size mask
    /// without modifying state.
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        self.lines[self.row(set)]
            .iter()
            .any(|l| l.valid && l.block_addr == block)
    }

    /// Invalidates every copy of the block containing `addr`, at every
    /// set it may map to under any size — the page-unmap / i-d-coherence
    /// escape hatch of paper §2.2. Returns how many aliases were dropped.
    pub fn invalidate_all_aliases(&mut self, addr: u64) -> usize {
        let block = self.cfg.block_addr(addr);
        let mut dropped = 0;
        for line in &mut self.lines {
            if line.valid && line.block_addr == block {
                line.valid = false;
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }

    fn advance_integration(&mut self, cycle: u64) {
        let cycle = cycle.max(self.last_mark_cycle);
        let span = (cycle - self.last_mark_cycle) as f64;
        self.weighted_set_cycles += span * self.active_sets as f64;
        self.last_mark_cycle = cycle;
    }

    fn apply_size(&mut self, new_sets: u64, cycle: u64) {
        debug_assert!(new_sets.is_power_of_two());
        debug_assert!(new_sets >= self.cfg.bound_sets() && new_sets <= self.cfg.max_sets());
        if new_sets == self.active_sets {
            return;
        }
        self.advance_integration(cycle);
        self.resize_events.push(ResizeEvent {
            cycle,
            interval: self.intervals_elapsed,
            from_sets: self.active_sets,
            to_sets: new_sets,
        });
        if new_sets < self.active_sets {
            // Gate off the removed (highest-numbered) sets: contents lost.
            // Blocks resident in surviving sets keep indexing to the same
            // set because tags retain full size-bound resolution (§2.2).
            let ways = self.cfg.associativity as usize;
            let start = new_sets as usize * ways;
            let end = self.active_sets as usize * ways;
            for line in &mut self.lines[start..end] {
                if line.valid {
                    line.valid = false;
                    self.stats.invalidations += 1;
                }
            }
        }
        self.active_sets = new_sets;
        self.index_mask = new_sets - 1;
    }

    fn throttle_note_resize(&mut self, from: u64, to: u64) {
        if !self.cfg.throttle.enabled {
            return;
        }
        let reversal = self.last_resize_pair == Some((to, from));
        if reversal {
            self.throttle_counter = (self.throttle_counter + 1).min(self.cfg.throttle.saturation());
            if self.throttle_counter == self.cfg.throttle.saturation() {
                self.lockout_remaining = self.cfg.throttle.lockout_intervals;
                self.throttle_counter = 0;
            }
        } else {
            self.throttle_counter = 0;
        }
        self.last_resize_pair = Some((from, to));
    }

    fn end_interval(&mut self, cycle: u64) {
        self.intervals_elapsed += 1;
        if self.lockout_remaining > 0 {
            self.lockout_remaining -= 1;
        }
        let misses = self.interval_misses;
        self.interval_misses = 0;
        let from = self.active_sets;
        if misses > self.cfg.miss_bound {
            let to = (from * u64::from(self.cfg.divisibility)).min(self.cfg.max_sets());
            if to != from {
                self.apply_size(to, cycle);
                self.throttle_note_resize(from, to);
            }
        } else if misses < self.cfg.miss_bound && self.lockout_remaining == 0 {
            let to = (from / u64::from(self.cfg.divisibility)).max(self.cfg.bound_sets());
            if to != from {
                self.apply_size(to, cycle);
                self.throttle_note_resize(from, to);
            }
        }
    }
}

impl InstCache for DriICache {
    #[inline]
    fn access(&mut self, addr: u64, _cycle: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.reads += 1;
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        let row = self.row(set);

        if let Some(line) = self.lines[row.clone()]
            .iter_mut()
            .find(|l| l.valid && l.block_addr == block)
        {
            line.last_used = self.clock;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        self.interval_misses += 1;

        // Allocate: prefer an invalid way, else evict per policy.
        let lines = &mut self.lines[row];
        if let Some(line) = lines.iter_mut().find(|l| !l.valid) {
            *line = Line {
                valid: true,
                block_addr: block,
                last_used: self.clock,
                filled_at: self.clock,
            };
            return false;
        }
        let victim = self.cfg.replacement.pick_victim_with(
            lines.len(),
            |i| lines[i].last_used,
            |i| lines[i].filled_at,
            &mut self.rng,
        );
        self.stats.evictions += 1;
        lines[victim] = Line {
            valid: true,
            block_addr: block,
            last_used: self.clock,
            filled_at: self.clock,
        };
        false
    }

    fn hit_latency(&self) -> u64 {
        self.cfg.latency
    }

    fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    fn retire_instructions(&mut self, n: u64, cycle: u64) {
        self.insts_into_interval += n;
        while self.insts_into_interval >= self.cfg.sense_interval {
            self.insts_into_interval -= self.cfg.sense_interval;
            self.end_interval(cycle);
        }
    }

    fn finish(&mut self, cycle: u64) {
        self.advance_integration(cycle);
        self.finished_at = Some(cycle.max(1));
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl LeakagePolicy for DriICache {
    fn policy_id(&self) -> &'static str {
        "dri"
    }

    fn active_size_bytes(&self) -> u64 {
        DriICache::active_size_bytes(self)
    }

    fn avg_active_fraction(&self) -> f64 {
        DriICache::avg_active_fraction(self)
    }

    fn avg_size_bytes(&self) -> f64 {
        // Delegates to the exact inherent computation so trait-driven
        // runners replay bit-identical to pre-trait records.
        DriICache::avg_size_bytes(self)
    }

    fn resizes(&self) -> u64 {
        self.resize_events.len() as u64
    }

    fn intervals(&self) -> u64 {
        self.intervals_elapsed
    }

    fn resizing_tag_bits(&self) -> u32 {
        self.cfg.resizing_tag_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThrottleConfig;

    fn small_cfg() -> DriConfig {
        // 4K max, 32B blocks, DM -> 128 sets; bound 512B -> 16 sets.
        DriConfig {
            max_size_bytes: 4096,
            block_bytes: 32,
            associativity: 1,
            latency: 1,
            size_bound_bytes: 512,
            miss_bound: 10,
            sense_interval: 1000,
            divisibility: 2,
            throttle: ThrottleConfig::default(),
            replacement: cache_sim::replacement::ReplacementPolicy::Lru,
        }
    }

    /// Runs `n` committed instructions with zero i-cache activity, at one
    /// instruction per cycle starting from `cycle`.
    fn idle_interval(c: &mut DriICache, cycle: &mut u64, n: u64) {
        c.retire_instructions(n, *cycle + n);
        *cycle += n;
    }

    #[test]
    fn starts_at_full_size() {
        let c = DriICache::new(small_cfg());
        assert_eq!(c.active_sets(), 128);
        assert_eq!(c.active_size_bytes(), 4096);
    }

    #[test]
    fn downsizes_when_quiet_and_stops_at_bound() {
        let mut c = DriICache::new(small_cfg());
        let mut cycle = 0;
        // Each quiet interval halves the size: 128->64->32->16, then stays.
        for expected in [64, 32, 16, 16, 16] {
            idle_interval(&mut c, &mut cycle, 1000);
            assert_eq!(c.active_sets(), expected);
        }
        assert_eq!(c.active_size_bytes(), 512);
    }

    #[test]
    fn upsizes_when_missing_and_stops_at_max() {
        let mut c = DriICache::new(small_cfg());
        let mut cycle = 0;
        idle_interval(&mut c, &mut cycle, 1000); // 64 sets
        idle_interval(&mut c, &mut cycle, 1000); // 32 sets
        assert_eq!(c.active_sets(), 32);
        // Generate > miss_bound misses, then close the interval.
        for i in 0..20u64 {
            let _ = c.access(i * 32 * 1024, cycle);
        }
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 64, "should upsize after missing");
    }

    #[test]
    fn exact_miss_bound_holds_size() {
        let mut c = DriICache::new(small_cfg());
        let mut cycle = 0;
        // Exactly miss_bound misses: neither upsize nor downsize.
        for i in 0..10u64 {
            let _ = c.access(i * 32 * 1024, cycle);
        }
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 128);
    }

    #[test]
    fn surviving_blocks_stay_visible_across_downsize() {
        let mut c = DriICache::new(small_cfg());
        // Fill set 3 (addr block index 3) — survives a 128->64 downsize.
        let low_addr = 3 * 32;
        let _ = c.access(low_addr, 0);
        assert!(c.probe(low_addr));
        let mut cycle = 0;
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 64);
        assert!(c.probe(low_addr), "set 3 < 64 survives");
        assert!(c.access(low_addr, cycle), "still a hit");
    }

    #[test]
    fn gated_sets_lose_contents_on_downsize() {
        let mut c = DriICache::new(small_cfg());
        // Set 100 (>= 64) is gated off by the first downsize.
        let high_addr = 100 * 32;
        let _ = c.access(high_addr, 0);
        assert!(c.probe(high_addr));
        let mut cycle = 0;
        idle_interval(&mut c, &mut cycle, 1000);
        assert!(!c.probe(high_addr), "set 100 was gated off");
        // Re-access misses and reallocates at the new index (100 & 63 = 36).
        assert!(!c.access(high_addr, cycle));
        assert!(c.probe(high_addr));
    }

    #[test]
    fn upsize_can_create_aliases_and_invalidate_clears_them() {
        let mut c = DriICache::new(small_cfg());
        let mut cycle = 0;
        idle_interval(&mut c, &mut cycle, 1000); // 64 sets
                                                 // Block index 100: at 64 sets it maps to set 36.
        let addr = 100 * 32;
        let _ = c.access(addr, cycle);
        assert!(c.probe(addr));
        // Force an upsize back to 128 sets.
        for i in 0..20u64 {
            let _ = c.access(i * 32 * 1024 + 7 * 32, cycle);
        }
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 128);
        // Under 128 sets the block maps to set 100, where it is absent:
        // the stale alias sits in set 36.
        assert!(!c.probe(addr));
        let _ = c.access(addr, cycle); // refetch -> two copies now
        assert_eq!(c.invalidate_all_aliases(addr), 2);
        assert!(!c.probe(addr));
    }

    #[test]
    fn throttle_locks_out_downsizing_after_repeated_reversals() {
        let mut cfg = small_cfg();
        cfg.size_bound_bytes = 2048; // adjacent pair: 128 <-> 64
        let mut c = DriICache::new(cfg);
        let mut cycle = 0;
        // Alternate quiet (downsize) and missing (upsize) intervals to
        // thrash between 64 and 128 sets. Each direction change is a
        // reversal; the 3-bit counter saturates at 7.
        let mut saw_throttle = false;
        for _ in 0..12 {
            idle_interval(&mut c, &mut cycle, 1000); // try downsize
            for i in 0..20u64 {
                let _ = c.access(i * 32 * 1024, cycle);
            }
            idle_interval(&mut c, &mut cycle, 1000); // try upsize
            if c.is_throttled() {
                saw_throttle = true;
                break;
            }
        }
        assert!(saw_throttle, "thrashing should engage the throttle");
        // While locked out, quiet intervals do not downsize.
        let before = c.active_sets();
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), before);
    }

    #[test]
    fn throttle_lockout_expires() {
        let mut cfg = small_cfg();
        cfg.size_bound_bytes = 2048;
        cfg.throttle.lockout_intervals = 2;
        let mut c = DriICache::new(cfg);
        let mut cycle = 0;
        for _ in 0..16 {
            idle_interval(&mut c, &mut cycle, 1000);
            for i in 0..20u64 {
                let _ = c.access(i * 32 * 1024, cycle);
            }
            idle_interval(&mut c, &mut cycle, 1000);
            if c.is_throttled() {
                break;
            }
        }
        assert!(c.is_throttled());
        idle_interval(&mut c, &mut cycle, 1000);
        idle_interval(&mut c, &mut cycle, 1000);
        assert!(!c.is_throttled(), "lockout should expire");
    }

    #[test]
    fn disabled_throttle_never_locks_out() {
        let mut cfg = small_cfg();
        cfg.size_bound_bytes = 2048;
        cfg.throttle.enabled = false;
        let mut c = DriICache::new(cfg);
        let mut cycle = 0;
        for _ in 0..20 {
            idle_interval(&mut c, &mut cycle, 1000);
            for i in 0..20u64 {
                let _ = c.access(i * 32 * 1024, cycle);
            }
            idle_interval(&mut c, &mut cycle, 1000);
        }
        assert!(!c.is_throttled());
    }

    #[test]
    fn active_fraction_integrates_over_cycles() {
        let mut c = DriICache::new(small_cfg());
        let mut cycle = 0;
        // 1000 cycles at full size, then downsize to half for 1000 cycles.
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 64);
        c.finish(2000);
        // First 1000 cycles at 128/128, next 1000 at 64/128: avg 0.75.
        let f = c.avg_active_fraction();
        assert!((f - 0.75).abs() < 1e-9, "fraction {f}");
        assert!((c.avg_size_bytes() - 3072.0).abs() < 1e-6);
    }

    #[test]
    fn resize_events_record_direction() {
        let mut c = DriICache::new(small_cfg());
        let mut cycle = 0;
        idle_interval(&mut c, &mut cycle, 1000);
        for i in 0..20u64 {
            let _ = c.access(i * 32 * 1024, cycle);
        }
        idle_interval(&mut c, &mut cycle, 1000);
        let events = c.resize_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].direction(), ResizeDirection::Downsize);
        assert_eq!(events[1].direction(), ResizeDirection::Upsize);
        assert_eq!(events[0].from_sets, 128);
        assert_eq!(events[0].to_sets, 64);
    }

    #[test]
    fn divisibility_four_takes_bigger_steps() {
        let mut cfg = small_cfg();
        cfg.divisibility = 4;
        let mut c = DriICache::new(cfg);
        let mut cycle = 0;
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 32, "128/4");
        idle_interval(&mut c, &mut cycle, 1000);
        assert_eq!(c.active_sets(), 16, "clamped at the bound");
    }

    #[test]
    fn set_associative_dri_uses_lru_within_sets() {
        let mut cfg = small_cfg();
        cfg.associativity = 2; // 64 sets max
        cfg.size_bound_bytes = 1024;
        let mut c = DriICache::new(cfg);
        let s = 64 * 32; // stride that keeps the same set index
        let _ = c.access(0, 0);
        let _ = c.access(s, 0);
        assert!(c.probe(0) && c.probe(s));
        let _ = c.access(2 * s, 0); // evicts LRU (block 0)
        assert!(!c.probe(0));
        assert!(c.probe(s) && c.probe(2 * s));
    }

    #[test]
    fn fpppp_style_full_size_bound_never_resizes() {
        let mut cfg = small_cfg();
        cfg.size_bound_bytes = cfg.max_size_bytes;
        let mut c = DriICache::new(cfg);
        assert_eq!(c.config().resizing_tag_bits(), 0);
        let mut cycle = 0;
        for _ in 0..5 {
            idle_interval(&mut c, &mut cycle, 1000);
        }
        assert_eq!(c.active_sets(), 128);
        assert!(c.resize_events().is_empty());
    }

    #[test]
    fn instruction_counts_accumulate_across_calls() {
        let mut c = DriICache::new(small_cfg());
        // 4 calls of 250 instructions cross one 1000-inst interval.
        for i in 1..=4u64 {
            c.retire_instructions(250, i * 250);
        }
        assert_eq!(c.intervals_elapsed(), 1);
        assert_eq!(c.active_sets(), 64);
    }
}
