//! # dri-core — the Dynamically ResIzable instruction cache
//!
//! The primary contribution of *"An Integrated Circuit/Architecture Approach
//! to Reducing Leakage in Deep-Submicron High-Performance I-Caches"*
//! (HPCA 2001): an L1 i-cache that monitors its own miss count over *sense
//! intervals* and resizes itself between a *size-bound* and its full size,
//! gating the supply voltage of the disabled sets so their leakage
//! collapses (see the `sram-circuit` crate for the gated-Vdd circuit side).
//!
//! * [`config::DriConfig`] — the resizing parameters (miss-bound,
//!   size-bound, sense interval, divisibility, throttle) with the paper's
//!   presets;
//! * [`cache::DriICache`] — the cache itself, implementing
//!   [`cache_sim::icache::InstCache`] so it can drop into the `ooo-cpu`
//!   fetch path wherever a conventional i-cache fits.
//!
//! Four extensions let the repository *measure* design arguments the
//! paper makes in prose:
//!
//! * [`way_resize::WayResizableICache`] — the Albonesi-style selective-ways
//!   alternative §2 argues against (coarse granularity, DM-incompatible);
//! * [`decay::DecayICache`] — per-line cache decay, the successor policy
//!   this line of work led to, for head-to-head comparison;
//! * [`way_memo::WayMemoICache`] — way-memoization (Ishihara & Fallah)
//!   adapted into a leakage policy: memo links steer single-way probes
//!   *and* defer gating of lines predicted to be fetched next;
//! * [`dcache::ResizableDCache`] — the write-back d-cache variant the
//!   paper scoped out, with dirty-line writeback on downsizing and strict
//!   alias scrubbing on refill.
//!
//! All of them (and the conventional baseline) implement the
//! [`cache_sim::policy::LeakagePolicy`] accounting/identity trait;
//! [`policy::PolicyConfig`] selects one per run and derives comparable
//! parameters from a shared [`config::DriConfig`].
//!
//! ## Example
//!
//! ```
//! use cache_sim::icache::InstCache;
//! use dri_core::{DriConfig, DriICache};
//!
//! let mut cache = DriICache::new(DriConfig::hpca01_64k_dm());
//! assert_eq!(cache.active_size_bytes(), 64 * 1024);
//!
//! // A tight loop touching almost nothing...
//! for pc in (0..4096u64).step_by(4).cycle().take(200_000) {
//!     let cycle = pc; // one access per cycle is fine for the example
//!     let _hit = cache.access(pc, cycle);
//! }
//! // ...lets the cache downsize at each sense-interval boundary.
//! cache.retire_instructions(200_000, 200_000);
//! cache.finish(200_000);
//! assert!(cache.active_size_bytes() < 64 * 1024);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dcache;
pub mod decay;
pub mod policy;
pub mod way_memo;
pub mod way_resize;

pub use cache::{DriICache, ResizeDirection, ResizeEvent};
pub use config::{DriConfig, ThrottleConfig};
pub use dcache::{DAccess, ResizableDCache};
pub use decay::{DecayConfig, DecayICache, DecayStats};
pub use policy::PolicyConfig;
pub use way_memo::{WayMemoConfig, WayMemoICache, WayMemoStats};
pub use way_resize::{WayConfig, WayResizableICache};
