//! A way-resizing i-cache: the design alternative the paper argues against.
//!
//! Paper §2: "Alternatively, we could increase/decrease associativity, as
//! is proposed for reducing dynamic energy in [Albonesi's selective cache
//! ways]. This alternative, however, has several key shortcomings. First,
//! it … is not applicable to direct-mapped caches … Second, reducing
//! associativity may increase both capacity and conflict miss rates."
//!
//! To let the repository *measure* that argument rather than assert it,
//! this module implements an adaptive way-resizing cache driven by the same
//! miss-bound feedback loop as the DRI i-cache, so the two differ only in
//! the resizing dimension:
//!
//! * capacity moves in coarse steps of `size/associativity` (a 64K 4-way
//!   cache can only offer 64/48/32/16K — never the 2K a class-1 benchmark
//!   wants);
//! * the set-index function never changes, so no resizing tag bits are
//!   needed (its one advantage);
//! * disabling ways increases conflict pressure in every set.

use crate::config::ThrottleConfig;
use cache_sim::icache::InstCache;
use cache_sim::policy::LeakagePolicy;
use cache_sim::replacement::ReplacementPolicy;
use cache_sim::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for [`WayResizableICache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayConfig {
    /// Total capacity in bytes at full associativity.
    pub size_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Maximum (and physical) associativity.
    pub associativity: u32,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Minimum number of ways that stay powered.
    pub min_ways: u32,
    /// Miss count per sense interval steered toward.
    pub miss_bound: u64,
    /// Sense-interval length in committed instructions.
    pub sense_interval: u64,
    /// Throttle parameters (shared shape with the DRI cache).
    pub throttle: ThrottleConfig,
    /// Replacement policy among the *active* ways.
    pub replacement: ReplacementPolicy,
}

impl WayConfig {
    /// A 64K four-way way-resizable cache matching the Figure 6 "A"
    /// geometry, with the same default feedback parameters as
    /// [`crate::DriConfig::hpca01_64k_dm`].
    pub fn hpca01_64k_4way() -> Self {
        WayConfig {
            size_bytes: 64 * 1024,
            block_bytes: 32,
            associativity: 4,
            latency: 1,
            min_ways: 1,
            miss_bound: 100,
            sense_interval: 100_000,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Checks the invariants.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry or `min_ways` out of range.
    pub fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "size must be 2^n");
        assert!(self.block_bytes.is_power_of_two(), "block must be 2^n");
        assert!(
            self.associativity >= 1,
            "way resizing needs at least one way"
        );
        assert!(
            self.min_ways >= 1 && self.min_ways <= self.associativity,
            "min_ways {} out of range 1..={}",
            self.min_ways,
            self.associativity
        );
        let blocks = self.size_bytes / self.block_bytes;
        assert!(
            blocks.is_multiple_of(u64::from(self.associativity))
                && (blocks / u64::from(self.associativity)).is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(self.sense_interval > 0, "sense interval must be positive");
    }

    /// Number of sets (fixed — this design never changes the index).
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / u64::from(self.associativity)
    }

    fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    block_addr: u64,
    last_used: u64,
    filled_at: u64,
}

/// The adaptive way-resizing i-cache.
#[derive(Debug, Clone)]
pub struct WayResizableICache {
    cfg: WayConfig,
    lines: Vec<Line>,
    active_ways: u32,
    stats: CacheStats,
    clock: u64,
    rng: SmallRng,
    // Precomputed geometry: the index function never changes in this
    // design, so shift and mask are fixed for the cache's lifetime.
    offset_bits: u32,
    index_mask: u64,
    ways: usize,
    interval_misses: u64,
    insts_into_interval: u64,
    intervals_elapsed: u64,
    resizes: u64,
    lockout_remaining: u32,
    throttle_counter: u32,
    last_resize_grew: Option<bool>,
    last_mark_cycle: u64,
    weighted_way_cycles: f64,
    finished_at: Option<u64>,
}

impl WayResizableICache {
    /// Builds the cache at full associativity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: WayConfig) -> Self {
        cfg.validate();
        let total = (cfg.num_sets() * u64::from(cfg.associativity)) as usize;
        WayResizableICache {
            lines: vec![Line::default(); total],
            active_ways: cfg.associativity,
            stats: CacheStats::default(),
            clock: 0,
            rng: SmallRng::seed_from_u64(0x3A93_517E),
            offset_bits: cfg.offset_bits(),
            index_mask: cfg.num_sets() - 1,
            ways: cfg.associativity as usize,
            cfg,
            interval_misses: 0,
            insts_into_interval: 0,
            intervals_elapsed: 0,
            resizes: 0,
            lockout_remaining: 0,
            throttle_counter: 0,
            last_resize_grew: None,
            last_mark_cycle: 0,
            weighted_way_cycles: 0.0,
            finished_at: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WayConfig {
        &self.cfg
    }

    /// Currently powered ways.
    pub fn active_ways(&self) -> u32 {
        self.active_ways
    }

    /// Currently powered capacity in bytes.
    pub fn active_size_bytes(&self) -> u64 {
        self.cfg.size_bytes * u64::from(self.active_ways) / u64::from(self.cfg.associativity)
    }

    /// Resizes performed.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Completed sense intervals.
    pub fn intervals_elapsed(&self) -> u64 {
        self.intervals_elapsed
    }

    /// Average active fraction (powered ways over physical ways),
    /// integrated over cycles.
    pub fn avg_active_fraction(&self) -> f64 {
        let end = self.finished_at.unwrap_or(self.last_mark_cycle);
        if end == 0 {
            return 1.0;
        }
        (self.weighted_way_cycles / end as f64) / f64::from(self.cfg.associativity)
    }

    fn advance_integration(&mut self, cycle: u64) {
        let cycle = cycle.max(self.last_mark_cycle);
        let span = (cycle - self.last_mark_cycle) as f64;
        self.weighted_way_cycles += span * f64::from(self.active_ways);
        self.last_mark_cycle = cycle;
    }

    #[inline]
    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }

    fn apply_ways(&mut self, new_ways: u32, cycle: u64) {
        if new_ways == self.active_ways {
            return;
        }
        self.advance_integration(cycle);
        if new_ways < self.active_ways {
            // Gate off the highest ways in every set.
            let sets = self.cfg.num_sets();
            for set in 0..sets {
                let range = self.set_range(set);
                for way in new_ways as usize..self.active_ways as usize {
                    let line = &mut self.lines[range.start + way];
                    if line.valid {
                        line.valid = false;
                        self.stats.invalidations += 1;
                    }
                }
            }
        }
        self.active_ways = new_ways;
        self.resizes += 1;
    }

    fn end_interval(&mut self, cycle: u64) {
        self.intervals_elapsed += 1;
        if self.lockout_remaining > 0 {
            self.lockout_remaining -= 1;
        }
        let misses = self.interval_misses;
        self.interval_misses = 0;
        let grew = if misses > self.cfg.miss_bound && self.active_ways < self.cfg.associativity {
            self.apply_ways(self.active_ways + 1, cycle);
            Some(true)
        } else if misses < self.cfg.miss_bound
            && self.active_ways > self.cfg.min_ways
            && self.lockout_remaining == 0
        {
            self.apply_ways(self.active_ways - 1, cycle);
            Some(false)
        } else {
            None
        };
        if let Some(grew) = grew {
            if self.cfg.throttle.enabled {
                if self.last_resize_grew == Some(!grew) {
                    self.throttle_counter =
                        (self.throttle_counter + 1).min(self.cfg.throttle.saturation());
                    if self.throttle_counter == self.cfg.throttle.saturation() {
                        self.lockout_remaining = self.cfg.throttle.lockout_intervals;
                        self.throttle_counter = 0;
                    }
                } else {
                    self.throttle_counter = 0;
                }
            }
            self.last_resize_grew = Some(grew);
        }
    }
}

impl InstCache for WayResizableICache {
    #[inline]
    fn access(&mut self, addr: u64, _cycle: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.reads += 1;
        let block = addr >> self.offset_bits;
        let set = block & self.index_mask;
        let range = self.set_range(set);
        let active = self.active_ways as usize;
        let lines = &mut self.lines[range.start..range.start + active];

        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.block_addr == block) {
            line.last_used = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        self.interval_misses += 1;
        if let Some(line) = lines.iter_mut().find(|l| !l.valid) {
            *line = Line {
                valid: true,
                block_addr: block,
                last_used: self.clock,
                filled_at: self.clock,
            };
            return false;
        }
        let victim = self.cfg.replacement.pick_victim_with(
            lines.len(),
            |i| lines[i].last_used,
            |i| lines[i].filled_at,
            &mut self.rng,
        );
        self.stats.evictions += 1;
        lines[victim] = Line {
            valid: true,
            block_addr: block,
            last_used: self.clock,
            filled_at: self.clock,
        };
        false
    }

    fn hit_latency(&self) -> u64 {
        self.cfg.latency
    }

    fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    fn retire_instructions(&mut self, n: u64, cycle: u64) {
        self.insts_into_interval += n;
        while self.insts_into_interval >= self.cfg.sense_interval {
            self.insts_into_interval -= self.cfg.sense_interval;
            self.end_interval(cycle);
        }
    }

    fn finish(&mut self, cycle: u64) {
        self.advance_integration(cycle);
        self.finished_at = Some(cycle.max(1));
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl LeakagePolicy for WayResizableICache {
    fn policy_id(&self) -> &'static str {
        "way_resize"
    }

    fn active_size_bytes(&self) -> u64 {
        WayResizableICache::active_size_bytes(self)
    }

    fn avg_active_fraction(&self) -> f64 {
        WayResizableICache::avg_active_fraction(self)
    }

    fn avg_size_bytes(&self) -> f64 {
        WayResizableICache::avg_active_fraction(self) * self.cfg.size_bytes as f64
    }

    fn resizes(&self) -> u64 {
        WayResizableICache::resizes(self)
    }

    fn intervals(&self) -> u64 {
        self.intervals_elapsed
    }
    // No resizing tag bits: the index function never changes (the one
    // advantage of this design, module docs).
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WayConfig {
        WayConfig {
            size_bytes: 4096,
            block_bytes: 32,
            associativity: 4,
            latency: 1,
            min_ways: 1,
            miss_bound: 10,
            sense_interval: 1000,
            throttle: ThrottleConfig::default(),
            replacement: ReplacementPolicy::Lru,
        }
    }

    #[test]
    fn starts_fully_associative() {
        let c = WayResizableICache::new(small());
        assert_eq!(c.active_ways(), 4);
        assert_eq!(c.active_size_bytes(), 4096);
    }

    #[test]
    fn quiet_intervals_shed_ways_down_to_min() {
        let mut c = WayResizableICache::new(small());
        let mut cycle = 0;
        for expected in [3, 2, 1, 1] {
            cycle += 1000;
            c.retire_instructions(1000, cycle);
            assert_eq!(c.active_ways(), expected);
        }
        assert_eq!(c.active_size_bytes(), 1024);
    }

    #[test]
    fn misses_grow_ways_back() {
        let mut c = WayResizableICache::new(small());
        let mut cycle = 1000;
        c.retire_instructions(1000, cycle);
        assert_eq!(c.active_ways(), 3);
        for i in 0..20u64 {
            let _ = c.access(i * 4096, cycle);
        }
        cycle += 1000;
        c.retire_instructions(1000, cycle);
        assert_eq!(c.active_ways(), 4);
    }

    #[test]
    fn capacity_granularity_is_coarse() {
        // The key §2 argument: the smallest reachable size is
        // size/associativity, far above a small working set.
        let c = WayResizableICache::new(WayConfig::hpca01_64k_4way());
        let min = c.config().size_bytes / u64::from(c.config().associativity);
        assert_eq!(min, 16 * 1024, "cannot go below 16K of a 64K 4-way");
    }

    #[test]
    fn index_function_never_changes() {
        // Blocks keep hitting across resizes if they sit in a surviving way.
        let mut c = WayResizableICache::new(small());
        let _ = c.access(0x40, 0); // fills way 0
        let mut cycle = 1000;
        c.retire_instructions(1000, cycle); // 3 ways
        cycle += 1000;
        c.retire_instructions(1000, cycle); // 2 ways
        assert!(c.access(0x40, cycle), "way-0 resident block still hits");
    }

    #[test]
    fn dropping_ways_invalidates_their_contents() {
        let mut c = WayResizableICache::new(small());
        // Fill all four ways of set 2.
        for w in 0..4u64 {
            let _ = c.access(2 * 32 + w * 4096, 0);
        }
        let before = c.stats().invalidations;
        c.retire_instructions(1000, 1000); // shed one way
        assert_eq!(c.active_ways(), 3);
        assert!(c.stats().invalidations > before);
    }

    #[test]
    fn active_fraction_integrates() {
        let mut c = WayResizableICache::new(small());
        c.retire_instructions(1000, 1000); // 4 ways for 1000 cycles -> 3
        c.finish(2000); // 3 ways for another 1000
        let f = c.avg_active_fraction();
        assert!((f - (4.0 + 3.0) / 2.0 / 4.0).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    #[should_panic(expected = "min_ways")]
    fn rejects_zero_min_ways() {
        let cfg = WayConfig {
            min_ways: 0,
            ..small()
        };
        cfg.validate();
    }
}
