//! Criterion bench for the Figure 4 pipeline: the miss-bound sweep
//! (0.5x / 1x / 2x) around a fixed operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use dri_experiments::sweeps::miss_bound_sweep;
use dri_experiments::RunConfig;
use std::hint::black_box;
use synth_workload::suite::Benchmark;

fn bench_figure4(c: &mut Criterion) {
    let mut cfg = RunConfig::quick(Benchmark::Compress);
    cfg.instruction_budget = Some(250_000);
    cfg.dri.size_bound_bytes = 4 * 1024;
    cfg.dri.miss_bound = 100;

    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);
    group.bench_function("miss_bound_sweep/compress", |b| {
        b.iter(|| {
            let s = miss_bound_sweep(black_box(&cfg));
            assert!(s.base.relative_energy_delay.is_finite());
            s.base.relative_energy_delay
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
