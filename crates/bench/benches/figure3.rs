//! Criterion bench for the Figure 3 pipeline: a reduced-budget parameter
//! search (DRI vs conventional pairs) on one benchmark per class.

use criterion::{criterion_group, criterion_main, Criterion};
use dri_experiments::search::{search_benchmark, SearchSpace};
use dri_experiments::RunConfig;
use std::hint::black_box;
use synth_workload::suite::Benchmark;

fn quick_cfg(b: Benchmark) -> RunConfig {
    let mut cfg = RunConfig::quick(b);
    cfg.instruction_budget = Some(250_000);
    cfg
}

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);
    for bench in [Benchmark::Compress, Benchmark::Perl, Benchmark::Ijpeg] {
        group.bench_function(format!("search/{}", bench.name()), |b| {
            b.iter(|| {
                let r = search_benchmark(black_box(&quick_cfg(bench)), &SearchSpace::quick());
                assert!(r.constrained.relative_energy_delay.is_finite());
                r.constrained.relative_energy_delay
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
