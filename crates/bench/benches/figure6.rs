//! Criterion bench for the Figure 6 pipeline: the geometry sweep (64K
//! 4-way, 64K DM, 128K DM), each with its own conventional baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use dri_experiments::sweeps::geometry_sweep;
use dri_experiments::RunConfig;
use std::hint::black_box;
use synth_workload::suite::Benchmark;

fn bench_figure6(c: &mut Criterion) {
    let mut cfg = RunConfig::quick(Benchmark::Mgrid);
    cfg.instruction_budget = Some(200_000);
    cfg.dri.size_bound_bytes = 2 * 1024;
    cfg.dri.miss_bound = 100;

    let mut group = c.benchmark_group("figure6");
    group.sample_size(10);
    group.bench_function("geometry_sweep/mgrid", |b| {
        b.iter(|| {
            let s = geometry_sweep(black_box(&cfg));
            assert!(s.dm_64k.relative_energy_delay.is_finite());
            assert!(s.assoc_4way.relative_energy_delay.is_finite());
            s.dm_128k.relative_energy_delay
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure6);
criterion_main!(benches);
