//! Criterion bench for the §5.6 pipeline: sense-interval and divisibility
//! sweeps around a fixed operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use dri_experiments::sweeps::{divisibility_sweep, interval_sweep};
use dri_experiments::RunConfig;
use std::hint::black_box;
use synth_workload::suite::Benchmark;

fn bench_section5_6(c: &mut Criterion) {
    let mut cfg = RunConfig::quick(Benchmark::Applu);
    cfg.instruction_budget = Some(200_000);
    cfg.dri.size_bound_bytes = 4 * 1024;
    cfg.dri.miss_bound = 100;

    let mut group = c.benchmark_group("section5_6");
    group.sample_size(10);
    group.bench_function("interval_sweep/applu", |b| {
        b.iter(|| interval_sweep(black_box(&cfg), &[10_000, 20_000, 40_000]))
    });
    group.bench_function("divisibility_sweep/applu", |b| {
        b.iter(|| divisibility_sweep(black_box(&cfg), &[2, 4, 8]))
    });
    group.finish();
}

criterion_group!(benches, bench_section5_6);
criterion_main!(benches);
