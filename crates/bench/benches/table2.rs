//! Criterion bench for the Table 2 pipeline: regenerates the circuit-level
//! trade-off table (device models + stacking-effect equilibria) and checks
//! the headline values, benchmarking the full computation.

use criterion::{criterion_group, criterion_main, Criterion};
use sram_circuit::process::Process;
use sram_circuit::table2::{generate, generate_extended, OperatingPoint};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let process = Process::tsmc180();
    let op = OperatingPoint::default();

    c.bench_function("table2/generate", |b| {
        b.iter(|| {
            let rows = generate(black_box(&process), black_box(op));
            assert_eq!(rows.len(), 3);
            // Headline sanity: ~97% savings on the gated column.
            let savings = rows[2].energy_savings_pct.expect("gated row");
            assert!((savings - 97.0).abs() < 2.0);
            rows
        })
    });

    c.bench_function("table2/generate_extended", |b| {
        b.iter(|| generate_extended(black_box(&process), black_box(op)))
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
