//! End-to-end engine throughput: simulated (committed) instructions per
//! second for a full `RunConfig::quick` pair, the trajectory baseline for
//! future perf PRs.
//!
//! Three flavours per benchmark:
//!
//! * `cold/*` — `run_*_uncached`: regenerates the workload and always
//!   simulates. This is the honest simulator-throughput number.
//! * `warm/*` — the session-memoized default path after a first run: a
//!   key build plus a hash lookup, showing what repeated sweep points
//!   cost once the `SimSession` layer absorbs them.
//! * `telemetry/*` — the same warm hit on a timed session
//!   (`SimSession::builder().timed(true).build()`): the span + per-tier histogram
//!   overhead a `DRI_TIMING`/`DRI_TRACE` run adds to the hot path.
//! * `store/*` — the disk tier: a fresh session per iteration (a cold
//!   memory cache, as in a new process) loading the point from a warmed
//!   `ResultStore` — key hash + file read + checksum + decode, the cost
//!   every figure binary pays per point after another process ran first.
//! * `remote/*` — the service tier: the same cold-memory session fetching
//!   the point from a loopback `dri-serve` instance — key hash + HTTP
//!   round-trip + end-to-end record validation + decode, the cost a
//!   disk-less worker pays per point when a central store is warm.
//! * `remote/grid_*` — a whole sweep grid (6 quick-space points + the
//!   shared baseline) resolved by a cold session: one HTTP round-trip
//!   **per record** versus one chunked `POST /batch` for the entire
//!   plan (`SimSession::prefetch`) — the amortization the suite's
//!   `--prefetch` default buys every campaign replay.
//! * `push/*` — the authenticated write path: one signed `PUT` per
//!   record versus one chunked `POST /batch-put` for a whole grid's
//!   worth — what a `DRI_PUSH=1` worker pays to heal its simulations
//!   into the central store after a sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dri_experiments::runner::{run_conventional_uncached, run_dri_uncached};
use dri_experiments::{
    compare, run_conventional, run_dri, RemoteStore, ResultStore, RunConfig, SimSession,
};
use std::hint::black_box;
use std::sync::Arc;
use synth_workload::suite::Benchmark;

fn bench_engine(c: &mut Criterion) {
    let cfg = RunConfig::quick(Benchmark::Compress);
    let budget = cfg.instruction_budget.expect("quick sets a budget");

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(budget));
    group.bench_function("cold/run_conventional/compress_quick", |b| {
        b.iter(|| black_box(run_conventional_uncached(black_box(&cfg))))
    });
    group.bench_function("cold/run_dri/compress_quick", |b| {
        b.iter(|| black_box(run_dri_uncached(black_box(&cfg))))
    });
    group.bench_function("warm/run_conventional/compress_quick", |b| {
        b.iter(|| black_box(run_conventional(black_box(&cfg))))
    });
    group.bench_function("warm/run_dri/compress_quick", |b| {
        b.iter(|| black_box(run_dri(black_box(&cfg))))
    });
    // The same warm hit on a *timed* session (what `suite` and any
    // DRI_TRACE/DRI_TIMING run pay): two clock reads + a histogram
    // record per lookup, the whole telemetry overhead on the hot path.
    let timed = SimSession::builder().timed(true).build();
    timed.policy_run(&cfg);
    group.bench_function("telemetry/run_dri_warm_timed/compress_quick", |b| {
        b.iter(|| black_box(timed.policy_run(black_box(&cfg))))
    });
    // Both sides plus the §5.2 energy comparison — the unit of work every
    // figure is assembled from (warm: both runs come from the session).
    group.throughput(Throughput::Elements(2 * budget));
    group.bench_function("warm/compare/compress_quick", |b| {
        b.iter(|| black_box(compare(black_box(&cfg))))
    });

    // Disk tier: warm the store once, then measure a cold-memory session
    // loading the DRI point from disk each iteration.
    let root = std::env::temp_dir().join(format!("dri-engine-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    SimSession::builder()
        .store(ResultStore::open(&root).expect("bench store"))
        .build()
        .policy_run(&cfg);
    group.throughput(Throughput::Elements(budget));
    group.bench_function("store/run_dri_disk_hit/compress_quick", |b| {
        b.iter(|| {
            let session = SimSession::builder()
                .store(ResultStore::open(&root).expect("bench store"))
                .build();
            black_box(session.policy_run(black_box(&cfg)))
        })
    });

    // Remote tier: serve the same warmed store over loopback HTTP and
    // measure a cold-memory, disk-less worker fetching the point over
    // the wire each iteration.
    let server = dri_serve::Server::bind(
        Arc::new(ResultStore::open(&root).expect("bench store")),
        "127.0.0.1:0",
        2,
    )
    .expect("bench server");
    let addr = server.addr().to_string();
    group.bench_function("remote/run_dri_remote_hit/compress_quick", |b| {
        b.iter(|| {
            let session = SimSession::builder()
                .remote(RemoteStore::new(addr.clone()))
                .build();
            black_box(session.policy_run(black_box(&cfg)))
        })
    });

    // Grid resolution: warm the full quick-space sweep grid into the
    // same served store, then compare a cold worker replaying it with
    // per-record round-trips vs one batch-prefetch round-trip.
    let grid = dri_experiments::grid_configs(&cfg, &dri_experiments::SearchSpace::quick());
    {
        let warmer = SimSession::builder()
            .store(ResultStore::open(&root).expect("bench store"))
            .build();
        for point in &grid {
            warmer.conventional(point);
            warmer.policy_run(point);
        }
    }
    // 7 unique records per replay: 6 DRI points + the shared baseline.
    group.throughput(Throughput::Elements(grid.len() as u64 + 1));
    group.bench_function("remote/grid_per_record_hits/compress_quick", |b| {
        b.iter(|| {
            let session = SimSession::builder()
                .remote(RemoteStore::new(addr.clone()))
                .build();
            for point in &grid {
                black_box(session.conventional(black_box(point)));
                black_box(session.policy_run(black_box(point)));
            }
        })
    });
    group.bench_function("remote/grid_prefetch_batch/compress_quick", |b| {
        b.iter(|| {
            let session = SimSession::builder()
                .remote(RemoteStore::new(addr.clone()))
                .build();
            black_box(session.prefetch(&grid));
            for point in &grid {
                black_box(session.conventional(black_box(point)));
                black_box(session.policy_run(black_box(point)));
            }
        })
    });
    server.shutdown();

    // Write path: a token-authenticated server over a scratch root, fed
    // by a client holding the matching secret. Per-record signed PUTs
    // versus one chunked batch-put of a grid's worth of records.
    let push_root =
        std::env::temp_dir().join(format!("dri-engine-bench-push-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&push_root);
    let token = "engine-bench-token";
    let push_server = dri_serve::Server::bind_with_token(
        Arc::new(ResultStore::open(&push_root).expect("push store")),
        "127.0.0.1:0",
        2,
        Some(token.to_owned()),
    )
    .expect("push server");
    let pusher =
        dri_serve::RemoteStore::with_token(push_server.addr().to_string(), Some(token.to_owned()));
    let payload = dri_experiments::persist::encode_dri(&run_dri(&cfg));
    let record = dri_store::frame_record(1, 0xb1e5, &payload);
    group.throughput(Throughput::Elements(1));
    group.bench_function("push/put_record/compress_quick", |b| {
        b.iter(|| black_box(pusher.push("dri", 1, 0xb1e5, black_box(&record))))
    });
    let grid_records: Vec<(u128, Vec<u8>)> = (0..7u128)
        .map(|k| (k, dri_store::frame_record(1, k, &payload)))
        .collect();
    let entries: Vec<(&str, u32, u128, &[u8])> = grid_records
        .iter()
        .map(|(k, r)| ("dri", 1u32, *k, r.as_slice()))
        .collect();
    group.throughput(Throughput::Elements(entries.len() as u64));
    group.bench_function("push/batch_put_grid/compress_quick", |b| {
        b.iter(|| black_box(pusher.push_batch(black_box(&entries))))
    });
    push_server.shutdown();
    let _ = std::fs::remove_dir_all(&push_root);

    // The same grid push against a journaled server: the whole batch
    // lands as one checksummed segment append with **one fsync**, versus
    // one atomic record write (and its per-file fsync) per entry above.
    let journal_root =
        std::env::temp_dir().join(format!("dri-engine-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_root);
    let journal_server = dri_serve::Server::bind_with_journal(
        Arc::new(ResultStore::open(&journal_root).expect("journal store")),
        "127.0.0.1:0",
        2,
        Some(token.to_owned()),
        dri_serve::DEFAULT_LEASE_TTL_MS,
        None,
        Some(dri_serve::JournalConfig::default()),
    )
    .expect("journal server");
    let journal_pusher = dri_serve::RemoteStore::with_token(
        journal_server.addr().to_string(),
        Some(token.to_owned()),
    );
    group.bench_function("push/batch_put_grid_journaled/compress_quick", |b| {
        b.iter(|| black_box(journal_pusher.push_batch(black_box(&entries))))
    });
    journal_server.shutdown();
    let _ = std::fs::remove_dir_all(&journal_root);

    // The wire/at-rest codec alone, over a real encoded DRI record:
    // what each push body / journal frame / stored record pays.
    group.throughput(Throughput::Bytes(record.len() as u64));
    group.bench_function("codec/compress/dri_record", |b| {
        b.iter(|| black_box(dri_store::compress::compress(black_box(&record))))
    });
    let packed = dri_store::compress::compress(&record);
    group.bench_function("codec/decompress/dri_record", |b| {
        b.iter(|| {
            black_box(dri_store::compress::decompress(
                black_box(&packed),
                record.len(),
            ))
        })
    });

    let _ = std::fs::remove_dir_all(&root);
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
