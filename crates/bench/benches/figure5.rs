//! Criterion bench for the Figure 5 pipeline: the size-bound sweep
//! (2x / 1x / 0.5x) around a fixed operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use dri_experiments::sweeps::size_bound_sweep;
use dri_experiments::RunConfig;
use std::hint::black_box;
use synth_workload::suite::Benchmark;

fn bench_figure5(c: &mut Criterion) {
    let mut cfg = RunConfig::quick(Benchmark::Li);
    cfg.instruction_budget = Some(250_000);
    cfg.dri.size_bound_bytes = 8 * 1024;
    cfg.dri.miss_bound = 100;

    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    group.bench_function("size_bound_sweep/li", |b| {
        b.iter(|| {
            let s = size_bound_sweep(black_box(&cfg));
            assert!(s.base.relative_energy_delay.is_finite());
            s.base.relative_energy_delay
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
