//! Microbenchmarks of the simulation substrates themselves: cache access
//! throughput, DRI access + resizing, interpreter speed, branch predictor
//! throughput, full-core simulation rate, and the stacking-effect solver.

use cache_sim::cache::{AccessKind, Cache};
use cache_sim::config::CacheConfig;
use cache_sim::icache::{ConventionalICache, InstCache};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dri_core::{DriConfig, DriICache};
use ooo_cpu::bpred::{HybridPredictor, PredictorConfig};
use ooo_cpu::config::CpuConfig;
use ooo_cpu::core::Core;
use sram_circuit::cell::SramCell;
use sram_circuit::gating::GatedVddConfig;
use sram_circuit::process::Process;
use sram_circuit::units::{Celsius, Volts};
use std::hint::black_box;
use synth_workload::machine::Machine;
use synth_workload::suite::Benchmark;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1i_access_streaming", |b| {
        let mut cache = Cache::new(CacheConfig::hpca01_l1i());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                addr = addr.wrapping_add(32) & 0xF_FFFF;
                black_box(cache.access(addr, AccessKind::Read));
            }
        })
    });
    group.bench_function("dri_access_streaming", |b| {
        let mut cache = DriICache::new(DriConfig::hpca01_64k_dm());
        let mut addr = 0u64;
        let mut cycle = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                addr = addr.wrapping_add(32) & 0xF_FFFF;
                cycle += 1;
                black_box(cache.access(addr, cycle));
            }
        })
    });
    group.finish();
}

fn bench_machine_and_core(c: &mut Criterion) {
    let generated = Benchmark::Compress.build();
    let mut group = c.benchmark_group("substrates/sim");
    group.throughput(Throughput::Elements(100_000));
    group.sample_size(20);
    group.bench_function("interpreter_100k_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(&generated.program);
            black_box(m.run(100_000))
        })
    });
    group.bench_function("core_100k_insts", |b| {
        b.iter(|| {
            let mut core = Core::new(
                &generated.program,
                CpuConfig::hpca01(),
                ConventionalICache::hpca01(),
            );
            black_box(core.run(100_000))
        })
    });
    group.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/bpred");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("hybrid_conditional", |b| {
        let mut bp = HybridPredictor::new(PredictorConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                i = i.wrapping_add(1);
                let pc = 0x1000 + (i % 64) * 4;
                black_box(bp.conditional(pc, !i.is_multiple_of(3), pc + 64));
            }
        })
    });
    group.finish();
}

fn bench_circuit(c: &mut Criterion) {
    let process = Process::tsmc180();
    let cell = SramCell::standard(&process, Volts::new(0.2));
    let gated = GatedVddConfig::hpca01(&process);
    c.bench_function("substrates/stack_equilibrium", |b| {
        b.iter(|| {
            black_box(gated.standby_equilibrium(
                black_box(&cell),
                black_box(&process),
                Celsius::new(110.0),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_machine_and_core,
    bench_bpred,
    bench_circuit
);
criterion_main!(benches);
