//! # bench — criterion benchmarks for the DRI i-cache reproduction
//!
//! This crate is a harness shell: it exports nothing and exists only to
//! host the benchmark targets under `benches/` (run them with
//! `cargo bench -p bench`, or `cargo bench -p bench --bench engine` for
//! one suite). The benchmarks are the repository's performance ledger —
//! README §Performance quotes them — and fall into three groups:
//!
//! * `substrates` — microbenchmarks of the hot building blocks: cache
//!   accesses, interpreter and OoO-core instruction throughput, the
//!   circuit model.
//! * `engine` — end-to-end cost of one simulated point through every
//!   cache tier: `cold/*` (always simulate), `warm/*` (session memory
//!   hit), `store/*` (disk-tier load), `remote/*` (HTTP fetch +
//!   end-to-end validation), and `remote/grid_*` (a whole sweep grid:
//!   per-record round-trips vs one batch-prefetch `POST /batch`).
//! * per-figure pipelines (`figure3`–`figure6`, `section5_6`, `table2`)
//!   — wall-clock for the paper's artifacts in quick mode.
//!
//! The `criterion` crate here is the offline vendored subset (see
//! `vendor/README.md`): median/min over a fixed sample count, no plots.

#![warn(missing_docs)]
