//! Span-based structured tracing, gated by `DRI_TRACE=<path.jsonl>`.
//!
//! When [`TRACE_ENV`] names a file, every interesting edge in the
//! process appends one JSON object per line — monotonic-clocked,
//! causally ordered within the process, and cheap enough to leave
//! instrumented everywhere (disabled, an emit site is one atomic load).
//!
//! ## Event schema
//!
//! ```json
//! {"ts_us":1234,"kind":"tier","name":"dri","dur_us":57,"outcome":"remote",
//!  "labels":{"benchmark":"compress","worker":"w1","unit":"3"}}
//! ```
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `ts_us` | u64, required | microseconds since process start (monotonic clock) |
//! | `kind` | string, required | event family: `tier`, `prefetch`, `job`, `unit`, `lease`, `retry`, `breaker`, `serve`, `fault`, `gc`, … |
//! | `name` | string, required | what within the family (a tier name, an endpoint, a unit id) |
//! | `dur_us` | u64, optional | span duration in microseconds (absent on point events) |
//! | `outcome` | string, optional | how it ended (`memory`, `granted`, `reclaimed`, `503`, …) |
//! | `labels` | object of strings, optional | dimensions: `worker`, `campaign`, `unit`, `benchmark`, … |
//!
//! Writes are single `write(2)` calls on an `O_APPEND` handle, so lines
//! from concurrent threads (or even co-tracing processes sharing one
//! path) never interleave mid-line. [`TraceEvent::parse`] is the strict
//! inverse of the emitter — CI's `trace-check` binary and the round-trip
//! tests hold every emitted line to this schema.
//!
//! Ambient **context labels** ([`set_context`]/[`clear_context`]) are
//! merged into every event: a steal worker sets `worker` and `campaign`
//! once and `unit` per claimed lease, and every tier/lease/push event
//! emitted underneath carries them without threading strings through
//! call sites. Explicit event labels win over context on key collision.
//!
//! Tracing never perturbs simulation results: emit sites only read
//! clocks and append bytes — the bit-identity tests run with `DRI_TRACE`
//! on to prove it.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable naming the JSONL trace file (absent/empty =
/// tracing off, the default).
pub const TRACE_ENV: &str = "DRI_TRACE";

/// The process epoch every `ts_us` counts from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since process start on the monotonic clock — the one
/// clock every span, histogram sample, and suite wall-time shares.
pub fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn sink() -> Option<&'static Mutex<File>> {
    static SINK: OnceLock<Option<Mutex<File>>> = OnceLock::new();
    SINK.get_or_init(|| {
        let path = std::env::var(TRACE_ENV).ok()?;
        let path = path.trim();
        if path.is_empty() {
            return None;
        }
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => Some(Mutex::new(file)),
            Err(err) => {
                // A mis-set trace path must not kill the run — warn once
                // (this init runs once) and trace nothing.
                eprintln!("warning: {TRACE_ENV}={path}: {err}; tracing disabled");
                None
            }
        }
    })
    .as_ref()
}

/// Whether tracing is active (the first call resolves [`TRACE_ENV`] and
/// opens the file; later calls are one atomic load).
pub fn enabled() -> bool {
    sink().is_some()
}

fn context() -> &'static Mutex<BTreeMap<String, String>> {
    static CONTEXT: OnceLock<Mutex<BTreeMap<String, String>>> = OnceLock::new();
    CONTEXT.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Sets an ambient label merged into every subsequent event (e.g.
/// `worker`, `campaign`, `unit`). Explicit event labels take precedence.
pub fn set_context(key: &str, value: &str) {
    if enabled() {
        context()
            .lock()
            .unwrap()
            .insert(key.to_owned(), value.to_owned());
    }
}

/// Removes an ambient label (e.g. `unit`, once its lease completes).
pub fn clear_context(key: &str) {
    if enabled() {
        context().lock().unwrap().remove(key);
    }
}

/// One trace line, in memory. See the module docs for the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since process start.
    pub ts_us: u64,
    /// Event family (`tier`, `lease`, `serve`, …).
    pub kind: String,
    /// Name within the family.
    pub name: String,
    /// Span duration in microseconds; `None` on point events.
    pub dur_us: Option<u64>,
    /// How it ended; `None` when there is nothing to say.
    pub outcome: Option<String>,
    /// Extra dimensions, in emission order.
    pub labels: Vec<(String, String)>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceEvent {
    /// A point event at now.
    pub fn new(kind: &str, name: &str) -> TraceEvent {
        TraceEvent {
            ts_us: now_us(),
            kind: kind.to_owned(),
            name: name.to_owned(),
            dur_us: None,
            outcome: None,
            labels: Vec::new(),
        }
    }

    /// Builder: sets the outcome.
    pub fn outcome(mut self, outcome: &str) -> TraceEvent {
        self.outcome = Some(outcome.to_owned());
        self
    }

    /// Builder: adds a label.
    pub fn label(mut self, key: &str, value: &str) -> TraceEvent {
        self.labels.push((key.to_owned(), value.to_owned()));
        self
    }

    /// The event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"kind\":\"");
        escape_into(&mut out, &self.kind);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, &self.name);
        out.push('"');
        if let Some(dur) = self.dur_us {
            out.push_str(",\"dur_us\":");
            out.push_str(&dur.to_string());
        }
        if let Some(outcome) = &self.outcome {
            out.push_str(",\"outcome\":\"");
            escape_into(&mut out, outcome);
            out.push('"');
        }
        if !self.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":\"");
                escape_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Strict inverse of [`TraceEvent::to_json`]: parses one trace line,
    /// rejecting unknown fields, wrong types, and trailing garbage.
    pub fn parse(line: &str) -> Result<TraceEvent, String> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let event = p.event()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(event)
    }

    /// Emits the event to the trace file (with ambient context labels
    /// merged in); a no-op when tracing is off.
    pub fn emit(mut self) {
        let Some(sink) = sink() else { return };
        {
            let ctx = context().lock().unwrap();
            for (k, v) in ctx.iter() {
                if !self.labels.iter().any(|(ek, _)| ek == k) {
                    self.labels.push((k.clone(), v.clone()));
                }
            }
        }
        let mut line = self.to_json();
        line.push('\n');
        // One write(2) on an O_APPEND fd: concurrent emitters never
        // interleave mid-line. Ignore errors — tracing must never fail
        // the traced work.
        let _ = sink.lock().unwrap().write_all(line.as_bytes());
    }
}

/// A timed interval: [`Span::begin`] stamps the start, [`Span::finish`]
/// emits a `dur_us` event and returns the elapsed time — callers use
/// the same measurement for histograms and summaries, so wall-times and
/// trace lines come from one clock.
#[derive(Debug)]
pub struct Span {
    start: Instant,
    ts_us: u64,
    kind: String,
    name: String,
    labels: Vec<(String, String)>,
}

impl Span {
    /// Starts a span now.
    pub fn begin(kind: &str, name: &str) -> Span {
        Span {
            start: Instant::now(),
            ts_us: now_us(),
            kind: kind.to_owned(),
            name: name.to_owned(),
            labels: Vec::new(),
        }
    }

    /// Builder: adds a label.
    pub fn label(mut self, key: &str, value: &str) -> Span {
        self.labels.push((key.to_owned(), value.to_owned()));
        self
    }

    /// Ends the span: emits the event (when tracing) and returns the
    /// elapsed duration (always).
    pub fn finish(self, outcome: &str) -> Duration {
        let elapsed = self.start.elapsed();
        if enabled() {
            TraceEvent {
                ts_us: self.ts_us,
                kind: self.kind,
                name: self.name,
                dur_us: Some(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)),
                outcome: Some(outcome.to_owned()),
                labels: self.labels,
            }
            .emit();
        }
        elapsed
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| "number out of range".to_owned())
    }

    fn labels(&mut self) -> Result<Vec<(String, String)>, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.string()?;
            out.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected ',' or '}}' in labels, got {other:?}")),
            }
        }
    }

    fn event(&mut self) -> Result<TraceEvent, String> {
        self.eat(b'{')?;
        let mut ts_us = None;
        let mut kind = None;
        let mut name = None;
        let mut dur_us = None;
        let mut outcome = None;
        let mut labels = Vec::new();
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            match key.as_str() {
                "ts_us" => ts_us = Some(self.number()?),
                "dur_us" => dur_us = Some(self.number()?),
                "kind" => kind = Some(self.string()?),
                "name" => name = Some(self.string()?),
                "outcome" => outcome = Some(self.string()?),
                "labels" => labels = self.labels()?,
                other => return Err(format!("unknown field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(TraceEvent {
            ts_us: ts_us.ok_or("missing ts_us")?,
            kind: kind.ok_or("missing kind")?,
            name: name.ok_or("missing name")?,
            dur_us,
            outcome,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_full_event() {
        let ev = TraceEvent {
            ts_us: 123_456,
            kind: "tier".into(),
            name: "dri".into(),
            dur_us: Some(57),
            outcome: Some("remote".into()),
            labels: vec![
                ("benchmark".into(), "compress".into()),
                ("worker".into(), "w-1".into()),
            ],
        };
        let line = ev.to_json();
        assert_eq!(TraceEvent::parse(&line).unwrap(), ev);
    }

    #[test]
    fn round_trips_hostile_strings() {
        for nasty in [
            "quo\"te",
            "back\\slash",
            "new\nline",
            "tab\there",
            "naïve…🦀",
            "\u{1}",
        ] {
            let ev = TraceEvent::new("kind", nasty)
                .outcome(nasty)
                .label(nasty, nasty);
            let parsed = TraceEvent::parse(&ev.to_json()).unwrap();
            assert_eq!(parsed.name, nasty);
            assert_eq!(parsed.outcome.as_deref(), Some(nasty));
            assert_eq!(parsed.labels, vec![(nasty.to_owned(), nasty.to_owned())]);
        }
    }

    #[test]
    fn minimal_event_omits_optional_fields() {
        let ev = TraceEvent {
            ts_us: 5,
            kind: "fault".into(),
            name: "drop".into(),
            dur_us: None,
            outcome: None,
            labels: Vec::new(),
        };
        let line = ev.to_json();
        assert!(!line.contains("dur_us"));
        assert!(!line.contains("outcome"));
        assert!(!line.contains("labels"));
        assert_eq!(TraceEvent::parse(&line).unwrap(), ev);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "not json",
            r#"{"ts_us":1,"kind":"k"}"#, // missing name
            r#"{"ts_us":1,"kind":"k","name":"n"} trailing"#, // trailing garbage
            r#"{"ts_us":1,"kind":"k","name":"n","bogus":"x"}"#, // unknown field
            r#"{"ts_us":"1","kind":"k","name":"n"}"#, // wrong type
            r#"{"ts_us":1,"kind":"k","name":"n","labels":{"a":1}}"#, // non-string label
        ] {
            assert!(TraceEvent::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn span_returns_elapsed_even_when_disabled() {
        // DRI_TRACE is not set under cargo test.
        let span = Span::begin("job", "x").label("k", "v");
        std::thread::sleep(Duration::from_millis(2));
        let dur = span.finish("ok");
        assert!(dur >= Duration::from_millis(2));
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
