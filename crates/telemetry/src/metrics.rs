//! The metrics registry: atomic counters, gauges, and log-linear
//! latency histograms with a Prometheus text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones around atomics — register once, clone freely, update from any
//! thread without locking. A [`Registry`] is the named collection a
//! scrape renders; the same handle can also live unregistered (a struct
//! field) when a component wants per-instance counts, which is how the
//! client keeps its per-store stats test-isolated while sharing one
//! metric vocabulary with the server.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (records on disk, bytes,
/// generation, …). Set at scrape or sample time.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power of two; 16 bounds the quantile error at one
/// part in sixteen (~6%) while keeping the whole table under 1000 slots.
const SUB_BUCKETS: u64 = 16;
/// Values below `SUB_BUCKETS` get one exact bucket each.
const LINEAR_CUTOFF: u64 = SUB_BUCKETS;
/// 16 exact linear buckets + 16 sub-buckets for each octave 4..=63.
const NBUCKETS: usize = (LINEAR_CUTOFF + (64 - 4) * SUB_BUCKETS) as usize;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    /// Exact smallest recorded value (`u64::MAX` until first record).
    min: AtomicU64,
    /// Exact largest recorded value.
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

/// A log-linear histogram of `u64` samples (by convention nanoseconds).
///
/// Values below 16 land in exact buckets; above that, each power of two
/// is split into 16 sub-buckets, so a reported quantile
/// overstates the true sample by at most one sub-bucket width (≤ 1/16
/// relative). The exact `min` and `max` are tracked separately, which
/// pins `quantile(0.0)` and `quantile(1.0)` to real recorded samples —
/// every sample falls in `quantile(0.0)..=quantile(1.0)`.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }))
    }

    /// Bucket index for a value.
    fn index(v: u64) -> usize {
        if v < LINEAR_CUTOFF {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros() as u64; // floor(log2 v), >= 4
        let sub = (v >> (octave - 4)) - SUB_BUCKETS; // 0..16 within the octave
        (LINEAR_CUTOFF + (octave - 4) * SUB_BUCKETS + sub) as usize
    }

    /// Inclusive `(lo, hi)` value range of bucket `i`.
    fn bounds(i: usize) -> (u64, u64) {
        let i = i as u64;
        if i < LINEAR_CUTOFF {
            return (i, i);
        }
        let octave = 4 + (i - LINEAR_CUTOFF) / SUB_BUCKETS;
        let sub = (i - LINEAR_CUTOFF) % SUB_BUCKETS;
        let width = 1u64 << (octave - 4);
        let lo = (SUB_BUCKETS + sub) << (octave - 4);
        (lo, lo + (width - 1))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
        inner.buckets[Histogram::index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.0.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// The `q`-quantile (`q` in `0.0..=1.0`) of the recorded samples.
    ///
    /// `quantile(0.0)` is the exact minimum and `quantile(1.0)` the
    /// exact maximum; interior quantiles return the upper bound of the
    /// bucket holding the ranked sample, clamped into `min..=max`.
    /// Returns 0 when nothing has been recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let (min, max) = (self.min(), self.max());
        if q <= 0.0 {
            return min;
        }
        if q >= 1.0 {
            return max;
        }
        // 1-based rank of the sample this quantile names.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (_, hi) = Histogram::bounds(i);
                return hi.clamp(min, max);
            }
        }
        max
    }

    /// `(p50, p90, p99, max)` in one call — the suite's summary row.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max(),
        )
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter { help: String, handle: Counter },
    Gauge { help: String, handle: Gauge },
    Histogram { help: String, handle: Histogram },
}

/// A named collection of metrics that one scrape renders.
///
/// `counter`/`gauge`/`histogram` get-or-register: asking twice for the
/// same name returns a handle to the same atomic, so every component
/// naming a metric shares it. [`Registry::global`] is the process-wide
/// instance; servers hold their own so that `/stats` and `/metrics`
/// read the very same atomics while parallel test servers stay
/// isolated.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or registers a counter. Panics if `name` is already
    /// registered as a different metric type — that is a programming
    /// error, not a runtime condition.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter {
                help: help.to_owned(),
                handle: Counter::new(),
            }) {
            Metric::Counter { handle, .. } => handle.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Gets or registers a gauge (same rules as [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge {
                help: help.to_owned(),
                handle: Gauge::new(),
            }) {
            Metric::Gauge { handle, .. } => handle.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Gets or registers a histogram (same rules as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram {
                help: help.to_owned(),
                handle: Histogram::new(),
            }) {
            Metric::Histogram { handle, .. } => handle.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Value of a registered counter or gauge, for tests and agreement
    /// checks.
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().unwrap().get(name)? {
            Metric::Counter { handle, .. } => Some(handle.get()),
            Metric::Gauge { handle, .. } => Some(handle.get()),
            Metric::Histogram { handle, .. } => Some(handle.count()),
        }
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters and gauges are one sample each; histograms are rendered
    /// as a `summary` (`{quantile="0.5"|"0.9"|"0.99"}` plus `_sum` and
    /// `_count`) with a companion `<name>_max` gauge, since the text
    /// format's summary type has no max of its own.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter { help, handle } => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", handle.get());
                }
                Metric::Gauge { help, handle } => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", handle.get());
                }
                Metric::Histogram { help, handle } => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                        let _ =
                            writeln!(out, "{name}{{quantile=\"{label}\"}} {}", handle.quantile(q));
                    }
                    let _ = writeln!(out, "{name}_sum {}", handle.sum());
                    let _ = writeln!(out, "{name}_count {}", handle.count());
                    let _ = writeln!(out, "# HELP {name}_max {help} (exact maximum)");
                    let _ = writeln!(out, "# TYPE {name}_max gauge");
                    let _ = writeln!(out, "{name}_max {}", handle.max());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Second ask returns the same underlying atomic.
        assert_eq!(reg.counter("reqs_total", "requests").get(), 5);
        let g = reg.gauge("records", "records on disk");
        g.set(42);
        assert_eq!(reg.value("records"), Some(42));
        assert_eq!(reg.value("reqs_total"), Some(5));
        assert_eq!(reg.value("missing"), None);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let i = Histogram::index(v);
            let (lo, hi) = Histogram::bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket {i} [{lo},{hi}]");
        }
    }

    #[test]
    fn buckets_tile_the_u64_line() {
        // Consecutive buckets meet exactly: hi(i) + 1 == lo(i+1).
        for i in 0..NBUCKETS - 1 {
            let (_, hi) = Histogram::bounds(i);
            let (lo, _) = Histogram::bounds(i + 1);
            assert_eq!(hi + 1, lo, "gap between buckets {i} and {}", i + 1);
        }
        let (_, top) = Histogram::bounds(NBUCKETS - 1);
        assert_eq!(top, u64::MAX);
    }

    #[test]
    fn quantiles_of_known_samples() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
        // p50 names rank 50 (value 50); its bucket [48,51] reports 51.
        let p50 = h.quantile(0.5);
        assert!((50..=53).contains(&p50), "p50={p50}");
        // Quantiles never decrease as q grows.
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q})={v} < {last}");
            last = v;
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("dri_x_total", "things").add(7);
        reg.gauge("dri_g", "a gauge").set(3);
        let h = reg.histogram("dri_lat_ns", "latency");
        h.record(100);
        h.record(200);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dri_x_total counter\ndri_x_total 7\n"));
        assert!(text.contains("# TYPE dri_g gauge\ndri_g 3\n"));
        assert!(text.contains("# TYPE dri_lat_ns summary\n"));
        assert!(text.contains("dri_lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("dri_lat_ns_sum 300\n"));
        assert!(text.contains("dri_lat_ns_count 2\n"));
        assert!(text.contains("# TYPE dri_lat_ns_max gauge\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad sample line: {line}");
            assert!(parts.next().is_some());
        }
    }
}
