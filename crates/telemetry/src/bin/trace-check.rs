//! `trace-check` — validate a `DRI_TRACE` JSONL file.
//!
//! Every line must parse as a [`dri_telemetry::TraceEvent`] (the strict
//! schema in `dri_telemetry::trace`); `--require` asserts that at least
//! one event matches a comma-separated list of `field=value` matchers,
//! where `field` is `kind`, `name`, or `outcome`, and anything else
//! matches a label. CI's smoke jobs use this to prove a worker's trace
//! covers the tiers it exercised and that a chaos run recorded the
//! injected faults and the reclaim handoff.

use std::process::ExitCode;

use dri_telemetry::TraceEvent;

const USAGE: &str = "\
usage: trace-check FILE [--require MATCHERS]...

MATCHERS is a comma-separated list of field=value pairs that must all
hold on a single event; field is kind, name, or outcome, anything else
matches a label. Examples:
  trace-check trace.jsonl --require kind=tier,outcome=remote
  trace-check trace.jsonl --require kind=fault --require 'kind=lease,outcome=reclaimed'

Exits 0 when every line parses and every --require matched >= 1 event;
prints per-kind event counts to stderr.";

struct Require {
    raw: String,
    matchers: Vec<(String, String)>,
}

fn parse_require(raw: &str) -> Result<Require, String> {
    let mut matchers = Vec::new();
    for pair in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (field, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("matcher {pair:?}: want field=value"))?;
        matchers.push((field.trim().to_owned(), value.trim().to_owned()));
    }
    if matchers.is_empty() {
        return Err(format!("--require {raw:?}: no matchers"));
    }
    Ok(Require {
        raw: raw.to_owned(),
        matchers,
    })
}

fn matches(event: &TraceEvent, matchers: &[(String, String)]) -> bool {
    matchers.iter().all(|(field, want)| match field.as_str() {
        "kind" => event.kind == *want,
        "name" => event.name == *want,
        "outcome" => event.outcome.as_deref() == Some(want),
        label => event.labels.iter().any(|(k, v)| k == label && v == want),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut requires = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require" => {
                let Some(raw) = it.next() else {
                    eprintln!("error: --require needs matchers\n\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match parse_require(raw) {
                    Ok(req) => requires.push(req),
                    Err(msg) => {
                        eprintln!("error: {msg}\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_owned());
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("error: no trace file given\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(body) => body,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut total = 0u64;
    let mut by_kind: std::collections::BTreeMap<String, u64> = Default::default();
    let mut matched = vec![0u64; requires.len()];
    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = match TraceEvent::parse(line) {
            Ok(event) => event,
            Err(msg) => {
                eprintln!("error: {path}:{}: {msg}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        total += 1;
        *by_kind.entry(event.kind.clone()).or_default() += 1;
        for (req, hit) in requires.iter().zip(matched.iter_mut()) {
            if matches(&event, &req.matchers) {
                *hit += 1;
            }
        }
    }

    eprintln!("trace-check: {path}: {total} events");
    for (kind, n) in &by_kind {
        eprintln!("  {kind}: {n}");
    }
    let mut failed = false;
    for (req, hit) in requires.iter().zip(matched.iter()) {
        if *hit == 0 {
            eprintln!("error: no event matches --require {}", req.raw);
            failed = true;
        } else {
            eprintln!("  require {} -> {hit} events", req.raw);
        }
    }
    if total == 0 {
        eprintln!("error: {path} holds no events");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
