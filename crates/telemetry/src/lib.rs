//! # dri-telemetry — the observability layer
//!
//! The paper's DRI cache is a feedback loop driven by counters (a
//! miss-count monitor decides every resize); this crate gives the
//! *reproduction's runtime* the same kind of self-measurement, with no
//! dependencies beyond `std` (the build environment is offline):
//!
//! * [`metrics`] — a registry of atomic [`Counter`]s, [`Gauge`]s, and
//!   log-linear [`Histogram`]s (p50/p90/p99/max export), rendered as
//!   Prometheus text by `dri-serve`'s `GET /metrics` and read by
//!   `/stats` and the suite summary — one set of atomics behind all
//!   three reporters.
//! * [`trace`] — span-based structured tracing gated by
//!   `DRI_TRACE=<path.jsonl>`: monotonic-clocked JSONL events at every
//!   interesting edge (tier resolutions, prefetch phases, lease
//!   round-trips, retries, breaker trips, per-request server records,
//!   fault injections), with ambient worker/campaign/unit labels.
//!   [`TraceEvent::parse`] is the strict inverse of the emitter; the
//!   `trace-check` binary validates a trace file and asserts required
//!   event kinds for CI.
//!
//! Instrumentation must never perturb simulation results — emit sites
//! read clocks and bump atomics, nothing else, and the bit-identity
//! tests run with `DRI_TRACE` enabled to hold that line.
//!
//! ## Timing granularity
//!
//! Microsecond-and-up edges (disk, network, simulation) are always
//! timed. The *memory-tier* lookup path is ~300 ns hot — two clock
//! reads would be visible — so sub-microsecond timing is opt-in via
//! [`timing_enabled`]: on when tracing is on, when [`TIMING_ENV`] is
//! set truthy (the `suite` binary sets it for its per-tier latency
//! table), or when a session is built with timing forced.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{Span, TraceEvent, TRACE_ENV};

/// Environment variable opting into sub-microsecond (memory-tier)
/// timing: `DRI_TIMING=1`. Unset/`0` keeps the ~300 ns warm lookup path
/// free of clock reads; `suite` sets it so the summary's per-tier
/// latency table always includes the memory tier.
pub const TIMING_ENV: &str = "DRI_TIMING";

/// Whether fine-grained (memory-tier) timing is on: tracing active, or
/// [`TIMING_ENV`] set to anything but `0`/`false`/empty. Resolved once
/// per process.
pub fn timing_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        if trace::enabled() {
            return true;
        }
        std::env::var(TIMING_ENV)
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
            })
            .unwrap_or(false)
    })
}
