//! Property tests for the histogram quantile math and the trace-event
//! JSONL codec — the two pieces whose correctness everything downstream
//! (suite summaries, CI trace assertions) silently assumes.

use dri_telemetry::{Histogram, TraceEvent};
use proptest::prelude::*;

/// Arbitrary (possibly hostile) string from raw code points: plain
/// ASCII, quotes, backslashes, control bytes, and non-ASCII scalars.
fn string_from(codes: &[u32]) -> String {
    codes
        .iter()
        .filter_map(|&c| char::from_u32(c % 0x11_0000))
        .collect()
}

proptest! {
    #[test]
    fn samples_always_fall_in_p0_to_pmax(
        samples in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p0 = h.quantile(0.0);
        let pmax = h.quantile(1.0);
        for &s in &samples {
            prop_assert!(p0 <= s && s <= pmax, "sample {s} outside [{p0}, {pmax}]");
        }
        // The ends are exact, not bucket bounds.
        prop_assert_eq!(p0, *samples.iter().min().unwrap());
        prop_assert_eq!(pmax, *samples.iter().max().unwrap());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..150),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(hi) <= h.max());
        prop_assert!(h.quantile(lo) >= h.min());
    }

    #[test]
    fn quantile_error_is_bounded_log_linearly(
        samples in prop::collection::vec(1u64..u64::MAX / 2, 1..100),
        q in 0.0f64..1.0,
    ) {
        // An interior quantile may overstate the ranked sample by at
        // most one sub-bucket (1/16 relative), and never understates
        // the true rank-holder's bucket floor.
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.quantile(q);
        prop_assert!(approx >= exact, "quantile({q})={approx} < exact {exact}");
        // Upper bucket bound of v is < v + v/16 + 1 (one sub-bucket up).
        prop_assert!(
            approx <= exact + exact / 16 + 1,
            "quantile({q})={approx} overshoots exact {exact} by more than a sub-bucket"
        );
    }

    #[test]
    fn trace_events_round_trip(
        ts in any::<u64>(),
        dur in any::<u64>(),
        has_dur in any::<bool>(),
        has_outcome in any::<bool>(),
        kind_codes in prop::collection::vec(any::<u32>(), 0..12),
        name_codes in prop::collection::vec(any::<u32>(), 0..24),
        label_codes in prop::collection::vec(any::<u32>(), 0..16),
        nlabels in 0usize..4,
    ) {
        let event = TraceEvent {
            ts_us: ts,
            kind: string_from(&kind_codes),
            name: string_from(&name_codes),
            dur_us: has_dur.then_some(dur),
            outcome: has_outcome.then(|| string_from(&label_codes)),
            labels: (0..nlabels)
                .map(|i| (format!("k{i}-{}", string_from(&label_codes)), string_from(&name_codes)))
                .collect(),
        };
        let line = event.to_json();
        prop_assert!(!line.contains('\n'), "a trace line must be one line");
        let parsed = TraceEvent::parse(&line);
        prop_assert!(parsed.is_ok(), "emitted line failed to parse: {line}");
        prop_assert_eq!(parsed.unwrap(), event);
    }
}
