//! # dri-experiments — the figure/table regeneration harness
//!
//! One module (and one binary) per published artifact of the HPCA 2001 DRI
//! i-cache paper:
//!
//! | Artifact | Module / binary |
//! |---|---|
//! | Table 1 (system configuration) | `table1` binary |
//! | Table 2 (gated-Vdd circuit trade-offs) | `table2` binary (over `sram_circuit::table2`) |
//! | Figure 3 (base energy-delay + average size) | [`search`] + `figure3` binary |
//! | Figure 4 (miss-bound sensitivity) | [`sweeps::miss_bound_sweep`] + `figure4` binary |
//! | Figure 5 (size-bound sensitivity) | [`sweeps::size_bound_sweep`] + `figure5` binary |
//! | Figure 6 (size/associativity) | [`sweeps::geometry_sweep`] + `figure6` binary |
//! | §5.6 (interval & divisibility) | [`sweeps::interval_sweep`] / [`sweeps::divisibility_sweep`] + `section5_6` binary |
//! | §5.2.1 (analytic bounds) | `tradeoff` binary (over `energy_model::tradeoff`) |
//! | policy shoot-out (DRI vs decay vs way-resize vs way-memo) | [`figures::policies`] + `policies` binary |
//! | any subset of the above, one process | [`manifest`] + `suite` binary |
//!
//! Every figure runs under any [`PolicyConfig`] — set `DRI_POLICY`
//! (or a manifest's `policy =`) to swap the leakage-control model on
//! the fetch path while baselines, energy accounting, and store keys
//! adjust to match.
//!
//! Set `DRI_QUICK=1` to run any binary with reduced grids/budgets, and
//! `DRI_STORE=<dir>` to persist every simulated point in a
//! content-addressed on-disk store ([`dri_store`], wired in by
//! [`session`] + [`persist`]) so later processes warm-start from disk.
//!
//! With `DRI_REMOTE` pointing at a `dri-serve` host, a fleet shares one
//! memoization domain; `suite --steal` ([`steal`]) goes further and
//! shares the *scheduling* too — workers claim benchmark-sized work
//! units from the server's durable lease table, push what they
//! simulate, and re-claim anything a dead worker left behind.
//!
//! ## Example
//!
//! ```
//! use dri_experiments::{compare, RunConfig};
//! use synth_workload::suite::Benchmark;
//!
//! let mut cfg = RunConfig::quick(Benchmark::Li);
//! cfg.dri.size_bound_bytes = 4 * 1024;
//! let c = compare(&cfg);
//! assert!(c.relative_energy_delay < 1.0);
//! ```

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod manifest;
pub mod persist;
pub mod published;
pub mod report;
pub mod runner;
pub mod search;
pub mod session;
pub mod steal;
pub mod sweeps;

pub use dri_core::PolicyConfig;
pub use dri_serve::{RemoteStats, RemoteStore, ShardedStore};
pub use dri_store::{KeyPlan, ResultStore, StoreStats};
pub use runner::{
    compare, run_conventional, run_dri, run_policy, run_policy_uncached, Comparison, DriRun,
    RunConfig,
};
pub use search::{
    grid_configs, search_all, search_benchmark, SearchResult, SearchSpace, SLOWDOWN_CONSTRAINT,
};
pub use session::{
    prefetch_enabled, prefetch_grid, push_enabled, push_grid, PrefetchStats, PushStats,
    SessionBuilder, SessionStats, SimSession, TierLatency, PREFETCH_ENV, PUSH_ENV,
};
pub use steal::{
    campaign_id, drain, steal_enabled, worker_name, DrainOutcome, STEAL_ENV, WORKER_ENV,
};
