//! Declarative run plans for the `suite` batch runner.
//!
//! A manifest is a small text file describing *which* figure/table suites
//! to run and under *what* environment, so a whole evaluation campaign is
//! one reviewable artifact instead of a shell script of `cargo run`
//! invocations:
//!
//! ```text
//! # figures.manifest — everything the paper's evaluation section needs
//! quick = on                 # DRI_QUICK: reduced grids and budgets
//! threads = 4                # DRI_THREADS: worker cap
//! store = /var/cache/dri     # DRI_STORE: shared on-disk result store
//!
//! figure3
//! figure4                    # reuses figure3's search points in-process
//! section5_6
//! ```
//!
//! Grammar, line by line (after stripping `#` comments and blank lines):
//!
//! * `<key> = <value>` — an option. `quick` (`on`/`off`/`1`/`0`) maps to
//!   `DRI_QUICK`, `threads` (positive integer) to `DRI_THREADS`, `store`
//!   (a directory path) to `DRI_STORE`, `remote` (a `dri-serve`
//!   `host:port`) to `DRI_REMOTE`, `prefetch` (`on`/`off`) to
//!   `DRI_PREFETCH` (bulk grid prefetch through the cache tiers — on by
//!   default), `push` (`on`/`off`) to `DRI_PUSH` (push locally simulated
//!   records to the remote service after each sweep — off by default;
//!   the server must hold the matching `DRI_TOKEN`), `steal` (`on`/`off`)
//!   to `DRI_STEAL` (lease-based work stealing: instead of statically
//!   splitting the campaign with `benchmarks`, workers claim
//!   benchmark-sized units from the server's durable lease queue — off
//!   by default, requires `remote`), `policy` (one of `dri`, `decay`,
//!   `way_resize`, `way_memo`) to `DRI_POLICY` (which leakage policy the
//!   figure suites run — the paper's DRI cache by default), and
//!   `benchmarks` (a comma-separated list of benchmark names) to
//!   `DRI_BENCHMARKS` — the fleet-splitting knob that lets two workers
//!   take disjoint halves of one campaign. Options apply to the whole
//!   plan and must precede the first job.
//! * `<job>` — a job name (see [`Job::all`]), or `all` for every job.
//!   Jobs run in file order; duplicates are dropped (within one process
//!   the second run would be pure cache hits anyway).
//!
//! A manifest may list only options and no jobs (a shared environment
//! config): the job list then comes from the `suite` command line, or
//! defaults to `all`.
//!
//! Parsing is strict: unknown jobs, unknown options, malformed values,
//! and options after jobs are errors with line numbers, not warnings —
//! a typo in a batch plan should fail in seconds, not silently skip a
//! figure of a multi-hour campaign.

use std::fmt;

use crate::figures;

/// One runnable artifact suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Job {
    /// Table 1 (system configuration).
    Table1,
    /// Table 2 (gated-Vdd circuit trade-offs).
    Table2,
    /// Figure 3 (base energy-delay + average size; the parameter search).
    Figure3,
    /// Figure 4 (miss-bound sensitivity).
    Figure4,
    /// Figure 5 (size-bound sensitivity).
    Figure5,
    /// Figure 6 (size/associativity geometry sweep).
    Figure6,
    /// §5.6 (sense-interval and divisibility robustness).
    Section5_6,
    /// §5.2.1 (analytic leakage/dynamic trade-off bounds).
    Tradeoff,
    /// Policy shoot-out (DRI vs decay vs way-resize vs way-memo,
    /// side by side on one geometry).
    Policies,
}

impl Job {
    /// Every job, in the paper's presentation order (also the order
    /// `all` expands to — searches first, so later sweeps hit their
    /// cached points).
    pub fn all() -> [Job; 9] {
        [
            Job::Table1,
            Job::Table2,
            Job::Figure3,
            Job::Figure4,
            Job::Figure5,
            Job::Figure6,
            Job::Section5_6,
            Job::Tradeoff,
            Job::Policies,
        ]
    }

    /// The job's manifest/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Job::Table1 => "table1",
            Job::Table2 => "table2",
            Job::Figure3 => "figure3",
            Job::Figure4 => "figure4",
            Job::Figure5 => "figure5",
            Job::Figure6 => "figure6",
            Job::Section5_6 => "section5_6",
            Job::Tradeoff => "tradeoff",
            Job::Policies => "policies",
        }
    }

    /// One-line description for `suite --list`.
    pub fn description(&self) -> &'static str {
        match self {
            Job::Table1 => "system configuration parameters",
            Job::Table2 => "gated-Vdd circuit trade-offs",
            Job::Figure3 => "base energy-delay + average size (parameter search)",
            Job::Figure4 => "miss-bound sensitivity sweep",
            Job::Figure5 => "size-bound sensitivity sweep",
            Job::Figure6 => "size/associativity geometry sweep",
            Job::Section5_6 => "sense-interval and divisibility robustness",
            Job::Tradeoff => "analytic leakage/dynamic trade-off bounds",
            Job::Policies => "leakage-policy shoot-out (dri/decay/way_resize/way_memo)",
        }
    }

    /// Whether the job runs paired simulations (and therefore benefits
    /// from the session/store caches — `table1`/`table2`/`tradeoff` are
    /// closed-form and always cheap).
    pub fn simulates(&self) -> bool {
        !matches!(self, Job::Table1 | Job::Table2 | Job::Tradeoff)
    }

    /// Looks a job up by its manifest/CLI name.
    pub fn from_name(name: &str) -> Option<Job> {
        Job::all().into_iter().find(|j| j.name() == name)
    }

    /// Executes the job (printing its tables to stdout).
    pub fn run(&self) {
        match self {
            Job::Table1 => figures::table1(),
            Job::Table2 => figures::table2(),
            Job::Figure3 => figures::figure3(),
            Job::Figure4 => figures::figure4(),
            Job::Figure5 => figures::figure5(),
            Job::Figure6 => figures::figure6(),
            Job::Section5_6 => figures::section5_6(),
            Job::Tradeoff => figures::tradeoff(),
            Job::Policies => figures::policies(),
        }
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Plan-wide options (each maps onto one `DRI_*` environment variable).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanOptions {
    /// `quick = on|off` → `DRI_QUICK`.
    pub quick: Option<bool>,
    /// `threads = n` → `DRI_THREADS`.
    pub threads: Option<usize>,
    /// `store = <dir>` → `DRI_STORE`.
    pub store: Option<String>,
    /// `remote = <host:port>` → `DRI_REMOTE` (a `dri-serve` instance).
    pub remote: Option<String>,
    /// `prefetch = on|off` → `DRI_PREFETCH` (bulk grid prefetch; on by
    /// default when unset).
    pub prefetch: Option<bool>,
    /// `push = on|off` → `DRI_PUSH` (write-through push of simulated
    /// records to the remote service; off by default when unset).
    pub push: Option<bool>,
    /// `steal = on|off` → `DRI_STEAL` (lease-based work stealing over
    /// the remote scheduler; off by default when unset).
    pub steal: Option<bool>,
    /// `policy = dri|decay|way_resize|way_memo` → `DRI_POLICY` (which
    /// leakage policy the figure suites run; DRI when unset).
    pub policy: Option<String>,
    /// `benchmarks = a,b,c` → `DRI_BENCHMARKS` (restrict the figure
    /// suites to a validated subset of benchmarks; names are normalised
    /// to a comma-joined list).
    pub benchmarks: Option<String>,
}

/// A parsed manifest: options plus an ordered, deduplicated job list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Plan-wide options.
    pub options: PlanOptions,
    /// Jobs in execution order.
    pub jobs: Vec<Job>,
}

impl Manifest {
    /// Appends `job` unless it is already planned.
    pub fn push_job(&mut self, job: Job) {
        if !self.jobs.contains(&job) {
            self.jobs.push(job);
        }
    }
}

/// A manifest parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based source line (0 is reserved for errors spanning the whole
    /// file, should a consumer need one).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

fn parse_switch(line: usize, value: &str) -> Result<bool, ManifestError> {
    match value {
        "on" | "1" | "true" | "yes" => Ok(true),
        "off" | "0" | "false" | "no" => Ok(false),
        other => Err(err(line, format!("expected on/off, got `{other}`"))),
    }
}

/// Validates a `benchmarks =` list against the known benchmark names,
/// returning them normalised (trimmed, comma-joined). Strict like every
/// other manifest value: a typo'd name fails the parse with its line
/// number rather than silently shrinking a fleet worker's share of the
/// campaign.
fn parse_benchmarks(line: usize, value: &str) -> Result<String, ManifestError> {
    use synth_workload::suite::Benchmark;
    let mut names: Vec<&str> = Vec::new();
    for name in value.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        if Benchmark::all().iter().any(|b| b.name() == name) {
            if !names.contains(&name) {
                names.push(name);
            }
        } else {
            let known: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
            return Err(err(
                line,
                format!(
                    "unknown benchmark `{name}` (expected a comma-separated subset of: {})",
                    known.join(", ")
                ),
            ));
        }
    }
    if names.is_empty() {
        return Err(err(line, "`benchmarks` needs at least one benchmark name"));
    }
    Ok(names.join(","))
}

/// Validates a `policy =` value against the known leakage-policy ids.
/// Strict for the same reason `benchmarks` is: a typo'd policy would
/// otherwise run (and label) a whole campaign as DRI.
fn parse_policy(line: usize, value: &str) -> Result<String, ManifestError> {
    use dri_core::PolicyConfig;
    if PolicyConfig::all_ids().contains(&value) {
        Ok(value.to_owned())
    } else {
        Err(err(
            line,
            format!(
                "unknown policy `{value}` (expected one of: {})",
                PolicyConfig::all_ids().join(", ")
            ),
        ))
    }
}

/// Parses manifest text (see the module docs for the grammar).
///
/// ```
/// use dri_experiments::manifest::{parse, Job};
///
/// let plan = parse(
///     "# campaign plan\n\
///      quick = on\n\
///      prefetch = on          # one batch round-trip per grid\n\
///      \n\
///      figure3\n\
///      figure4\n",
/// )
/// .expect("well-formed manifest");
/// assert_eq!(plan.options.quick, Some(true));
/// assert_eq!(plan.options.prefetch, Some(true));
/// assert_eq!(plan.jobs, vec![Job::Figure3, Job::Figure4]);
///
/// // Errors carry 1-based line numbers: a typo fails in seconds, not
/// // silently mid-campaign.
/// assert_eq!(parse("figure3\nfigure9\n").unwrap_err().line, 2);
/// ```
pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
    let mut manifest = Manifest::default();
    let mut saw_job = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let (key, value) = (key.trim(), value.trim());
            if saw_job {
                return Err(err(
                    lineno,
                    format!("option `{key}` must appear before the first job"),
                ));
            }
            match key {
                "quick" => manifest.options.quick = Some(parse_switch(lineno, value)?),
                "threads" => {
                    let n: usize = value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        err(
                            lineno,
                            format!("`threads` needs a positive integer, got `{value}`"),
                        )
                    })?;
                    manifest.options.threads = Some(n);
                }
                "store" => {
                    if value.is_empty() {
                        return Err(err(lineno, "`store` needs a directory path"));
                    }
                    manifest.options.store = Some(value.to_owned());
                }
                "remote" => {
                    if value.is_empty() {
                        return Err(err(lineno, "`remote` needs a host:port address"));
                    }
                    manifest.options.remote = Some(value.to_owned());
                }
                "prefetch" => manifest.options.prefetch = Some(parse_switch(lineno, value)?),
                "push" => manifest.options.push = Some(parse_switch(lineno, value)?),
                "steal" => manifest.options.steal = Some(parse_switch(lineno, value)?),
                "policy" => manifest.options.policy = Some(parse_policy(lineno, value)?),
                "benchmarks" => {
                    manifest.options.benchmarks = Some(parse_benchmarks(lineno, value)?);
                }
                other => {
                    return Err(err(
                        lineno,
                        format!(
                            "unknown option `{other}` (expected quick, threads, store, \
                             remote, prefetch, push, steal, policy, or benchmarks)"
                        ),
                    ))
                }
            }
        } else if line == "all" {
            saw_job = true;
            for job in Job::all() {
                manifest.push_job(job);
            }
        } else if let Some(job) = Job::from_name(line) {
            saw_job = true;
            manifest.push_job(job);
        } else {
            let known: Vec<&str> = Job::all().iter().map(Job::name).collect();
            return Err(err(
                lineno,
                format!(
                    "unknown job `{line}` (expected one of: {}, or `all`)",
                    known.join(", ")
                ),
            ));
        }
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_options_jobs_and_comments() {
        let m = parse(
            "# campaign\nquick = on\nthreads = 4\nstore = /tmp/dri-store\n\nfigure3 # search\nfigure4\n",
        )
        .expect("valid manifest");
        assert_eq!(m.options.quick, Some(true));
        assert_eq!(m.options.threads, Some(4));
        assert_eq!(m.options.store.as_deref(), Some("/tmp/dri-store"));
        assert_eq!(m.jobs, vec![Job::Figure3, Job::Figure4]);
    }

    #[test]
    fn all_expands_and_dedupes() {
        let m = parse("figure5\nall\nfigure5\n").expect("valid manifest");
        assert_eq!(m.jobs.len(), Job::all().len());
        assert_eq!(m.jobs[0], Job::Figure5, "explicit order wins");
    }

    #[test]
    fn rejects_unknown_job_with_line_number() {
        let e = parse("figure3\nfigure7\n").expect_err("unknown job");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("figure7"), "{e}");
    }

    #[test]
    fn rejects_unknown_and_malformed_options() {
        assert!(parse("jobs = 3\nfigure3\n").is_err());
        assert!(parse("threads = zero\nfigure3\n").is_err());
        assert!(parse("threads = 0\nfigure3\n").is_err());
        assert!(parse("quick = maybe\nfigure3\n").is_err());
        assert!(parse("store =\nfigure3\n").is_err());
        assert!(parse("remote =\nfigure3\n").is_err());
    }

    #[test]
    fn remote_option_parses() {
        let m = parse("remote = 10.0.0.5:7171\nfigure3\n").expect("valid manifest");
        assert_eq!(m.options.remote.as_deref(), Some("10.0.0.5:7171"));
    }

    #[test]
    fn push_option_parses_and_rejects_garbage() {
        let m = parse("push = on\nremote = 10.0.0.5:7171\nfigure3\n").expect("valid manifest");
        assert_eq!(m.options.push, Some(true));
        assert_eq!(parse("figure3\n").unwrap().options.push, None, "default");
        assert!(parse("push = maybe\nfigure3\n").is_err());
    }

    #[test]
    fn steal_option_parses_and_rejects_garbage() {
        let m = parse("steal = on\nremote = 10.0.0.5:7171\nfigure3\n").expect("valid manifest");
        assert_eq!(m.options.steal, Some(true));
        assert_eq!(parse("figure3\n").unwrap().options.steal, None, "default");
        assert!(parse("steal = maybe\nfigure3\n").is_err());
    }

    #[test]
    fn policy_option_validates_ids_strictly() {
        for id in dri_core::PolicyConfig::all_ids() {
            let m = parse(&format!("policy = {id}\nfigure3\n")).expect("valid manifest");
            assert_eq!(m.options.policy.as_deref(), Some(id));
        }
        assert_eq!(parse("figure3\n").unwrap().options.policy, None, "default");
        let e =
            parse("quick = on\npolicy = drowsy\nfigure3\n").expect_err("drowsy is not a policy");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("drowsy"), "{e}");
        assert!(e.message.contains("way_memo"), "{e}");
    }

    #[test]
    fn benchmarks_option_validates_names_strictly() {
        let m = parse("benchmarks = compress, gcc ,li\nfigure3\n").expect("valid manifest");
        assert_eq!(
            m.options.benchmarks.as_deref(),
            Some("compress,gcc,li"),
            "trimmed, deduplicated, comma-joined"
        );
        let m = parse("benchmarks = swim, swim\nfigure3\n").expect("dup collapses");
        assert_eq!(m.options.benchmarks.as_deref(), Some("swim"));
        let e = parse("figure3\n").unwrap();
        assert_eq!(e.options.benchmarks, None);
        let e = parse("quick = on\nbenchmarks = compress, gzip\nfigure3\n")
            .expect_err("gzip is not in the suite");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("gzip"), "{e}");
        assert!(parse("benchmarks = ,\nfigure3\n").is_err(), "empty list");
    }

    #[test]
    fn prefetch_option_parses_and_rejects_garbage() {
        let m = parse("prefetch = off\nfigure3\n").expect("valid manifest");
        assert_eq!(m.options.prefetch, Some(false));
        assert_eq!(parse("figure3\n").unwrap().options.prefetch, None);
        assert!(parse("prefetch = sometimes\nfigure3\n").is_err());
    }

    #[test]
    fn rejects_options_after_jobs() {
        let e = parse("figure3\nquick = on\n").expect_err("late option");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn options_only_manifests_are_valid_with_no_jobs() {
        // A shared-environment config composes with CLI jobs: the suite
        // supplies the job list (or defaults to `all`).
        let m = parse("# env only\nquick = on\nstore = /tmp/s\n").expect("options-only manifest");
        assert!(m.jobs.is_empty());
        assert_eq!(m.options.quick, Some(true));
    }

    #[test]
    fn every_job_name_roundtrips() {
        for job in Job::all() {
            assert_eq!(Job::from_name(job.name()), Some(job), "{job}");
            assert!(!job.description().is_empty());
        }
        assert_eq!(Job::from_name("nope"), None);
    }
}
