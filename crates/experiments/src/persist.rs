//! The run-result schema over [`dri_store`]: stable keys for baseline and
//! DRI runs, and the binary codecs for their counter structs.
//!
//! A key absorbs **everything that can influence a run's counters** —
//! the same closure the in-memory `SimSession` keys capture, plus a
//! schema version: benchmark, seed override, CPU configuration, memory
//! hierarchy, i-cache geometry (baseline) or the full `DriConfig` (DRI),
//! and the instruction budget. `EnergyParams` is deliberately excluded:
//! energy is recomputed from the stored counters by
//! [`crate::runner::compare_with_baseline`], so the same stored run
//! serves every energy model.
//!
//! Bump [`SCHEMA_VERSION`] whenever *either* the key encoding *or* the
//! payload layout changes, and whenever a simulator change alters the
//! counters produced for an unchanged configuration — old entries then
//! become invisible (they live under a different `v<N>/` directory) and
//! are lazily replaced by recomputation. Nothing ever reads across
//! schema versions.
//!
//! Key derivation is a pure function of the configuration, so any two
//! processes — a campaign host, a prefetching worker, a `dri-serve`
//! client — agree on every record's address:
//!
//! ```
//! use dri_experiments::persist::{baseline_key, dri_key};
//! use dri_experiments::RunConfig;
//! use synth_workload::suite::Benchmark;
//!
//! let cfg = RunConfig::quick(Benchmark::Li);
//! // Deterministic, and the two record kinds never collide.
//! assert_eq!(baseline_key(&cfg), baseline_key(&cfg.clone()));
//! assert_ne!(baseline_key(&cfg), dri_key(&cfg));
//!
//! // Every counter-influencing field perturbs the DRI key …
//! let mut widened = cfg.clone();
//! widened.dri.miss_bound *= 2;
//! assert_ne!(dri_key(&cfg), dri_key(&widened));
//! // … while the baseline key sees only the baseline's inputs: a
//! // miss-bound change leaves the geometry (and so the baseline run)
//! // untouched, which is why a whole search grid shares one record.
//! assert_eq!(baseline_key(&cfg), baseline_key(&widened));
//! ```

use cache_sim::config::CacheConfig;
use cache_sim::hierarchy::HierarchyConfig;
use cache_sim::replacement::ReplacementPolicy;
use cache_sim::stats::CacheStats;
use dri_core::{DecayConfig, DriConfig, PolicyConfig, WayConfig, WayMemoConfig};
use dri_store::{Decoder, Encoder, KeyHasher};
use ooo_cpu::config::CpuConfig;
use ooo_cpu::stats::CpuStats;

use crate::runner::{ConventionalRun, DriRun, DriSummary, RunConfig};

/// Version of both the key encoding and the record payload layout.
pub const SCHEMA_VERSION: u32 = 1;

/// Record kind for conventional (baseline) runs.
pub const BASELINE_KIND: &str = "baseline";

/// Record kind for DRI runs.
pub const DRI_KIND: &str = "dri";

/// Record kind for cache-decay runs.
pub const DECAY_KIND: &str = "decay";

/// Record kind for way-resizing runs.
pub const WAY_RESIZE_KIND: &str = "way_resize";

/// Record kind for way-memoization runs.
pub const WAY_MEMO_KIND: &str = "way_memo";

/// Stable one-byte encoding of a replacement policy (never reorder).
fn replacement_code(policy: ReplacementPolicy) -> u8 {
    match policy {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::Fifo => 1,
        ReplacementPolicy::Random => 2,
    }
}

fn hash_cache_config(h: &mut KeyHasher, cfg: &CacheConfig) {
    h.write_u64(cfg.size_bytes);
    h.write_u64(cfg.block_bytes);
    h.write_u32(cfg.associativity);
    h.write_u64(cfg.latency);
    h.write_u8(replacement_code(cfg.replacement));
}

fn hash_cpu_config(h: &mut KeyHasher, cfg: &CpuConfig) {
    h.write_u32(cfg.fetch_width);
    h.write_u32(cfg.issue_width);
    h.write_u32(cfg.commit_width);
    h.write_u32(cfg.rob_entries);
    h.write_u32(cfg.lsq_entries);
    h.write_u32(cfg.fu.int_alu);
    h.write_u32(cfg.fu.int_mul);
    h.write_u32(cfg.fu.fp_alu);
    h.write_u32(cfg.fu.fp_mul);
    h.write_u32(cfg.fu.mem_ports);
    h.write_u64(cfg.frontend_latency);
    h.write_u64(cfg.mispredict_redirect);
}

fn hash_hierarchy_config(h: &mut KeyHasher, cfg: &HierarchyConfig) {
    hash_cache_config(h, &cfg.l1d);
    hash_cache_config(h, &cfg.l2);
    h.write_u64(cfg.memory.base_latency);
    h.write_u64(cfg.memory.per_8_bytes);
}

fn hash_dri_config(h: &mut KeyHasher, cfg: &DriConfig) {
    h.write_u64(cfg.max_size_bytes);
    h.write_u64(cfg.block_bytes);
    h.write_u32(cfg.associativity);
    h.write_u64(cfg.latency);
    h.write_u64(cfg.size_bound_bytes);
    h.write_u64(cfg.miss_bound);
    h.write_u64(cfg.sense_interval);
    h.write_u32(cfg.divisibility);
    h.write_u32(cfg.throttle.counter_bits);
    h.write_u32(cfg.throttle.lockout_intervals);
    h.write_bool(cfg.throttle.enabled);
    h.write_u8(replacement_code(cfg.replacement));
}

fn hash_decay_config(h: &mut KeyHasher, cfg: &DecayConfig) {
    h.write_u64(cfg.size_bytes);
    h.write_u64(cfg.block_bytes);
    h.write_u32(cfg.associativity);
    h.write_u64(cfg.latency);
    h.write_u64(cfg.decay_interval_cycles);
    h.write_u8(replacement_code(cfg.replacement));
}

fn hash_way_config(h: &mut KeyHasher, cfg: &WayConfig) {
    h.write_u64(cfg.size_bytes);
    h.write_u64(cfg.block_bytes);
    h.write_u32(cfg.associativity);
    h.write_u64(cfg.latency);
    h.write_u32(cfg.min_ways);
    h.write_u64(cfg.miss_bound);
    h.write_u64(cfg.sense_interval);
    h.write_u32(cfg.throttle.counter_bits);
    h.write_u32(cfg.throttle.lockout_intervals);
    h.write_bool(cfg.throttle.enabled);
    h.write_u8(replacement_code(cfg.replacement));
}

fn hash_way_memo_config(h: &mut KeyHasher, cfg: &WayMemoConfig) {
    h.write_u64(cfg.size_bytes);
    h.write_u64(cfg.block_bytes);
    h.write_u32(cfg.associativity);
    h.write_u64(cfg.latency);
    h.write_u64(cfg.gate_interval_cycles);
    h.write_u8(replacement_code(cfg.replacement));
}

/// The key fields shared by both run kinds: workload identity, core, and
/// hierarchy (the benchmark travels as its stable name, not its enum
/// discriminant, so reordering the enum cannot silently remap entries).
fn hash_common(h: &mut KeyHasher, cfg: &RunConfig) {
    h.write_u32(SCHEMA_VERSION);
    h.write_str(cfg.benchmark.name());
    h.write_opt_u64(cfg.seed_override);
    hash_cpu_config(h, &cfg.cpu);
    hash_hierarchy_config(h, &cfg.hierarchy);
    h.write_opt_u64(cfg.instruction_budget);
}

/// Store key for `cfg`'s conventional (baseline) run.
pub fn baseline_key(cfg: &RunConfig) -> u128 {
    let mut h = KeyHasher::new();
    h.write_str(BASELINE_KIND);
    hash_common(&mut h, cfg);
    hash_cache_config(&mut h, &cfg.baseline_icache());
    h.finish()
}

/// Store key for `cfg`'s DRI run. Equal to [`policy_key`] whenever the
/// resolved policy is DRI (in particular whenever `cfg.policy` is
/// `None`) — the `"dri"` derivation is frozen; the policy layer routes
/// through it rather than replacing it.
pub fn dri_key(cfg: &RunConfig) -> u128 {
    let mut h = KeyHasher::new();
    h.write_str(DRI_KIND);
    hash_common(&mut h, cfg);
    hash_dri_config(&mut h, &cfg.dri);
    h.finish()
}

/// Record kind of `cfg`'s resolved leakage-policy run. The kind strings
/// equal [`PolicyConfig::id`] (and the models'
/// `cache_sim::policy::LeakagePolicy::policy_id`) by construction; a
/// unit test pins the correspondence.
pub fn policy_kind(cfg: &RunConfig) -> &'static str {
    match cfg.resolved_policy() {
        PolicyConfig::Dri(_) => DRI_KIND,
        PolicyConfig::Decay(_) => DECAY_KIND,
        PolicyConfig::WayResize(_) => WAY_RESIZE_KIND,
        PolicyConfig::WayMemo(_) => WAY_MEMO_KIND,
    }
}

/// Store key for `cfg`'s resolved leakage-policy run: the kind string,
/// the common closure, then the selected policy's own configuration.
/// The DRI arm hashes byte-for-byte what [`dri_key`] hashes, so every
/// record written before policies existed keeps its address.
pub fn policy_key(cfg: &RunConfig) -> u128 {
    let mut h = KeyHasher::new();
    match cfg.resolved_policy() {
        PolicyConfig::Dri(dri) => {
            h.write_str(DRI_KIND);
            hash_common(&mut h, cfg);
            hash_dri_config(&mut h, &dri);
        }
        PolicyConfig::Decay(decay) => {
            h.write_str(DECAY_KIND);
            hash_common(&mut h, cfg);
            hash_decay_config(&mut h, &decay);
        }
        PolicyConfig::WayResize(way) => {
            h.write_str(WAY_RESIZE_KIND);
            hash_common(&mut h, cfg);
            hash_way_config(&mut h, &way);
        }
        PolicyConfig::WayMemo(memo) => {
            h.write_str(WAY_MEMO_KIND);
            hash_common(&mut h, cfg);
            hash_way_memo_config(&mut h, &memo);
        }
    }
    h.finish()
}

fn put_cpu_stats(e: &mut Encoder, s: &CpuStats) {
    e.put_u64(s.cycles);
    e.put_u64(s.instructions);
    e.put_u64(s.fetch_groups);
    e.put_u64(s.icache_stall_cycles);
    e.put_u64(s.branches);
    e.put_u64(s.mispredict_redirects);
    e.put_u64(s.loads);
    e.put_u64(s.stores);
}

fn take_cpu_stats(d: &mut Decoder) -> Option<CpuStats> {
    Some(CpuStats {
        cycles: d.take_u64()?,
        instructions: d.take_u64()?,
        fetch_groups: d.take_u64()?,
        icache_stall_cycles: d.take_u64()?,
        branches: d.take_u64()?,
        mispredict_redirects: d.take_u64()?,
        loads: d.take_u64()?,
        stores: d.take_u64()?,
    })
}

fn put_cache_stats(e: &mut Encoder, s: &CacheStats) {
    e.put_u64(s.accesses);
    e.put_u64(s.hits);
    e.put_u64(s.misses);
    e.put_u64(s.reads);
    e.put_u64(s.writes);
    e.put_u64(s.evictions);
    e.put_u64(s.writebacks);
    e.put_u64(s.invalidations);
}

fn take_cache_stats(d: &mut Decoder) -> Option<CacheStats> {
    Some(CacheStats {
        accesses: d.take_u64()?,
        hits: d.take_u64()?,
        misses: d.take_u64()?,
        reads: d.take_u64()?,
        writes: d.take_u64()?,
        evictions: d.take_u64()?,
        writebacks: d.take_u64()?,
        invalidations: d.take_u64()?,
    })
}

/// Serializes a baseline run (floats as raw bits: decoded runs are
/// bit-identical to what was stored).
pub fn encode_conventional(run: &ConventionalRun) -> Vec<u8> {
    let mut e = Encoder::new();
    put_cpu_stats(&mut e, &run.timing);
    put_cache_stats(&mut e, &run.icache);
    e.put_u64(run.l2_inst_accesses);
    e.put_f64(run.bpred_accuracy);
    e.into_bytes()
}

/// Deserializes a baseline run; `None` on any structural mismatch
/// (including trailing bytes, which indicate a foreign payload).
pub fn decode_conventional(bytes: &[u8]) -> Option<ConventionalRun> {
    let mut d = Decoder::new(bytes);
    let run = ConventionalRun {
        timing: take_cpu_stats(&mut d)?,
        icache: take_cache_stats(&mut d)?,
        l2_inst_accesses: d.take_u64()?,
        bpred_accuracy: d.take_f64()?,
    };
    (d.remaining() == 0).then_some(run)
}

/// Serializes a DRI run.
pub fn encode_dri(run: &DriRun) -> Vec<u8> {
    let mut e = Encoder::new();
    put_cpu_stats(&mut e, &run.timing);
    put_cache_stats(&mut e, &run.icache);
    e.put_f64(run.dri.avg_active_fraction);
    e.put_f64(run.dri.avg_size_bytes);
    e.put_u64(run.dri.final_size_bytes);
    e.put_u64(run.dri.resizes as u64);
    e.put_u64(run.dri.intervals);
    e.put_u32(run.dri.resizing_bits);
    e.put_u64(run.l2_inst_accesses);
    e.put_f64(run.bpred_accuracy);
    e.into_bytes()
}

/// Deserializes a DRI run (see [`decode_conventional`]).
pub fn decode_dri(bytes: &[u8]) -> Option<DriRun> {
    let mut d = Decoder::new(bytes);
    let run = DriRun {
        timing: take_cpu_stats(&mut d)?,
        icache: take_cache_stats(&mut d)?,
        dri: DriSummary {
            avg_active_fraction: d.take_f64()?,
            avg_size_bytes: d.take_f64()?,
            final_size_bytes: d.take_u64()?,
            resizes: usize::try_from(d.take_u64()?).ok()?,
            intervals: d.take_u64()?,
            resizing_bits: d.take_u32()?,
        },
        l2_inst_accesses: d.take_u64()?,
        bpred_accuracy: d.take_f64()?,
    };
    (d.remaining() == 0).then_some(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_workload::suite::Benchmark;

    #[test]
    fn keys_are_deterministic_and_distinguish_kinds() {
        let cfg = RunConfig::quick(Benchmark::Li);
        assert_eq!(baseline_key(&cfg), baseline_key(&cfg.clone()));
        assert_eq!(dri_key(&cfg), dri_key(&cfg.clone()));
        assert_ne!(baseline_key(&cfg), dri_key(&cfg));
    }

    #[test]
    fn every_key_field_perturbs_the_hash() {
        let base = RunConfig::quick(Benchmark::Li);
        let mut variants: Vec<RunConfig> = Vec::new();
        let mut v = base.clone();
        v.benchmark = Benchmark::Gcc;
        variants.push(v);
        let mut v = base.clone();
        v.seed_override = Some(3);
        variants.push(v);
        let mut v = base.clone();
        v.cpu.rob_entries *= 2;
        variants.push(v);
        let mut v = base.clone();
        v.hierarchy.l2.latency += 1;
        variants.push(v);
        let mut v = base.clone();
        v.instruction_budget = None;
        variants.push(v);
        let mut v = base.clone();
        v.dri.sense_interval *= 2;
        variants.push(v);
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(dri_key(&base), dri_key(variant), "variant {i}");
        }
        // The baseline key ignores DRI parameters that leave the
        // geometry untouched (miss-bound), but sees geometry changes.
        let mut mb = base.clone();
        mb.dri.miss_bound *= 2;
        assert_eq!(baseline_key(&base), baseline_key(&mb));
        assert_ne!(dri_key(&base), dri_key(&mb));
        let mut assoc = base.clone();
        assoc.dri.associativity = 4;
        assert_ne!(baseline_key(&base), baseline_key(&assoc));
    }

    #[test]
    fn policy_kinds_match_policy_config_ids() {
        let mut cfg = RunConfig::quick(Benchmark::Li);
        assert_eq!(policy_kind(&cfg), DRI_KIND, "policy: None resolves to DRI");
        for id in PolicyConfig::all_ids() {
            cfg.policy = Some(PolicyConfig::from_id(id, &cfg.dri).expect("known id"));
            assert_eq!(policy_kind(&cfg), id);
        }
    }

    #[test]
    fn policy_keys_are_disjoint_across_kinds() {
        let base = RunConfig::quick(Benchmark::Li);
        let mut keys = vec![baseline_key(&base)];
        for id in PolicyConfig::all_ids() {
            let mut cfg = base.clone();
            cfg.policy = Some(PolicyConfig::from_id(id, &cfg.dri).expect("known id"));
            keys.push(policy_key(&cfg));
        }
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "two record kinds collided on one config");
            }
        }
        // And deterministic: recomputation reproduces each key.
        for id in PolicyConfig::all_ids() {
            let mut cfg = base.clone();
            cfg.policy = Some(PolicyConfig::from_id(id, &cfg.dri).expect("known id"));
            assert_eq!(policy_key(&cfg), policy_key(&cfg.clone()));
        }
    }

    #[test]
    fn dri_policy_key_is_the_frozen_dri_key() {
        // The refactor must not move any existing record: with the
        // default (or an explicit) DRI policy, the generic derivation
        // lands on the same 128-bit address the pre-policy code used.
        let mut cfg = RunConfig::quick(Benchmark::Compress);
        assert_eq!(policy_key(&cfg), dri_key(&cfg));
        cfg.policy = Some(PolicyConfig::Dri(cfg.dri));
        assert_eq!(policy_key(&cfg), dri_key(&cfg));
    }

    #[test]
    fn energy_params_do_not_key_the_store() {
        use energy_model::params::EnergyParams;
        let base = RunConfig::quick(Benchmark::Li);
        let mut derived = base.clone();
        derived.energy = EnergyParams::hpca01_derived();
        assert_eq!(baseline_key(&base), baseline_key(&derived));
        assert_eq!(dri_key(&base), dri_key(&derived));
    }

    #[test]
    fn codecs_roundtrip_bit_identically() {
        let conv = ConventionalRun {
            timing: CpuStats {
                cycles: 123_456,
                instructions: 654_321,
                fetch_groups: 99,
                icache_stall_cycles: 7,
                branches: 11,
                mispredict_redirects: 3,
                loads: 42,
                stores: 21,
            },
            icache: CacheStats {
                accesses: 1,
                hits: 2,
                misses: 3,
                reads: 4,
                writes: 5,
                evictions: 6,
                writebacks: 7,
                invalidations: 8,
            },
            l2_inst_accesses: 909,
            bpred_accuracy: 0.987_654_321,
        };
        let decoded = decode_conventional(&encode_conventional(&conv)).expect("roundtrip");
        assert_eq!(decoded.timing, conv.timing);
        assert_eq!(decoded.icache, conv.icache);
        assert_eq!(decoded.l2_inst_accesses, conv.l2_inst_accesses);
        assert_eq!(
            decoded.bpred_accuracy.to_bits(),
            conv.bpred_accuracy.to_bits()
        );

        let dri = DriRun {
            timing: conv.timing,
            icache: conv.icache,
            dri: DriSummary {
                avg_active_fraction: 0.25,
                avg_size_bytes: 16_384.5,
                final_size_bytes: 8192,
                resizes: 17,
                intervals: 40,
                resizing_bits: 6,
            },
            l2_inst_accesses: 31,
            bpred_accuracy: 0.91,
        };
        let decoded = decode_dri(&encode_dri(&dri)).expect("roundtrip");
        assert_eq!(decoded.dri.resizes, 17);
        assert_eq!(
            decoded.dri.avg_size_bytes.to_bits(),
            dri.dri.avg_size_bytes.to_bits()
        );
        assert_eq!(decoded.timing, dri.timing);
    }

    #[test]
    fn decoders_reject_truncation_and_surplus() {
        let conv = ConventionalRun {
            timing: CpuStats::default(),
            icache: CacheStats::default(),
            l2_inst_accesses: 0,
            bpred_accuracy: 0.5,
        };
        let bytes = encode_conventional(&conv);
        assert!(decode_conventional(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_conventional(&padded).is_none());
        // A conventional payload is not a DRI payload.
        assert!(decode_dri(&bytes).is_none());
    }
}
