//! Parameter and geometry sweeps: Figures 4–6 and §5.6.
//!
//! Every sweep shares one baseline run per geometry (memoized in the
//! global [`crate::session::SimSession`]) and spreads its DRI points
//! across [`crate::harness::threads`] workers via
//! [`crate::harness::parallel_map`]. Points are reassembled in sweep
//! order, so outputs are identical to a serial sweep.

use crate::harness::parallel_map;
use crate::runner::{compare_with_baseline, run_conventional, run_dri, Comparison, RunConfig};
use dri_core::DriConfig;

/// Runs one DRI-vs-baseline comparison for a fully specified config.
fn one(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional(cfg);
    let dri = run_dri(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

/// Runs the DRI side of every config in parallel and compares each
/// against `base`'s (shared, memoized) baseline run. The whole point
/// grid is batch-prefetched through the session tiers first (every
/// `cfg` shares `base`'s geometry, so the shared baseline record rides
/// along in the same plan), and — with push mode on — whatever the
/// sweep had to simulate is pushed upward after the fan-out.
fn compare_points(base: &RunConfig, cfgs: &[RunConfig]) -> Vec<Comparison> {
    crate::session::prefetch_grid(cfgs);
    let baseline = run_conventional(base);
    let runs = parallel_map(cfgs, run_dri);
    crate::session::push_grid();
    cfgs.iter()
        .zip(&runs)
        .map(|(cfg, dri)| compare_with_baseline(cfg, &baseline, dri))
        .collect()
}

/// Figure 4: the miss-bound varied to 0.5×, 1×, and 2× of the base
/// (performance-constrained) value, size-bound held.
#[derive(Debug, Clone, Copy)]
pub struct MissBoundSweep {
    /// 0.5× the base miss-bound.
    pub half: Comparison,
    /// The base setting.
    pub base: Comparison,
    /// 2× the base miss-bound.
    pub double: Comparison,
}

/// The Figure 4 sweep's point grid around `base`, in sweep order
/// (half, base, double). Enumerating the grid without running it is
/// what lets a campaign batch-prefetch every sweep point up front (see
/// [`crate::figures`]); [`miss_bound_sweep`] runs exactly these configs.
pub fn miss_bound_grid(base: &RunConfig) -> Vec<RunConfig> {
    [
        base.dri.miss_bound / 2,
        base.dri.miss_bound,
        base.dri.miss_bound * 2,
    ]
    .into_iter()
    .map(|mb| {
        let mut cfg = base.clone();
        cfg.dri.miss_bound = mb.max(1);
        cfg
    })
    .collect()
}

/// Runs the Figure 4 sweep around `base` (whose `dri.miss_bound` is the
/// benchmark's constrained-best value). The baseline run is shared and the
/// three points run in parallel.
pub fn miss_bound_sweep(base: &RunConfig) -> MissBoundSweep {
    let cfgs = miss_bound_grid(base);
    let mut points = compare_points(base, &cfgs);
    let double = points.pop().expect("three points");
    let base_point = points.pop().expect("three points");
    let half = points.pop().expect("three points");
    MissBoundSweep {
        half,
        base: base_point,
        double,
    }
}

/// Figure 5: the size-bound varied to 2×, 1×, and 0.5× of the base value
/// (the paper's ordering), miss-bound held. `double` is `None` when the
/// base bound is already the full cache (fpppp's "NOT APPLICABLE" column).
#[derive(Debug, Clone, Copy)]
pub struct SizeBoundSweep {
    /// 2× the base size-bound (None when it would exceed the cache).
    pub double: Option<Comparison>,
    /// The base setting.
    pub base: Comparison,
    /// 0.5× the base size-bound (None when it would drop below one row).
    pub half: Option<Comparison>,
}

/// The Figure 5 sweep's point grid around `base`: the base bound first,
/// then the applicable 2× and 0.5× points (the inapplicable ends are
/// simply absent, mirroring the paper's "NOT APPLICABLE" cells).
/// [`size_bound_sweep`] runs exactly these configs.
pub fn size_bound_grid(base: &RunConfig) -> Vec<RunConfig> {
    let row_bytes = base.dri.block_bytes * u64::from(base.dri.associativity);
    let mut bounds = vec![base.dri.size_bound_bytes];
    if base.dri.size_bound_bytes * 2 <= base.dri.max_size_bytes {
        bounds.push(base.dri.size_bound_bytes * 2);
    }
    if base.dri.size_bound_bytes / 2 >= row_bytes {
        bounds.push(base.dri.size_bound_bytes / 2);
    }
    bounds
        .into_iter()
        .map(|sb| {
            let mut cfg = base.clone();
            cfg.dri.size_bound_bytes = sb;
            cfg
        })
        .collect()
}

/// Runs the Figure 5 sweep around `base`: applicable points in parallel
/// against the shared baseline.
pub fn size_bound_sweep(base: &RunConfig) -> SizeBoundSweep {
    let has_double = base.dri.size_bound_bytes * 2 <= base.dri.max_size_bytes;
    let has_half =
        base.dri.size_bound_bytes / 2 >= base.dri.block_bytes * u64::from(base.dri.associativity);
    let cfgs = size_bound_grid(base);
    let mut points = compare_points(base, &cfgs).into_iter();
    let base_point = points.next().expect("base point");
    let double = has_double.then(|| points.next().expect("double point"));
    let half = has_half.then(|| points.next().expect("half point"));
    SizeBoundSweep {
        double,
        base: base_point,
        half,
    }
}

/// Figure 6: conventional cache parameters varied — 64K 4-way, 64K
/// direct-mapped, and 128K direct-mapped — each compared against a
/// conventional i-cache of *equivalent* geometry, all using the base 64K
/// direct-mapped miss-/size-bounds (paper §5.5).
#[derive(Debug, Clone, Copy)]
pub struct GeometrySweep {
    /// 64K four-way associative.
    pub assoc_4way: Comparison,
    /// 64K direct-mapped (the base design point).
    pub dm_64k: Comparison,
    /// 128K direct-mapped (one extra resizing tag bit).
    pub dm_128k: Comparison,
}

/// The Figure 6 sweep's point grid around `base`, in sweep order (64K
/// 4-way, 64K DM, 128K DM), each point carrying the base miss-/size-
/// bounds capped to its geometry. [`geometry_sweep`] runs exactly these
/// configs.
pub fn geometry_grid(base: &RunConfig) -> Vec<RunConfig> {
    [
        DriConfig::hpca01_64k_4way(),
        DriConfig::hpca01_64k_dm(),
        DriConfig::hpca01_128k_dm(),
    ]
    .into_iter()
    .map(|dri| {
        let mut cfg = base.clone();
        cfg.dri = DriConfig {
            miss_bound: base.dri.miss_bound,
            size_bound_bytes: base.dri.size_bound_bytes.min(dri.max_size_bytes),
            sense_interval: base.dri.sense_interval,
            divisibility: base.dri.divisibility,
            throttle: base.dri.throttle,
            ..dri
        };
        cfg
    })
    .collect()
}

/// Runs the Figure 6 sweep. `base` carries the benchmark's constrained
/// 64K-DM parameters. Each geometry pairs with a baseline of its own
/// geometry, so the three full comparisons run in parallel.
pub fn geometry_sweep(base: &RunConfig) -> GeometrySweep {
    let cfgs = geometry_grid(base);
    crate::session::prefetch_grid(&cfgs);
    let mut points = parallel_map(&cfgs, one).into_iter();
    crate::session::push_grid();
    GeometrySweep {
        assoc_4way: points.next().expect("three geometries"),
        dm_64k: points.next().expect("three geometries"),
        dm_128k: points.next().expect("three geometries"),
    }
}

/// The §5.6 sense-interval grid around `base`, one config per swept
/// length; [`interval_sweep`] runs exactly these configs.
pub fn interval_grid(base: &RunConfig, intervals: &[u64]) -> Vec<RunConfig> {
    intervals
        .iter()
        .map(|&si| {
            let mut cfg = base.clone();
            cfg.dri.sense_interval = si;
            cfg
        })
        .collect()
}

/// §5.6: sense-interval robustness. Returns `(interval, comparison)` per
/// swept length, all points in parallel against the shared baseline.
pub fn interval_sweep(base: &RunConfig, intervals: &[u64]) -> Vec<(u64, Comparison)> {
    let cfgs = interval_grid(base, intervals);
    intervals
        .iter()
        .copied()
        .zip(compare_points(base, &cfgs))
        .collect()
}

/// The §5.6 divisibility grid around `base`, one config per factor;
/// [`divisibility_sweep`] runs exactly these configs.
pub fn divisibility_grid(base: &RunConfig, divs: &[u32]) -> Vec<RunConfig> {
    divs.iter()
        .map(|&d| {
            let mut cfg = base.clone();
            cfg.dri.divisibility = d;
            cfg
        })
        .collect()
}

/// §5.6: divisibility. Returns `(divisibility, comparison)` per factor,
/// all points in parallel against the shared baseline.
pub fn divisibility_sweep(base: &RunConfig, divs: &[u32]) -> Vec<(u32, Comparison)> {
    let cfgs = divisibility_grid(base, divs);
    divs.iter()
        .copied()
        .zip(compare_points(base, &cfgs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth_workload::suite::Benchmark;

    fn quick_base() -> RunConfig {
        let mut cfg = RunConfig::quick(Benchmark::Compress);
        cfg.instruction_budget = Some(250_000);
        cfg.dri.size_bound_bytes = 4 * 1024;
        cfg.dri.miss_bound = 100;
        cfg
    }

    #[test]
    fn miss_bound_sweep_produces_three_points() {
        let s = miss_bound_sweep(&quick_base());
        assert_eq!(s.half.miss_bound, 50);
        assert_eq!(s.base.miss_bound, 100);
        assert_eq!(s.double.miss_bound, 200);
    }

    #[test]
    fn size_bound_sweep_handles_full_cache_bound() {
        let mut cfg = quick_base();
        cfg.dri.size_bound_bytes = cfg.dri.max_size_bytes;
        let s = size_bound_sweep(&cfg);
        assert!(s.double.is_none(), "fpppp-style: no 2x column");
        assert!(s.half.is_some());
    }

    #[test]
    fn geometry_sweep_covers_three_designs() {
        let s = geometry_sweep(&quick_base());
        assert_eq!(s.dm_64k.size_bound_bytes, 4 * 1024);
        // The 128K cache keeps the same absolute size-bound (one more
        // resizing bit), per §5.5.
        assert_eq!(s.dm_128k.size_bound_bytes, 4 * 1024);
        assert!(s.assoc_4way.relative_energy_delay.is_finite());
    }

    #[test]
    fn interval_sweep_is_robust_for_class1() {
        // Paper: energy-delay varies by <1% (go <5%) across 250K..4M.
        // Our quick check uses a narrower claim: same order of magnitude.
        let base = quick_base();
        let rows = interval_sweep(&base, &[10_000, 20_000, 40_000]);
        let eds: Vec<f64> = rows.iter().map(|(_, c)| c.relative_energy_delay).collect();
        let spread = (eds.iter().cloned().fold(f64::MIN, f64::max)
            - eds.iter().cloned().fold(f64::MAX, f64::min))
        .abs();
        assert!(spread < 0.3, "interval spread {spread} too wide: {eds:?}");
    }

    #[test]
    fn grids_enumerate_exactly_what_the_sweeps_run() {
        // The campaign-level prefetch plans these grids *instead of*
        // running the sweeps, so each must mirror its sweep's points.
        let base = quick_base();
        let mb = miss_bound_grid(&base);
        assert_eq!(
            mb.iter().map(|c| c.dri.miss_bound).collect::<Vec<_>>(),
            vec![50, 100, 200]
        );
        let sb = size_bound_grid(&base);
        assert_eq!(
            sb.iter()
                .map(|c| c.dri.size_bound_bytes)
                .collect::<Vec<_>>(),
            vec![4 * 1024, 8 * 1024, 2 * 1024]
        );
        let mut full = quick_base();
        full.dri.size_bound_bytes = full.dri.max_size_bytes;
        assert_eq!(size_bound_grid(&full).len(), 2, "no 2x point at the cap");
        let geo = geometry_grid(&base);
        assert_eq!(geo.len(), 3);
        assert_eq!(geo[0].dri.associativity, 4);
        assert_eq!(geo[2].dri.max_size_bytes, 128 * 1024);
        assert!(geo.iter().all(|c| c.dri.miss_bound == 100));
        assert_eq!(interval_grid(&base, &[10_000, 20_000]).len(), 2);
        assert_eq!(
            divisibility_grid(&base, &[2, 4, 8])
                .iter()
                .map(|c| c.dri.divisibility)
                .collect::<Vec<_>>(),
            vec![2, 4, 8]
        );
    }

    #[test]
    fn divisibility_sweep_runs() {
        let rows = divisibility_sweep(&quick_base(), &[2, 4, 8]);
        assert_eq!(rows.len(), 3);
        for (d, c) in rows {
            assert!(c.relative_energy_delay.is_finite(), "div {d}");
        }
    }
}
