//! The figure/table suites as library functions.
//!
//! Each published artifact of the paper used to live only inside its
//! binary's `main`; hoisting the bodies here lets the `suite` batch
//! runner execute any subset of them **in one process**, where they share
//! the global [`crate::session::SimSession`] (and, when `DRI_STORE` is
//! set, the on-disk result store): the Figure 4–6 sweeps reuse the
//! parameter-search points Figure 3 already simulated instead of paying
//! for them again. The per-artifact binaries (`figure3`, `table2`, …)
//! are now one-line wrappers over these functions, so `cargo run --bin
//! figure4` output is byte-identical to the `figure4` job of a suite run.
//!
//! Every search and sweep grid below batch-prefetches its key plan
//! through the session's cache tiers before fanning out (see
//! [`crate::session::SimSession::prefetch`]): on a worker with
//! `DRI_REMOTE` set, Figure 3's entire cross-benchmark grid arrives in
//! one `POST /batch` round-trip, and Figures 4–6/§5.6 plan each sweep's
//! points the same way.

use crate::harness::{
    banner, base_config, for_each_benchmark, selected_benchmarks, space, threads,
};
use crate::published;
use crate::report::{kbytes, pct, Table};
use crate::search::{grid_configs, search_all, search_benchmark};
use crate::sweeps::{
    divisibility_grid, divisibility_sweep, geometry_grid, geometry_sweep, interval_grid,
    interval_sweep, miss_bound_grid, miss_bound_sweep, size_bound_grid, size_bound_sweep,
    GeometrySweep, MissBoundSweep, SizeBoundSweep,
};
use crate::Comparison;
use dri_core::{DriConfig, PolicyConfig};
use synth_workload::suite::Benchmark;

fn sweep_cell(c: &Comparison) -> String {
    let mark = if c.slowdown > 0.04 { "!" } else { "" };
    format!("{:.2} ({}{mark})", c.relative_energy_delay, pct(c.slowdown))
}

/// Tunes `base` to the benchmark's performance-constrained best
/// (miss-bound, size-bound) — the starting point of every Figure 4–6
/// sweep.
fn constrained_base(b: Benchmark) -> crate::RunConfig {
    let base = base_config(b);
    let sr = search_benchmark(&base, &space());
    let mut tuned = base.clone();
    tuned.dri.miss_bound = sr.constrained.miss_bound;
    tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
    tuned
}

/// Batch-prefetches everything a Figure 4–6/§5.6 sweep campaign will
/// touch, before the per-benchmark fan-out starts. Until this hook
/// existed, only figure3's `search_all` planned its whole campaign in
/// one pass — the sweep figures prefetched per benchmark, costing a
/// cold worker one batch round-trip per benchmark instead of one per
/// campaign (and a `--steal` worker one per claimed unit per sweep).
///
/// Two phases, because the sweep points are only known once the search
/// is resolved:
///
/// 1. the search grids that determine every selected benchmark's
///    constrained base are planned as **one** cross-benchmark pass (the
///    same records figure3's `search_all` plans, so an in-process or
///    fleet-warm campaign resolves them from memory or one round-trip);
/// 2. the tuned bases are computed (pure replay after phase 1 when the
///    store is warm) and every sweep point around them — enumerated by
///    `points`, e.g. [`miss_bound_grid`] — is planned as one more pass.
///
/// A no-op when prefetch is disabled (`DRI_PREFETCH=0`): the per-point
/// lookups inside the sweeps then behave exactly as before.
fn prefetch_sweep_campaign(points: impl Fn(&crate::RunConfig) -> Vec<crate::RunConfig> + Sync) {
    if !crate::session::prefetch_enabled() {
        return;
    }
    let benchmarks = selected_benchmarks();
    let search_grid: Vec<crate::RunConfig> = benchmarks
        .iter()
        .flat_map(|&b| grid_configs(&base_config(b), &space()))
        .collect();
    crate::session::prefetch_grid(&search_grid);
    let bases = crate::harness::parallel_map(&benchmarks, |&b| constrained_base(b));
    let sweep_grid: Vec<crate::RunConfig> = bases.iter().flat_map(&points).collect();
    crate::session::prefetch_grid(&sweep_grid);
}

/// Figure 3: base energy-delay and average cache size, performance-
/// constrained (≤4% slowdown) and performance-unconstrained, for all
/// fifteen benchmarks.
pub fn figure3() {
    banner(
        "Figure 3: base energy-delay and average cache size measurements",
        "Figure 3 and section 5.3",
    );
    eprintln!(
        "searching miss-bound x size-bound per benchmark on {} threads...",
        threads()
    );
    let results = search_all(base_config, &space(), threads());
    let paper = published::figure3();

    let case_cells = |c: &Comparison| -> [String; 6] {
        [
            format!("{:.2}", c.relative_energy_delay),
            format!("{:.2}+{:.2}", c.leakage_component, c.dynamic_component),
            pct(c.avg_size_fraction),
            if c.slowdown > 0.04 {
                format!("{}!", pct(c.slowdown))
            } else {
                pct(c.slowdown)
            },
            format!("{:.2}%", c.dri_miss_rate * 100.0),
            format!("mb={} sb={}", c.miss_bound, kbytes(c.size_bound_bytes)),
        ]
    };

    let mut t = Table::new([
        "benchmark",
        "C:rel-ED",
        "C:leak+dyn",
        "C:avg-size",
        "C:slowdown",
        "C:missrate",
        "C:params",
        "U:rel-ED",
        "U:slowdown",
        "paper C:ED",
        "paper C:size",
    ]);
    let mut sum_c = 0.0;
    let mut sum_u = 0.0;
    let mut sum_size = 0.0;
    for r in &results {
        // Looked up by name rather than zipped: a `DRI_BENCHMARKS`-split
        // worker runs a subset of the campaign, and each row must still
        // sit next to its own published numbers.
        let p = paper
            .iter()
            .find(|p| p.benchmark == r.benchmark)
            .expect("every benchmark has published figure-3 numbers");
        let c = case_cells(&r.constrained);
        let mut cells: Vec<String> = vec![r.benchmark.name().to_owned()];
        cells.extend(c);
        cells.push(format!("{:.2}", r.unconstrained.relative_energy_delay));
        cells.push(pct(r.unconstrained.slowdown));
        cells.push(format!("{:.2}", p.relative_energy_delay));
        cells.push(pct(p.avg_size_fraction));
        t.row(cells);
        sum_c += r.constrained.relative_energy_delay;
        sum_u += r.unconstrained.relative_energy_delay;
        sum_size += r.constrained.avg_size_fraction;
    }
    print!("{}", t.render());
    let n = results.len() as f64;
    // A fleet-split worker (`DRI_BENCHMARKS`) covers a subset: its means
    // are labelled as partial so they are never read against the
    // paper's full-suite headlines.
    let partial = if results.len() == paper.len() {
        String::new()
    } else {
        format!(" [over {} of {} benchmarks]", results.len(), paper.len())
    };
    println!();
    println!(
        "mean constrained energy-delay reduction: {}{partial} (paper headline: {})",
        pct(1.0 - sum_c / n),
        pct(published::HEADLINE_CONSTRAINED_REDUCTION)
    );
    println!(
        "mean unconstrained energy-delay reduction: {}{partial} (paper headline: {})",
        pct(1.0 - sum_u / n),
        pct(published::HEADLINE_UNCONSTRAINED_REDUCTION)
    );
    println!(
        "mean constrained cache-size reduction: {}{partial} (paper: ~62%)",
        pct(1.0 - sum_size / n)
    );
    println!();
    println!("legend: C = performance-constrained (slowdown <= 4%), U = unconstrained;");
    println!("        leak+dyn are the stacked components of the relative energy-delay;");
    println!("        '!' marks slowdown above the 4% constraint.");
}

/// Figure 4: impact of varying the miss-bound (0.5x, 1x, 2x of each
/// benchmark's performance-constrained base value).
pub fn figure4() {
    banner("Figure 4: impact of varying the miss-bound", "Figure 4");
    prefetch_sweep_campaign(miss_bound_grid);
    let rows: Vec<(Benchmark, MissBoundSweep)> =
        for_each_benchmark(|b| miss_bound_sweep(&constrained_base(b)));

    let mut t = Table::new([
        "benchmark",
        "0.5x miss-bound",
        "base miss-bound",
        "2x miss-bound",
        "base mb",
    ]);
    for (b, s) in &rows {
        t.row([
            b.name().to_owned(),
            sweep_cell(&s.half),
            sweep_cell(&s.base),
            sweep_cell(&s.double),
            s.base.miss_bound.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("cells are relative energy-delay (slowdown); '!' = above the 4% constraint.");
    println!(
        "paper: \"despite varying the miss-bound over a factor of four range, most \
         of the energy-delay products do not change significantly\" — exceptions \
         gcc, go, perl, tomcatv (5-8% slowdown at 2x)."
    );
}

/// Figure 5: impact of varying the size-bound (2x, 1x, 0.5x of each
/// benchmark's performance-constrained base value).
pub fn figure5() {
    banner("Figure 5: impact of varying the size-bound", "Figure 5");
    let opt_cell = |c: &Option<Comparison>| c.as_ref().map_or("N/A".to_owned(), sweep_cell);
    prefetch_sweep_campaign(size_bound_grid);
    let rows: Vec<(Benchmark, SizeBoundSweep)> =
        for_each_benchmark(|b| size_bound_sweep(&constrained_base(b)));

    let mut t = Table::new([
        "benchmark",
        "2x size-bound",
        "base size-bound",
        "0.5x size-bound",
        "base sb",
    ]);
    for (b, s) in &rows {
        t.row([
            b.name().to_owned(),
            opt_cell(&s.double),
            sweep_cell(&s.base),
            opt_cell(&s.half),
            kbytes(s.base.size_bound_bytes),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("cells are relative energy-delay (slowdown); '!' = above the 4% constraint;");
    println!("N/A mirrors the paper's 'NOT APPLICABLE' column (bound at the cache size).");
    println!(
        "paper: a smaller size-bound shrinks the cache further, but class-1 \
         benchmarks thrash below their working set and class-3 benchmarks pay \
         extra dynamic energy — the energy-delay can worsen in both directions."
    );
}

/// Figure 6: varying conventional cache parameters — 64K 4-way vs 64K
/// direct-mapped vs 128K direct-mapped (each normalized to a conventional
/// cache of equivalent geometry).
pub fn figure6() {
    banner(
        "Figure 6: varying conventional cache parameters (A: 64K 4-way, B: 64K DM, C: 128K DM)",
        "Figure 6 and section 5.5",
    );
    prefetch_sweep_campaign(geometry_grid);
    let rows: Vec<(Benchmark, GeometrySweep)> =
        for_each_benchmark(|b| geometry_sweep(&constrained_base(b)));

    let mut t = Table::new([
        "benchmark",
        "A: 64K 4-way",
        "B: 64K DM",
        "C: 128K DM",
        "A avg-size",
        "B avg-size",
        "C avg-size",
    ]);
    let mut sums = [0.0f64; 3];
    for (b, s) in &rows {
        t.row([
            b.name().to_owned(),
            sweep_cell(&s.assoc_4way),
            sweep_cell(&s.dm_64k),
            sweep_cell(&s.dm_128k),
            pct(s.assoc_4way.avg_size_fraction),
            pct(s.dm_64k.avg_size_fraction),
            pct(s.dm_128k.avg_size_fraction),
        ]);
        sums[0] += s.assoc_4way.relative_energy_delay;
        sums[1] += s.dm_64k.relative_energy_delay;
        sums[2] += s.dm_128k.relative_energy_delay;
    }
    print!("{}", t.render());
    let n = rows.len() as f64;
    println!();
    println!(
        "mean relative energy-delay: 4-way {:.2}, 64K DM {:.2}, 128K DM {:.2}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!(
        "paper: higher associativity absorbs conflicts and encourages downsizing; \
         larger caches gain more because a bigger fraction can be put in standby — \
         both variants should (on average) match or beat the 64K DM design point."
    );
}

/// Table 1: the system configuration actually simulated.
pub fn table1() {
    banner("Table 1: system configuration parameters", "Table 1");
    let cpu = ooo_cpu::config::CpuConfig::hpca01();
    let hier = cache_sim::hierarchy::HierarchyConfig::hpca01();
    let dri = dri_core::DriConfig::hpca01_64k_dm();

    let mut t = Table::new(["parameter", "paper", "simulated"]);
    t.row([
        "instruction issue & decode bandwidth",
        "8 issues per cycle",
        &format!("{} issues per cycle", cpu.issue_width),
    ]);
    t.row([
        "L1 i-cache / L1 DRI i-cache",
        "64K, direct-mapped, 1 cycle latency",
        &format!(
            "{}, {}-way, {} cycle latency, {}B blocks",
            kbytes(dri.max_size_bytes),
            dri.associativity,
            dri.latency,
            dri.block_bytes
        ),
    ]);
    t.row([
        "L1 d-cache",
        "64K, 2-way (LRU), 1 cycle latency",
        &format!(
            "{}, {}-way (LRU), {} cycle latency",
            kbytes(hier.l1d.size_bytes),
            hier.l1d.associativity,
            hier.l1d.latency
        ),
    ]);
    t.row([
        "L2 cache",
        "1M, 4-way, unified, 12 cycle latency",
        &format!(
            "{}, {}-way, unified, {} cycle latency",
            kbytes(hier.l2.size_bytes),
            hier.l2.associativity,
            hier.l2.latency
        ),
    ]);
    t.row([
        "memory access latency",
        "80 cycles + 4 cycles per 8 bytes",
        &format!(
            "{} cycles + {} cycles per 8 bytes",
            hier.memory.base_latency, hier.memory.per_8_bytes
        ),
    ]);
    t.row(["reorder buffer size", "128", &cpu.rob_entries.to_string()]);
    t.row(["LSQ size", "128", &cpu.lsq_entries.to_string()]);
    t.row([
        "branch predictor",
        "2-level hybrid",
        "2-level hybrid (bimodal 4K + gshare 4K + chooser 4K, 512-entry BTB, 8-deep RAS)",
    ]);
    print!("{}", t.render());

    println!();
    println!(
        "DRI defaults: sense interval {} instructions (paper example: 1M; \
         scaled with the shorter synthetic runs), divisibility {}, throttle \
         {}-bit counter / {}-interval lockout.",
        dri.sense_interval,
        dri.divisibility,
        dri.throttle.counter_bits,
        dri.throttle.lockout_intervals
    );
}

/// Table 2: energy, speed, and area trade-off of varying threshold voltage
/// and gated-Vdd — model output next to the published numbers.
pub fn table2() {
    use sram_circuit::process::Process;
    use sram_circuit::table2::{generate, generate_extended, published, OperatingPoint};

    let fmt_e = |e: Option<f64>| e.map_or("N/A".to_owned(), |v| format!("{:.0}", v * 1e9));

    banner(
        "Table 2: threshold voltage and gated-Vdd trade-offs (0.18um, 1.0V, 110C)",
        "Table 2",
    );
    let process = Process::tsmc180();
    let op = OperatingPoint::default();
    let rows = generate(&process, op);

    let mut t = Table::new([
        "technique",
        "gated-Vdd Vt",
        "SRAM Vt",
        "rel. read time (model/paper)",
        "active leak e-9 nJ (model/paper)",
        "standby leak e-9 nJ (model/paper)",
        "savings % (model/paper)",
        "area % (model/paper)",
    ]);
    for (row, (_, p_read, p_active, p_standby, p_savings, p_area)) in
        rows.iter().zip(published::TABLE2)
    {
        t.row([
            row.technique.clone(),
            row.gate_vt
                .map_or("N/A".to_owned(), |v| format!("{:.2}V", v.value())),
            format!("{:.2}V", row.sram_vt.value()),
            format!("{:.2} / {:.2}", row.relative_read_time, p_read),
            format!(
                "{:.0} / {:.0}",
                row.active_leakage.value() * 1e9,
                p_active * 1e9
            ),
            format!(
                "{} / {}",
                fmt_e(row.standby_leakage.map(|e| e.value())),
                fmt_e(p_standby)
            ),
            format!(
                "{} / {}",
                row.energy_savings_pct
                    .map_or("N/A".to_owned(), |v| format!("{v:.0}")),
                p_savings.map_or("N/A".to_owned(), |v| format!("{v:.0}"))
            ),
            format!(
                "{} / {}",
                row.area_increase_pct
                    .map_or("N/A".to_owned(), |v| format!("{v:.1}")),
                p_area.map_or("N/A".to_owned(), |v| format!("{v:.1}"))
            ),
        ]);
    }
    print!("{}", t.render());

    println!();
    println!("Extended trade-off table (ablations beyond the paper's columns):");
    for row in generate_extended(&process, op).iter().skip(3) {
        println!("  {row}");
    }
}

/// §5.6: sense-interval length and divisibility robustness.
pub fn section5_6() {
    banner(
        "Section 5.6: varying sense-interval length and divisibility",
        "section 5.6",
    );
    prefetch_sweep_campaign(|tuned| {
        let base_si = tuned.dri.sense_interval;
        let mut grid = interval_grid(
            tuned,
            &[base_si / 4, base_si / 2, base_si, base_si * 2, base_si * 4],
        );
        grid.extend(divisibility_grid(tuned, &[2, 4, 8]));
        grid
    });
    type Rows = (Vec<(u64, Comparison)>, Vec<(u32, Comparison)>);
    let rows: Vec<(Benchmark, Rows)> = for_each_benchmark(|b| {
        let tuned = constrained_base(b);
        let base_si = tuned.dri.sense_interval;
        let intervals = interval_sweep(
            &tuned,
            &[base_si / 4, base_si / 2, base_si, base_si * 2, base_si * 4],
        );
        let divs = divisibility_sweep(&tuned, &[2, 4, 8]);
        (intervals, divs)
    });

    println!("\n-- sense-interval sweep (relative energy-delay per interval length) --");
    let mut t = Table::new(["benchmark", "1/4x", "1/2x", "1x", "2x", "4x", "max |dED|"]);
    for (b, (intervals, _)) in &rows {
        let base_ed = intervals[2].1.relative_energy_delay;
        let spread = intervals
            .iter()
            .map(|(_, c)| (c.relative_energy_delay - base_ed).abs())
            .fold(0.0f64, f64::max);
        let mut cells = vec![b.name().to_owned()];
        cells.extend(
            intervals
                .iter()
                .map(|(_, c)| format!("{:.3}", c.relative_energy_delay)),
        );
        cells.push(format!("{spread:.3}"));
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\n-- divisibility sweep (relative energy-delay / slowdown) --");
    let mut t = Table::new(["benchmark", "div 2", "div 4", "div 8"]);
    for (b, (_, divs)) in &rows {
        let mut cells = vec![b.name().to_owned()];
        cells.extend(
            divs.iter()
                .map(|(_, c)| format!("{:.2} ({})", c.relative_energy_delay, pct(c.slowdown))),
        );
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!(
        "paper: interval-length robustness (<1% change, go <5%); divisibility 4/8 \
         \"prohibitively increases the resizing granularity\"."
    );
}

/// The paper's base tuned to the 64K 4-way geometry — the one geometry
/// every leakage policy can exercise (way-granular policies need ways to
/// gate; the DRI cache resizes sets either way). The search runs under
/// the DRI feedback loop regardless of any ambient `DRI_POLICY`, so all
/// four policies below start from the *same* tuned (miss-bound,
/// size-bound) point and the comparison isolates the policy itself.
fn tuned_four_way(b: Benchmark) -> crate::RunConfig {
    let mut base = base_config(b);
    base.policy = None;
    base.dri = DriConfig {
        miss_bound: base.dri.miss_bound,
        size_bound_bytes: base.dri.size_bound_bytes,
        sense_interval: base.dri.sense_interval,
        ..DriConfig::hpca01_64k_4way()
    };
    let sr = search_benchmark(&base, &space());
    base.dri.miss_bound = sr.constrained.miss_bound;
    base.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
    base
}

/// The four policy variants of one tuned configuration, in
/// [`PolicyConfig::all_ids`] order. Each derives its knobs from the
/// tuned DRI parameters (see the `PolicyConfig::*_from` constructors),
/// so the sweep compares mechanisms, not tuning budgets.
fn policy_variants(tuned: &crate::RunConfig) -> Vec<crate::RunConfig> {
    [
        PolicyConfig::Dri(tuned.dri),
        PolicyConfig::Decay(PolicyConfig::decay_from(&tuned.dri)),
        PolicyConfig::WayResize(PolicyConfig::way_resize_from(&tuned.dri)),
        PolicyConfig::WayMemo(PolicyConfig::way_memo_from(&tuned.dri)),
    ]
    .into_iter()
    .map(|p| {
        let mut cfg = tuned.clone();
        cfg.policy = Some(p);
        cfg
    })
    .collect()
}

/// Policy shoot-out: the paper's gated-Vdd DRI cache against cache decay,
/// Albonesi-style way resizing, and way memoization, side by side on the
/// 64K 4-way geometry from one tuned starting point per benchmark.
pub fn policies() {
    banner(
        "Policy shoot-out: DRI vs decay vs way-resizing vs way-memoization",
        "~sweeps the leakage policies of section 2's design space side by side",
    );
    if crate::session::prefetch_enabled() {
        let benchmarks = selected_benchmarks();
        let search_grid: Vec<crate::RunConfig> = benchmarks
            .iter()
            .flat_map(|&b| {
                let mut base = base_config(b);
                base.policy = None;
                base.dri = DriConfig {
                    miss_bound: base.dri.miss_bound,
                    size_bound_bytes: base.dri.size_bound_bytes,
                    sense_interval: base.dri.sense_interval,
                    ..DriConfig::hpca01_64k_4way()
                };
                grid_configs(&base, &space())
            })
            .collect();
        crate::session::prefetch_grid(&search_grid);
        let bases = crate::harness::parallel_map(&benchmarks, |&b| tuned_four_way(b));
        let sweep_grid: Vec<crate::RunConfig> = bases.iter().flat_map(policy_variants).collect();
        crate::session::prefetch_grid(&sweep_grid);
    }

    let rows: Vec<(Benchmark, Vec<Comparison>)> = for_each_benchmark(|b| {
        let tuned = tuned_four_way(b);
        let baseline = crate::run_conventional(&tuned);
        policy_variants(&tuned)
            .iter()
            .map(|cfg| {
                let run = crate::run_policy(cfg);
                crate::runner::compare_with_baseline(cfg, &baseline, &run)
            })
            .collect()
    });

    let ids = PolicyConfig::all_ids();
    let mut header: Vec<String> = vec!["benchmark".to_owned()];
    header.extend(ids.iter().map(|id| format!("{id}: rel-ED")));
    header.extend(ids.iter().map(|id| format!("{id}: avg-size")));
    let mut t = Table::new(header);
    let mut sums = vec![0.0f64; ids.len()];
    for (b, cmps) in &rows {
        let mut cells = vec![b.name().to_owned()];
        cells.extend(cmps.iter().map(sweep_cell));
        cells.extend(cmps.iter().map(|c| pct(c.avg_size_fraction)));
        t.row(cells);
        for (sum, c) in sums.iter_mut().zip(cmps) {
            *sum += c.relative_energy_delay;
        }
    }
    print!("{}", t.render());
    let n = rows.len() as f64;
    println!();
    println!(
        "mean relative energy-delay: {}",
        ids.iter()
            .zip(&sums)
            .map(|(id, s)| format!("{id} {:.2}", s / n))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();
    println!("cells are relative energy-delay (slowdown); '!' = above the 4% constraint.");
    println!(
        "expected: set-resizing (dri) tracks the working set but only at \
         set granularity; decay and way-memo gate individual idle lines, so \
         their powered fraction can fall further (way-memo keeps linked \
         lines powered longer); way-resizing bottoms out at \
         size/associativity — the granularity argument of paper section 2."
    );
}

/// §5.2.1: the analytic leakage/dynamic trade-off bounds.
pub fn tradeoff() {
    use energy_model::params::EnergyParams;
    use energy_model::tradeoff::{extra_l1_over_leakage, extra_l2_over_leakage};

    banner(
        "Section 5.2.1: leakage vs dynamic energy trade-off bounds",
        "section 5.2.1",
    );
    let published = EnergyParams::hpca01_published();
    let derived = EnergyParams::hpca01_derived();

    println!("constants (published / derived-from-circuit-model):");
    println!(
        "  L1 leakage per cycle: {:.3} / {:.3} nJ",
        published.l1_leak_per_cycle.value(),
        derived.l1_leak_per_cycle.value()
    );
    println!(
        "  resizing bitline:     {:.4} / {:.4} nJ",
        published.resizing_bitline_energy.value(),
        derived.resizing_bitline_energy.value()
    );
    println!(
        "  L2 access:            {:.2} / {:.2} nJ",
        published.l2_access_energy.value(),
        derived.l2_access_energy.value()
    );
    println!();

    println!("extra-L1-dynamic / L1-leakage (paper's example: 0.024 at 5 bits, active 0.5):");
    let mut t = Table::new(["resizing bits", "active 0.25", "active 0.50", "active 1.00"]);
    for bits in [3u32, 5, 6] {
        t.row([
            bits.to_string(),
            format!("{:.3}", extra_l1_over_leakage(&published, bits, 0.25)),
            format!("{:.3}", extra_l1_over_leakage(&published, bits, 0.50)),
            format!("{:.3}", extra_l1_over_leakage(&published, bits, 1.00)),
        ]);
    }
    print!("{}", t.render());
    println!();

    println!("extra-L2-dynamic / L1-leakage (paper's example: 0.08 at +1% misses, active 0.5):");
    let mut t = Table::new([
        "extra miss rate",
        "active 0.25",
        "active 0.50",
        "active 1.00",
    ]);
    for mr in [0.001f64, 0.005, 0.01] {
        t.row([
            format!("{:.1}%", mr * 100.0),
            format!("{:.3}", extra_l2_over_leakage(&published, 0.25, mr)),
            format!("{:.3}", extra_l2_over_leakage(&published, 0.50, mr)),
            format!("{:.3}", extra_l2_over_leakage(&published, 1.00, mr)),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "conclusion (paper): even under extreme assumptions the dynamic overheads \
         are a few percent of the leakage energy, so sizable leakage savings survive."
    );
}
