//! Paired simulation runs: conventional baseline vs DRI i-cache.
//!
//! Every figure in the paper is built from pairs of runs that differ only
//! in the i-cache on the fetch path. The baseline is "a conventional
//! i-cache using an aggressively-scaled threshold voltage" of the same
//! geometry; the DRI run swaps in [`DriICache`] and the §5.2 energy
//! equations combine the two (extra L2 accesses are measured against the
//! baseline run).

use cache_sim::config::CacheConfig;
use cache_sim::hierarchy::HierarchyConfig;
use cache_sim::icache::{ConventionalICache, InstCache};
use cache_sim::stats::CacheStats;
use dri_core::{DriConfig, DriICache};
use energy_model::accounting::{breakdown, energy_delay, EnergyBreakdown, RunCounts};
use energy_model::params::EnergyParams;
use ooo_cpu::config::CpuConfig;
use ooo_cpu::core::Core;
use ooo_cpu::stats::CpuStats;
use synth_workload::suite::Benchmark;

/// Everything needed to simulate one benchmark on one DRI configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Which SPEC95 proxy to run.
    pub benchmark: Benchmark,
    /// Core parameters (Table 1 defaults).
    pub cpu: CpuConfig,
    /// L1d/L2/memory parameters (Table 1 defaults).
    pub hierarchy: HierarchyConfig,
    /// The DRI i-cache under test; the baseline i-cache copies its
    /// geometry (size, associativity, block, latency).
    pub dri: DriConfig,
    /// Committed-instruction budget; `None` runs exactly one pass of the
    /// benchmark's phase schedule.
    pub instruction_budget: Option<u64>,
    /// Energy constants (§5.2); scaled automatically if the DRI geometry
    /// is not the 64K base.
    pub energy: EnergyParams,
    /// Overrides the benchmark's generator seed (different code bodies and
    /// data contents with the same footprint/phase structure); used by the
    /// seed-robustness experiment.
    pub seed_override: Option<u64>,
}

impl RunConfig {
    /// The paper's base configuration for `benchmark`: Table 1 system,
    /// 64K direct-mapped DRI, published energy constants, one schedule
    /// pass.
    pub fn hpca01(benchmark: Benchmark) -> Self {
        RunConfig {
            benchmark,
            cpu: CpuConfig::hpca01(),
            hierarchy: HierarchyConfig::hpca01(),
            dri: DriConfig::hpca01_64k_dm(),
            instruction_budget: None,
            energy: EnergyParams::hpca01_published(),
            seed_override: None,
        }
    }

    /// A fast configuration for examples, doctests, and benches: a short
    /// instruction budget and a proportionally shorter sense interval.
    pub fn quick(benchmark: Benchmark) -> Self {
        let mut cfg = Self::hpca01(benchmark);
        cfg.instruction_budget = Some(400_000);
        cfg.dri.sense_interval = 20_000;
        cfg
    }

    /// The baseline i-cache geometry implied by the DRI configuration.
    pub fn baseline_icache(&self) -> CacheConfig {
        CacheConfig::new(
            self.dri.max_size_bytes,
            self.dri.block_bytes,
            self.dri.associativity,
            self.dri.latency,
            self.dri.replacement,
        )
    }

    /// Energy parameters rescaled to the DRI geometry (leakage scales with
    /// capacity; Figure 6's 128K runs double the 0.91 nJ/cycle).
    pub fn scaled_energy(&self) -> EnergyParams {
        self.energy.scaled_l1(64 * 1024, self.dri.max_size_bytes)
    }
}

/// Outcome of one baseline (conventional i-cache) run.
#[derive(Debug, Clone, Copy)]
pub struct ConventionalRun {
    /// Timing counters.
    pub timing: CpuStats,
    /// L1 i-cache counters.
    pub icache: CacheStats,
    /// L2 accesses caused by i-cache misses.
    pub l2_inst_accesses: u64,
    /// Conditional-branch prediction accuracy.
    pub bpred_accuracy: f64,
}

/// DRI-specific outcome summary.
#[derive(Debug, Clone, Copy)]
pub struct DriSummary {
    /// Average powered fraction of the cache over the run.
    pub avg_active_fraction: f64,
    /// Average powered capacity in bytes.
    pub avg_size_bytes: f64,
    /// Capacity at the end of the run.
    pub final_size_bytes: u64,
    /// Number of resizes performed.
    pub resizes: usize,
    /// Sense intervals elapsed.
    pub intervals: u64,
    /// Resizing tag bits carried by the tag array.
    pub resizing_bits: u32,
}

/// Outcome of one DRI run.
#[derive(Debug, Clone, Copy)]
pub struct DriRun {
    /// Timing counters.
    pub timing: CpuStats,
    /// L1 i-cache counters.
    pub icache: CacheStats,
    /// Resizing summary.
    pub dri: DriSummary,
    /// L2 accesses caused by i-cache misses.
    pub l2_inst_accesses: u64,
    /// Conditional-branch prediction accuracy.
    pub bpred_accuracy: f64,
}

fn budget_for(cfg: &RunConfig, cycle_instructions: u64) -> u64 {
    cfg.instruction_budget.unwrap_or(cycle_instructions)
}

/// Generates `cfg`'s workload from scratch (no session cache). Generation
/// is deterministic in `(benchmark, seed_override)`, which is what makes
/// the session's workload memoization sound.
pub(crate) fn generate_workload(cfg: &RunConfig) -> synth_workload::Generated {
    match cfg.seed_override {
        None => cfg.benchmark.build(),
        Some(seed) => {
            let mut spec = cfg.benchmark.spec();
            spec.seed = seed;
            synth_workload::generator::generate(&spec)
        }
    }
}

fn simulate_conventional(
    cfg: &RunConfig,
    generated: &synth_workload::Generated,
) -> ConventionalRun {
    let icache = ConventionalICache::new(cfg.baseline_icache());
    let mut core = Core::with_hierarchy(&generated.program, cfg.cpu, icache, cfg.hierarchy);
    let result = core.run(budget_for(cfg, generated.cycle_instructions));
    ConventionalRun {
        timing: result.stats,
        icache: *core.icache().stats(),
        l2_inst_accesses: core.hierarchy().l2_inst_accesses(),
        bpred_accuracy: result.bpred_accuracy,
    }
}

/// Simulates the baseline with a session-cached workload but no run
/// memoization (the session calls this on a cache miss).
pub(crate) fn run_conventional_fresh_in(
    session: &crate::session::SimSession,
    cfg: &RunConfig,
) -> ConventionalRun {
    simulate_conventional(cfg, &session.workload(cfg))
}

/// Runs the conventional baseline for `cfg` with no caching at all: the
/// workload is regenerated and the simulation always executes. This is
/// the reference the session's bit-identity contract is tested against;
/// prefer [`run_conventional`] everywhere else.
pub fn run_conventional_uncached(cfg: &RunConfig) -> ConventionalRun {
    simulate_conventional(cfg, &generate_workload(cfg))
}

/// Runs the conventional baseline for `cfg`.
///
/// Workloads and completed runs are memoized in the global
/// [`crate::session::SimSession`]; simulations are deterministic, so a
/// cache hit returns counters bit-identical to a fresh run.
pub fn run_conventional(cfg: &RunConfig) -> ConventionalRun {
    crate::session::SimSession::global().conventional(cfg)
}

fn simulate_dri(cfg: &RunConfig, generated: &synth_workload::Generated) -> DriRun {
    let icache = DriICache::new(cfg.dri);
    let mut core = Core::with_hierarchy(&generated.program, cfg.cpu, icache, cfg.hierarchy);
    let result = core.run(budget_for(cfg, generated.cycle_instructions));
    let dri = core.icache();
    let summary = DriSummary {
        avg_active_fraction: dri.avg_active_fraction(),
        avg_size_bytes: dri.avg_size_bytes(),
        final_size_bytes: dri.active_size_bytes(),
        resizes: dri.resize_events().len(),
        intervals: dri.intervals_elapsed(),
        resizing_bits: dri.config().resizing_tag_bits(),
    };
    DriRun {
        timing: result.stats,
        icache: *dri.stats(),
        dri: summary,
        l2_inst_accesses: core.hierarchy().l2_inst_accesses(),
        bpred_accuracy: result.bpred_accuracy,
    }
}

/// Simulates the DRI cache with a session-cached workload but no run
/// memoization (the session calls this on a cache miss).
pub(crate) fn run_dri_fresh_in(session: &crate::session::SimSession, cfg: &RunConfig) -> DriRun {
    simulate_dri(cfg, &session.workload(cfg))
}

/// Runs the DRI i-cache for `cfg` with no caching at all (see
/// [`run_conventional_uncached`]).
pub fn run_dri_uncached(cfg: &RunConfig) -> DriRun {
    simulate_dri(cfg, &generate_workload(cfg))
}

/// Runs the DRI i-cache for `cfg`.
///
/// Workloads and completed runs are memoized in the global
/// [`crate::session::SimSession`] (see [`run_conventional`]).
pub fn run_dri(cfg: &RunConfig) -> DriRun {
    crate::session::SimSession::global().dri(cfg)
}

/// Runs the Albonesi-style way-resizing ablation cache (see
/// `dri_core::way_resize`) under the same system configuration. The result
/// reuses [`DriRun`]: way resizing needs no resizing tag bits, so
/// `resizing_bits` is 0. The workload comes from the global session; the
/// simulation itself is not memoized (ablations run once).
pub fn run_way_resizable(cfg: &RunConfig, way: dri_core::WayConfig) -> DriRun {
    let generated = crate::session::SimSession::global().workload(cfg);
    let icache = dri_core::WayResizableICache::new(way);
    let mut core = Core::with_hierarchy(&generated.program, cfg.cpu, icache, cfg.hierarchy);
    let result = core.run(budget_for(cfg, generated.cycle_instructions));
    let cache = core.icache();
    let summary = DriSummary {
        avg_active_fraction: cache.avg_active_fraction(),
        avg_size_bytes: cache.avg_active_fraction() * way.size_bytes as f64,
        final_size_bytes: cache.active_size_bytes(),
        resizes: cache.resizes() as usize,
        intervals: 0,
        resizing_bits: 0,
    };
    DriRun {
        timing: result.stats,
        icache: *cache.stats(),
        dri: summary,
        l2_inst_accesses: core.hierarchy().l2_inst_accesses(),
        bpred_accuracy: result.bpred_accuracy,
    }
}

/// A paired DRI-vs-conventional comparison with the §5.2 energy metrics.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The DRI parameters used (miss-bound, size-bound are the headline).
    pub miss_bound: u64,
    /// Size-bound in bytes.
    pub size_bound_bytes: u64,
    /// Relative leakage energy-delay (DRI effective over conventional).
    pub relative_energy_delay: f64,
    /// Leakage component of the relative energy-delay (the light segment
    /// of the paper's stacked bars).
    pub leakage_component: f64,
    /// Extra-dynamic component (the dark segment).
    pub dynamic_component: f64,
    /// Execution-time increase vs the baseline (0.04 = 4% slowdown).
    pub slowdown: f64,
    /// Average DRI size as a fraction of the conventional size.
    pub avg_size_fraction: f64,
    /// DRI i-cache miss rate, normalized to cycles (the paper's §5.2
    /// convention approximates one L1 access per cycle, so its miss rates
    /// are per-cycle figures; our fetch fires roughly once per fetch group,
    /// so misses-per-access would overstate the rate ~6×).
    pub dri_miss_rate: f64,
    /// Conventional i-cache miss rate, normalized to cycles.
    pub conventional_miss_rate: f64,
    /// Extra L2 accesses charged to the DRI run.
    pub extra_l2_accesses: u64,
    /// Energy breakdown in absolute nanojoules.
    pub energy: EnergyBreakdown,
}

/// Compares a DRI run against an already-computed baseline (reusing the
/// baseline across a parameter search).
pub fn compare_with_baseline(
    cfg: &RunConfig,
    baseline: &ConventionalRun,
    dri: &DriRun,
) -> Comparison {
    let params = cfg.scaled_energy();
    let extra_l2 = dri
        .l2_inst_accesses
        .saturating_sub(baseline.l2_inst_accesses);
    let counts = RunCounts {
        cycles: dri.timing.cycles,
        avg_active_fraction: dri.dri.avg_active_fraction,
        l1_accesses: dri.icache.accesses,
        resizing_bits: dri.dri.resizing_bits,
        extra_l2_accesses: extra_l2,
    };
    let b = breakdown(&params, &counts);
    let conv_ed = energy_delay(
        energy_model::accounting::conventional_leakage(&params, baseline.timing.cycles),
        baseline.timing.cycles,
    );
    let rel = |e: sram_circuit::units::NanoJoules| energy_delay(e, dri.timing.cycles) / conv_ed;
    Comparison {
        benchmark: cfg.benchmark,
        miss_bound: cfg.dri.miss_bound,
        size_bound_bytes: cfg.dri.size_bound_bytes,
        relative_energy_delay: rel(b.effective()),
        leakage_component: rel(b.l1_leakage),
        dynamic_component: rel(b.extra_l1_dynamic + b.extra_l2_dynamic),
        slowdown: dri.timing.cycles as f64 / baseline.timing.cycles as f64 - 1.0,
        avg_size_fraction: dri.dri.avg_active_fraction,
        dri_miss_rate: dri.icache.misses as f64 / dri.timing.cycles.max(1) as f64,
        conventional_miss_rate: baseline.icache.misses as f64
            / baseline.timing.cycles.max(1) as f64,
        extra_l2_accesses: extra_l2,
        energy: b,
    }
}

/// Runs both sides and compares them.
pub fn compare(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional(cfg);
    let dri = run_dri(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_compress_downsizes_and_saves_energy() {
        // compress is class 1: tiny working set, lives at the size-bound.
        // An 8K size-bound comfortably holds its hot code plus the driver
        // dispatch chain (~6K as laid out); smaller bounds thrash (the
        // §2.3.1 failure mode the parameter search exists to avoid).
        let mut cfg = RunConfig::quick(Benchmark::Compress);
        cfg.dri.size_bound_bytes = 8 * 1024;
        let c = compare(&cfg);
        assert!(
            c.avg_size_fraction < 0.6,
            "avg size fraction {}",
            c.avg_size_fraction
        );
        assert!(
            c.relative_energy_delay < 0.7,
            "relative energy-delay {}",
            c.relative_energy_delay
        );
        assert!(c.slowdown < 0.10, "slowdown {}", c.slowdown);
    }

    #[test]
    fn components_sum_to_total() {
        let cfg = RunConfig::quick(Benchmark::Li);
        let c = compare(&cfg);
        let sum = c.leakage_component + c.dynamic_component;
        assert!(
            (sum - c.relative_energy_delay).abs() < 1e-9,
            "components {sum} vs total {}",
            c.relative_energy_delay
        );
    }

    #[test]
    fn baseline_miss_rate_is_below_one_percent() {
        // Paper: "the conventional i-cache miss rate is less than 1% for
        // all the benchmarks".
        let cfg = RunConfig::quick(Benchmark::M88ksim);
        let base = run_conventional(&cfg);
        assert!(
            base.icache.miss_rate() < 0.01,
            "miss rate {}",
            base.icache.miss_rate()
        );
    }

    #[test]
    fn fpppp_like_full_bound_never_shrinks() {
        let mut cfg = RunConfig::quick(Benchmark::Fpppp);
        cfg.dri.size_bound_bytes = cfg.dri.max_size_bytes;
        let dri = run_dri(&cfg);
        assert_eq!(dri.dri.resizes, 0);
        assert!((dri.dri.avg_active_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_energy_doubles_for_128k() {
        let mut cfg = RunConfig::hpca01(Benchmark::Gcc);
        cfg.dri = DriConfig::hpca01_128k_dm();
        let p = cfg.scaled_energy();
        assert!((p.l1_leak_per_cycle.value() - 1.82).abs() < 1e-9);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = RunConfig::quick(Benchmark::Mgrid);
        let a = compare(&cfg);
        let b = compare(&cfg);
        assert_eq!(a.relative_energy_delay, b.relative_energy_delay);
        assert_eq!(a.slowdown, b.slowdown);
    }
}
