//! Paired simulation runs: conventional baseline vs a leakage policy.
//!
//! Every figure in the paper is built from pairs of runs that differ only
//! in the i-cache on the fetch path. The baseline is "a conventional
//! i-cache using an aggressively-scaled threshold voltage" of the same
//! geometry; the policy run swaps in one of the leakage-controlled models
//! — the paper's [`DriICache`] by default, or any other
//! [`PolicyConfig`] selection — and the §5.2 energy equations combine
//! the two (extra L2 accesses are measured against the baseline run).
//!
//! The policy side is generic over `InstCache + LeakagePolicy`
//! ([`cache_sim::policy::LeakagePolicy`]): the simulation loop reads only
//! that surface, so every model produces the same [`DriRun`] shape and
//! flows through the same memoization, persistence, and energy
//! accounting. [`run_policy`] is the generic entry point; [`run_dri`]
//! remains as the DRI-flavoured alias the original figures call.

use cache_sim::config::CacheConfig;
use cache_sim::hierarchy::HierarchyConfig;
use cache_sim::icache::{ConventionalICache, InstCache};
use cache_sim::policy::LeakagePolicy;
use cache_sim::stats::CacheStats;
use dri_core::{DriConfig, DriICache, PolicyConfig};
use energy_model::accounting::{breakdown, energy_delay, EnergyBreakdown, RunCounts};
use energy_model::params::EnergyParams;
use ooo_cpu::config::CpuConfig;
use ooo_cpu::core::Core;
use ooo_cpu::stats::CpuStats;
use synth_workload::suite::Benchmark;

/// Everything needed to simulate one benchmark on one DRI configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Which SPEC95 proxy to run.
    pub benchmark: Benchmark,
    /// Core parameters (Table 1 defaults).
    pub cpu: CpuConfig,
    /// L1d/L2/memory parameters (Table 1 defaults).
    pub hierarchy: HierarchyConfig,
    /// The DRI i-cache under test; the baseline i-cache copies its
    /// geometry (size, associativity, block, latency).
    pub dri: DriConfig,
    /// Committed-instruction budget; `None` runs exactly one pass of the
    /// benchmark's phase schedule.
    pub instruction_budget: Option<u64>,
    /// Energy constants (§5.2); scaled automatically if the DRI geometry
    /// is not the 64K base.
    pub energy: EnergyParams,
    /// Overrides the benchmark's generator seed (different code bodies and
    /// data contents with the same footprint/phase structure); used by the
    /// seed-robustness experiment.
    pub seed_override: Option<u64>,
    /// Which leakage policy the non-baseline run uses. `None` (the
    /// default everywhere) means the paper's DRI i-cache built from
    /// [`Self::dri`] — see [`Self::resolved_policy`]. Setting
    /// `Some(PolicyConfig::…)` swaps the model on the fetch path while
    /// the baseline, energy accounting, and store keys adjust to match.
    pub policy: Option<PolicyConfig>,
}

impl RunConfig {
    /// The paper's base configuration for `benchmark`: Table 1 system,
    /// 64K direct-mapped DRI, published energy constants, one schedule
    /// pass.
    pub fn hpca01(benchmark: Benchmark) -> Self {
        RunConfig {
            benchmark,
            cpu: CpuConfig::hpca01(),
            hierarchy: HierarchyConfig::hpca01(),
            dri: DriConfig::hpca01_64k_dm(),
            instruction_budget: None,
            energy: EnergyParams::hpca01_published(),
            seed_override: None,
            policy: None,
        }
    }

    /// A fast configuration for examples, doctests, and benches: a short
    /// instruction budget and a proportionally shorter sense interval.
    pub fn quick(benchmark: Benchmark) -> Self {
        let mut cfg = Self::hpca01(benchmark);
        cfg.instruction_budget = Some(400_000);
        cfg.dri.sense_interval = 20_000;
        cfg
    }

    /// The leakage policy this configuration actually runs: the explicit
    /// [`Self::policy`] selection, or the paper's gated-Vdd DRI cache
    /// built from [`Self::dri`] when none is set. Everything downstream —
    /// the simulation dispatch, the memoization key, the store key — keys
    /// on this resolved value, so `policy: None` and
    /// `policy: Some(PolicyConfig::Dri(cfg.dri))` are the same run.
    pub fn resolved_policy(&self) -> PolicyConfig {
        self.policy.unwrap_or(PolicyConfig::Dri(self.dri))
    }

    /// The baseline i-cache geometry implied by the DRI configuration.
    pub fn baseline_icache(&self) -> CacheConfig {
        CacheConfig::new(
            self.dri.max_size_bytes,
            self.dri.block_bytes,
            self.dri.associativity,
            self.dri.latency,
            self.dri.replacement,
        )
    }

    /// Energy parameters rescaled to the DRI geometry (leakage scales with
    /// capacity; Figure 6's 128K runs double the 0.91 nJ/cycle).
    pub fn scaled_energy(&self) -> EnergyParams {
        self.energy.scaled_l1(64 * 1024, self.dri.max_size_bytes)
    }
}

/// Outcome of one baseline (conventional i-cache) run.
#[derive(Debug, Clone, Copy)]
pub struct ConventionalRun {
    /// Timing counters.
    pub timing: CpuStats,
    /// L1 i-cache counters.
    pub icache: CacheStats,
    /// L2 accesses caused by i-cache misses.
    pub l2_inst_accesses: u64,
    /// Conditional-branch prediction accuracy.
    pub bpred_accuracy: f64,
}

/// DRI-specific outcome summary.
#[derive(Debug, Clone, Copy)]
pub struct DriSummary {
    /// Average powered fraction of the cache over the run.
    pub avg_active_fraction: f64,
    /// Average powered capacity in bytes.
    pub avg_size_bytes: f64,
    /// Capacity at the end of the run.
    pub final_size_bytes: u64,
    /// Number of resizes performed.
    pub resizes: usize,
    /// Sense intervals elapsed.
    pub intervals: u64,
    /// Resizing tag bits carried by the tag array.
    pub resizing_bits: u32,
}

/// Outcome of one DRI run.
#[derive(Debug, Clone, Copy)]
pub struct DriRun {
    /// Timing counters.
    pub timing: CpuStats,
    /// L1 i-cache counters.
    pub icache: CacheStats,
    /// Resizing summary.
    pub dri: DriSummary,
    /// L2 accesses caused by i-cache misses.
    pub l2_inst_accesses: u64,
    /// Conditional-branch prediction accuracy.
    pub bpred_accuracy: f64,
}

fn budget_for(cfg: &RunConfig, cycle_instructions: u64) -> u64 {
    cfg.instruction_budget.unwrap_or(cycle_instructions)
}

/// Generates `cfg`'s workload from scratch (no session cache). Generation
/// is deterministic in `(benchmark, seed_override)`, which is what makes
/// the session's workload memoization sound.
pub(crate) fn generate_workload(cfg: &RunConfig) -> synth_workload::Generated {
    match cfg.seed_override {
        None => cfg.benchmark.build(),
        Some(seed) => {
            let mut spec = cfg.benchmark.spec();
            spec.seed = seed;
            synth_workload::generator::generate(&spec)
        }
    }
}

fn simulate_conventional(
    cfg: &RunConfig,
    generated: &synth_workload::Generated,
) -> ConventionalRun {
    let icache = ConventionalICache::new(cfg.baseline_icache());
    let mut core = Core::with_hierarchy(&generated.program, cfg.cpu, icache, cfg.hierarchy);
    let result = core.run(budget_for(cfg, generated.cycle_instructions));
    ConventionalRun {
        timing: result.stats,
        icache: *core.icache().stats(),
        l2_inst_accesses: core.hierarchy().l2_inst_accesses(),
        bpred_accuracy: result.bpred_accuracy,
    }
}

/// Simulates the baseline with a session-cached workload but no run
/// memoization (the session calls this on a cache miss).
pub(crate) fn run_conventional_fresh_in(
    session: &crate::session::SimSession,
    cfg: &RunConfig,
) -> ConventionalRun {
    simulate_conventional(cfg, &session.workload(cfg))
}

/// Runs the conventional baseline for `cfg` with no caching at all: the
/// workload is regenerated and the simulation always executes. This is
/// the reference the session's bit-identity contract is tested against;
/// prefer [`run_conventional`] everywhere else.
pub fn run_conventional_uncached(cfg: &RunConfig) -> ConventionalRun {
    simulate_conventional(cfg, &generate_workload(cfg))
}

/// Runs the conventional baseline for `cfg`.
///
/// Workloads and completed runs are memoized in the global
/// [`crate::session::SimSession`]; simulations are deterministic, so a
/// cache hit returns counters bit-identical to a fresh run.
pub fn run_conventional(cfg: &RunConfig) -> ConventionalRun {
    crate::session::SimSession::global().conventional(cfg)
}

/// The one simulation loop every leakage policy shares: drive the core
/// with `icache` on the fetch path, then read the run summary through
/// the [`LeakagePolicy`] accounting surface. For the DRI model every
/// trait method delegates to the inherent accessor `simulate_dri` used
/// to call directly, so the summary is bit-identical to the
/// pre-`LeakagePolicy` code path.
fn simulate_policy_with<IC: InstCache + LeakagePolicy>(
    cfg: &RunConfig,
    generated: &synth_workload::Generated,
    icache: IC,
) -> DriRun {
    let mut core = Core::with_hierarchy(&generated.program, cfg.cpu, icache, cfg.hierarchy);
    let result = core.run(budget_for(cfg, generated.cycle_instructions));
    let cache = core.icache();
    let summary = DriSummary {
        avg_active_fraction: cache.avg_active_fraction(),
        avg_size_bytes: cache.avg_size_bytes(),
        final_size_bytes: cache.active_size_bytes(),
        resizes: cache.resizes() as usize,
        intervals: cache.intervals(),
        resizing_bits: cache.resizing_tag_bits(),
    };
    DriRun {
        timing: result.stats,
        icache: *cache.stats(),
        dri: summary,
        l2_inst_accesses: core.hierarchy().l2_inst_accesses(),
        bpred_accuracy: result.bpred_accuracy,
    }
}

/// Builds the i-cache `cfg`'s resolved policy selects and simulates it.
fn simulate_policy(cfg: &RunConfig, generated: &synth_workload::Generated) -> DriRun {
    match cfg.resolved_policy() {
        PolicyConfig::Dri(dri) => simulate_policy_with(cfg, generated, DriICache::new(dri)),
        PolicyConfig::Decay(decay) => {
            simulate_policy_with(cfg, generated, dri_core::DecayICache::new(decay))
        }
        PolicyConfig::WayResize(way) => {
            simulate_policy_with(cfg, generated, dri_core::WayResizableICache::new(way))
        }
        PolicyConfig::WayMemo(memo) => {
            simulate_policy_with(cfg, generated, dri_core::WayMemoICache::new(memo))
        }
    }
}

/// Simulates `cfg`'s resolved policy with a session-cached workload but
/// no run memoization (the session calls this on a cache miss).
pub(crate) fn run_policy_fresh_in(session: &crate::session::SimSession, cfg: &RunConfig) -> DriRun {
    simulate_policy(cfg, &session.workload(cfg))
}

/// Runs `cfg`'s resolved leakage policy with no caching at all (see
/// [`run_conventional_uncached`]).
pub fn run_policy_uncached(cfg: &RunConfig) -> DriRun {
    simulate_policy(cfg, &generate_workload(cfg))
}

/// Runs `cfg`'s resolved leakage policy — the DRI i-cache unless
/// [`RunConfig::policy`] selects another model.
///
/// Workloads and completed runs are memoized in the global
/// [`crate::session::SimSession`] (see [`run_conventional`]); each policy
/// memoizes and persists under its own key, so sweeping several policies
/// over one grid never aliases records.
pub fn run_policy(cfg: &RunConfig) -> DriRun {
    crate::session::SimSession::global().policy_run(cfg)
}

/// Runs the DRI i-cache for `cfg` with no caching at all (see
/// [`run_conventional_uncached`]). Alias of [`run_policy_uncached`] kept
/// for the original figures; with `policy: None` they are the same run.
pub fn run_dri_uncached(cfg: &RunConfig) -> DriRun {
    run_policy_uncached(cfg)
}

/// Runs the DRI i-cache for `cfg` (alias of [`run_policy`]; see there).
pub fn run_dri(cfg: &RunConfig) -> DriRun {
    run_policy(cfg)
}

/// Runs the Albonesi-style way-resizing ablation cache (see
/// `dri_core::way_resize`) under the same system configuration — now a
/// thin wrapper that pins [`RunConfig::policy`] to
/// [`PolicyConfig::WayResize`] and goes through [`run_policy`], so
/// ablation runs share the session memoization and store keys like every
/// other policy. Way resizing needs no resizing tag bits, so
/// `resizing_bits` is 0.
pub fn run_way_resizable(cfg: &RunConfig, way: dri_core::WayConfig) -> DriRun {
    let mut cfg = cfg.clone();
    cfg.policy = Some(PolicyConfig::WayResize(way));
    run_policy(&cfg)
}

/// A paired DRI-vs-conventional comparison with the §5.2 energy metrics.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The DRI parameters used (miss-bound, size-bound are the headline).
    pub miss_bound: u64,
    /// Size-bound in bytes.
    pub size_bound_bytes: u64,
    /// Relative leakage energy-delay (DRI effective over conventional).
    pub relative_energy_delay: f64,
    /// Leakage component of the relative energy-delay (the light segment
    /// of the paper's stacked bars).
    pub leakage_component: f64,
    /// Extra-dynamic component (the dark segment).
    pub dynamic_component: f64,
    /// Execution-time increase vs the baseline (0.04 = 4% slowdown).
    pub slowdown: f64,
    /// Average DRI size as a fraction of the conventional size.
    pub avg_size_fraction: f64,
    /// DRI i-cache miss rate, normalized to cycles (the paper's §5.2
    /// convention approximates one L1 access per cycle, so its miss rates
    /// are per-cycle figures; our fetch fires roughly once per fetch group,
    /// so misses-per-access would overstate the rate ~6×).
    pub dri_miss_rate: f64,
    /// Conventional i-cache miss rate, normalized to cycles.
    pub conventional_miss_rate: f64,
    /// Extra L2 accesses charged to the DRI run.
    pub extra_l2_accesses: u64,
    /// Energy breakdown in absolute nanojoules.
    pub energy: EnergyBreakdown,
}

/// Compares a DRI run against an already-computed baseline (reusing the
/// baseline across a parameter search).
pub fn compare_with_baseline(
    cfg: &RunConfig,
    baseline: &ConventionalRun,
    dri: &DriRun,
) -> Comparison {
    let params = cfg.scaled_energy();
    let extra_l2 = dri
        .l2_inst_accesses
        .saturating_sub(baseline.l2_inst_accesses);
    let counts = RunCounts {
        cycles: dri.timing.cycles,
        avg_active_fraction: dri.dri.avg_active_fraction,
        l1_accesses: dri.icache.accesses,
        resizing_bits: dri.dri.resizing_bits,
        extra_l2_accesses: extra_l2,
    };
    let b = breakdown(&params, &counts);
    let conv_ed = energy_delay(
        energy_model::accounting::conventional_leakage(&params, baseline.timing.cycles),
        baseline.timing.cycles,
    );
    let rel = |e: sram_circuit::units::NanoJoules| energy_delay(e, dri.timing.cycles) / conv_ed;
    Comparison {
        benchmark: cfg.benchmark,
        miss_bound: cfg.dri.miss_bound,
        size_bound_bytes: cfg.dri.size_bound_bytes,
        relative_energy_delay: rel(b.effective()),
        leakage_component: rel(b.l1_leakage),
        dynamic_component: rel(b.extra_l1_dynamic + b.extra_l2_dynamic),
        slowdown: dri.timing.cycles as f64 / baseline.timing.cycles as f64 - 1.0,
        avg_size_fraction: dri.dri.avg_active_fraction,
        dri_miss_rate: dri.icache.misses as f64 / dri.timing.cycles.max(1) as f64,
        conventional_miss_rate: baseline.icache.misses as f64
            / baseline.timing.cycles.max(1) as f64,
        extra_l2_accesses: extra_l2,
        energy: b,
    }
}

/// Runs both sides and compares them.
pub fn compare(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional(cfg);
    let dri = run_dri(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_compress_downsizes_and_saves_energy() {
        // compress is class 1: tiny working set, lives at the size-bound.
        // An 8K size-bound comfortably holds its hot code plus the driver
        // dispatch chain (~6K as laid out); smaller bounds thrash (the
        // §2.3.1 failure mode the parameter search exists to avoid).
        let mut cfg = RunConfig::quick(Benchmark::Compress);
        cfg.dri.size_bound_bytes = 8 * 1024;
        let c = compare(&cfg);
        assert!(
            c.avg_size_fraction < 0.6,
            "avg size fraction {}",
            c.avg_size_fraction
        );
        assert!(
            c.relative_energy_delay < 0.7,
            "relative energy-delay {}",
            c.relative_energy_delay
        );
        assert!(c.slowdown < 0.10, "slowdown {}", c.slowdown);
    }

    #[test]
    fn components_sum_to_total() {
        let cfg = RunConfig::quick(Benchmark::Li);
        let c = compare(&cfg);
        let sum = c.leakage_component + c.dynamic_component;
        assert!(
            (sum - c.relative_energy_delay).abs() < 1e-9,
            "components {sum} vs total {}",
            c.relative_energy_delay
        );
    }

    #[test]
    fn baseline_miss_rate_is_below_one_percent() {
        // Paper: "the conventional i-cache miss rate is less than 1% for
        // all the benchmarks".
        let cfg = RunConfig::quick(Benchmark::M88ksim);
        let base = run_conventional(&cfg);
        assert!(
            base.icache.miss_rate() < 0.01,
            "miss rate {}",
            base.icache.miss_rate()
        );
    }

    #[test]
    fn fpppp_like_full_bound_never_shrinks() {
        let mut cfg = RunConfig::quick(Benchmark::Fpppp);
        cfg.dri.size_bound_bytes = cfg.dri.max_size_bytes;
        let dri = run_dri(&cfg);
        assert_eq!(dri.dri.resizes, 0);
        assert!((dri.dri.avg_active_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_energy_doubles_for_128k() {
        let mut cfg = RunConfig::hpca01(Benchmark::Gcc);
        cfg.dri = DriConfig::hpca01_128k_dm();
        let p = cfg.scaled_energy();
        assert!((p.l1_leak_per_cycle.value() - 1.82).abs() < 1e-9);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = RunConfig::quick(Benchmark::Mgrid);
        let a = compare(&cfg);
        let b = compare(&cfg);
        assert_eq!(a.relative_energy_delay, b.relative_energy_delay);
        assert_eq!(a.slowdown, b.slowdown);
    }
}
