//! Fixed-width table rendering for the experiment binaries.

/// A simple aligned-column table printer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats a byte count as K (e.g. 65536 -> "64K").
pub fn kbytes(bytes: u64) -> String {
    format!("{}K", bytes / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.625), "62.5%");
        assert_eq!(kbytes(64 * 1024), "64K");
        assert_eq!(kbytes(1024), "1K");
    }
}
