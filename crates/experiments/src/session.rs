//! The simulation session: process-wide memoization of workloads and runs.
//!
//! Every figure in the paper is assembled from *hundreds* of paired
//! baseline-vs-DRI simulations, and before this layer existed each
//! `run_conventional`/`run_dri` call regenerated its synthetic workload
//! from scratch and every sweep point re-simulated the baseline. A
//! [`SimSession`] eliminates that redundancy without changing a single
//! counter:
//!
//! * **Workloads** are memoized behind [`Arc`], keyed by
//!   `(Benchmark, seed override)`. Generation is deterministic in that
//!   key (see `synth_workload::generator`), so the cached program is the
//!   program a fresh generation would produce, and each workload is built
//!   exactly once per process no matter how many sweep points touch it.
//! * **Baseline (conventional) runs** are memoized by everything that can
//!   influence their counters: benchmark, seed, CPU configuration,
//!   hierarchy configuration, baseline i-cache geometry, and instruction
//!   budget. A parameter search over `n` (miss-bound × size-bound) points
//!   simulates the baseline once, not `n` times — and the search and the
//!   Figure 4–6 sweeps that follow it share that one run too.
//! * **DRI runs** are memoized by the same key plus the full
//!   [`DriConfig`], so a sweep whose base point was already visited by
//!   the parameter search reuses it instead of re-simulating.
//!
//! Simulations are deterministic (seeded RNGs, no wall-clock input), so a
//! cache hit is *bit-identical* to a fresh run — the regression tests in
//! `tests/session_identity.rs` assert this field by field. Results are
//! small `Copy` structs; workloads are the only cached values of any size.
//!
//! The global session is shared across threads (guarded by mutexes that
//! are held only for lookup/insert, never during a simulation), which is
//! what makes the parallel sweeps in [`crate::sweeps`] and
//! [`crate::harness::parallel_map`] cheap: concurrent sweep points fall
//! back to at most one redundant simulation per race, and typically none.
//!
//! ## The disk tier
//!
//! A session can additionally carry a [`dri_store::ResultStore`], making
//! the lookup order **memory → disk → simulate**. The global session
//! attaches one automatically when `DRI_STORE` names a directory (unset
//! = memory-only, so tests stay hermetic by default). Disk entries are
//! keyed by a stable content hash of everything that can influence the
//! counters (see [`crate::persist`]) and carry checksummed payloads, so
//! a loaded result is bit-identical to the simulation that produced it —
//! across processes, not just within one — and a corrupt or truncated
//! entry is silently recomputed and overwritten, never trusted.
//!
//! ## The remote tier
//!
//! A session can further carry a [`dri_serve::RemoteStore`] client,
//! making the full lookup order **memory → disk → remote → simulate**.
//! The global session attaches one when `DRI_REMOTE` names a `dri-serve`
//! instance (again, unset = off). A remote hit is validated end-to-end
//! (the full checksummed record crosses the wire) and is immediately
//! **healed into the local disk tier** when one is attached, so a record
//! crosses the network at most once per worker; the remote service
//! itself is never written to. Remote failures of any kind — the server
//! is down, a response is truncated, a record is corrupt — degrade to
//! the next tier (a local simulation), exactly like disk corruption.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use dri_serve::{RemoteStats, RemoteStore};
use dri_store::{ResultStore, StoreStats};

use cache_sim::config::CacheConfig;
use cache_sim::hierarchy::HierarchyConfig;
use dri_core::DriConfig;
use ooo_cpu::config::CpuConfig;
use synth_workload::suite::Benchmark;
use synth_workload::Generated;

use crate::runner::{ConventionalRun, DriRun, RunConfig};

/// Identifies a generated workload: the benchmark plus the optional seed
/// override (`None` = the benchmark's canonical seed).
pub type WorkloadKey = (Benchmark, Option<u64>);

/// Everything that can influence a conventional (baseline) run's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BaselineKey {
    benchmark: Benchmark,
    seed_override: Option<u64>,
    cpu: CpuConfig,
    hierarchy: HierarchyConfig,
    icache: CacheConfig,
    instruction_budget: Option<u64>,
}

impl BaselineKey {
    fn of(cfg: &RunConfig) -> Self {
        BaselineKey {
            benchmark: cfg.benchmark,
            seed_override: cfg.seed_override,
            cpu: cfg.cpu,
            hierarchy: cfg.hierarchy,
            icache: cfg.baseline_icache(),
            instruction_budget: cfg.instruction_budget,
        }
    }
}

/// Everything that can influence a DRI run's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DriKey {
    benchmark: Benchmark,
    seed_override: Option<u64>,
    cpu: CpuConfig,
    hierarchy: HierarchyConfig,
    dri: DriConfig,
    instruction_budget: Option<u64>,
}

impl DriKey {
    fn of(cfg: &RunConfig) -> Self {
        DriKey {
            benchmark: cfg.benchmark,
            seed_override: cfg.seed_override,
            cpu: cfg.cpu,
            hierarchy: cfg.hierarchy,
            dri: cfg.dri,
            instruction_budget: cfg.instruction_budget,
        }
    }
}

/// Cache-hit/miss counters, for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Workload cache hits.
    pub workload_hits: u64,
    /// Workloads generated (cache misses).
    pub workload_misses: u64,
    /// Baseline-run memory-cache hits.
    pub baseline_hits: u64,
    /// Baseline simulations executed (missed memory *and* disk).
    pub baseline_misses: u64,
    /// Baseline runs loaded from the disk store (no simulation ran).
    pub baseline_disk_hits: u64,
    /// Baseline runs fetched from the remote service (no simulation ran).
    pub baseline_remote_hits: u64,
    /// DRI-run memory-cache hits.
    pub dri_hits: u64,
    /// DRI simulations executed (missed memory *and* disk).
    pub dri_misses: u64,
    /// DRI runs loaded from the disk store (no simulation ran).
    pub dri_disk_hits: u64,
    /// DRI runs fetched from the remote service (no simulation ran).
    pub dri_remote_hits: u64,
}

impl SessionStats {
    /// Total simulations this session actually executed.
    pub fn simulations(&self) -> u64 {
        self.baseline_misses + self.dri_misses
    }

    /// Total runs served from the disk tier.
    pub fn disk_hits(&self) -> u64 {
        self.baseline_disk_hits + self.dri_disk_hits
    }

    /// Total runs served from the remote tier.
    pub fn remote_hits(&self) -> u64 {
        self.baseline_remote_hits + self.dri_remote_hits
    }
}

/// Memoization scope for workloads and runs (see the module docs).
///
/// Most callers use [`SimSession::global`] through the `runner` free
/// functions; a fresh `SimSession::new()` gives tests and long-lived
/// servers an isolated scope they can drop to release memory.
#[derive(Debug, Default)]
pub struct SimSession {
    workloads: Mutex<HashMap<WorkloadKey, Arc<Generated>>>,
    baselines: Mutex<HashMap<BaselineKey, ConventionalRun>>,
    dri_runs: Mutex<HashMap<DriKey, DriRun>>,
    stats: Mutex<SessionStats>,
    store: Option<ResultStore>,
    remote: Option<RemoteStore>,
}

impl SimSession {
    /// Creates an empty, memory-only session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session backed by `store` as its second cache tier
    /// (memory → disk → simulate).
    pub fn with_store(store: ResultStore) -> Self {
        Self::with_tiers(Some(store), None)
    }

    /// Creates a session backed by a remote result service as its only
    /// extra tier (memory → remote → simulate) — a disk-less worker.
    pub fn with_remote(remote: RemoteStore) -> Self {
        Self::with_tiers(None, Some(remote))
    }

    /// Creates a session with any combination of the optional tiers:
    /// memory → disk → remote → simulate.
    pub fn with_tiers(store: Option<ResultStore>, remote: Option<RemoteStore>) -> Self {
        SimSession {
            store,
            remote,
            ..Self::default()
        }
    }

    /// The process-wide session every default-path run shares. Attaches
    /// the disk tier when the `DRI_STORE` environment variable names a
    /// usable directory, and the remote tier when `DRI_REMOTE` names a
    /// `dri-serve` instance (each decided once, at first use).
    pub fn global() -> &'static SimSession {
        static GLOBAL: OnceLock<SimSession> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            SimSession::with_tiers(ResultStore::from_env(), RemoteStore::from_env())
        })
    }

    /// The disk tier, if one is attached.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Snapshot of the disk tier's counters, if one is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(ResultStore::stats)
    }

    /// The remote tier, if one is attached.
    pub fn remote(&self) -> Option<&RemoteStore> {
        self.remote.as_ref()
    }

    /// Snapshot of the remote tier's counters, if one is attached.
    pub fn remote_stats(&self) -> Option<RemoteStats> {
        self.remote.as_ref().map(RemoteStore::stats)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock().expect("session stats lock")
    }

    /// The memoized workload for `cfg` (generated on first use).
    pub fn workload(&self, cfg: &RunConfig) -> Arc<Generated> {
        let key = (cfg.benchmark, cfg.seed_override);
        if let Some(found) = self.workloads.lock().expect("workload lock").get(&key) {
            self.stats.lock().expect("session stats lock").workload_hits += 1;
            return Arc::clone(found);
        }
        // Generate outside the lock: concurrent first uses may race and
        // both generate, but generation is deterministic so either result
        // is the canonical one.
        let generated = Arc::new(crate::runner::generate_workload(cfg));
        self.stats
            .lock()
            .expect("session stats lock")
            .workload_misses += 1;
        Arc::clone(
            self.workloads
                .lock()
                .expect("workload lock")
                .entry(key)
                .or_insert(generated),
        )
    }

    /// Loads a baseline run from the disk tier, or `None` on a miss or a
    /// rejected (corrupt / truncated / wrong-schema) entry.
    fn disk_conventional(&self, cfg: &RunConfig) -> Option<ConventionalRun> {
        self.store.as_ref()?.load_decoded(
            crate::persist::BASELINE_KIND,
            crate::persist::SCHEMA_VERSION,
            crate::persist::baseline_key(cfg),
            crate::persist::decode_conventional,
        )
    }

    /// Loads a DRI run from the disk tier (see [`Self::disk_conventional`]).
    fn disk_dri(&self, cfg: &RunConfig) -> Option<DriRun> {
        self.store.as_ref()?.load_decoded(
            crate::persist::DRI_KIND,
            crate::persist::SCHEMA_VERSION,
            crate::persist::dri_key(cfg),
            crate::persist::decode_dri,
        )
    }

    /// Fetches a record payload from the remote tier and heals it into
    /// the local disk tier (when one is attached): the record then never
    /// crosses the wire again from this machine. The payload arrived
    /// end-to-end validated (checksummed record, checked by the client);
    /// `decode` still bounds-checks every field, so a layout mismatch
    /// degrades to `None` → a local simulation, like any other miss.
    fn remote_fetch<T>(
        &self,
        kind: &str,
        key: u128,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let payload = self
            .remote
            .as_ref()?
            .fetch(kind, crate::persist::SCHEMA_VERSION, key)?;
        let value = decode(&payload)?;
        if let Some(store) = &self.store {
            store.save(kind, crate::persist::SCHEMA_VERSION, key, &payload);
        }
        Some(value)
    }

    /// Fetches a baseline run from the remote tier.
    fn remote_conventional(&self, cfg: &RunConfig) -> Option<ConventionalRun> {
        self.remote_fetch(
            crate::persist::BASELINE_KIND,
            crate::persist::baseline_key(cfg),
            crate::persist::decode_conventional,
        )
    }

    /// Fetches a DRI run from the remote tier.
    fn remote_dri(&self, cfg: &RunConfig) -> Option<DriRun> {
        self.remote_fetch(
            crate::persist::DRI_KIND,
            crate::persist::dri_key(cfg),
            crate::persist::decode_dri,
        )
    }

    /// The memoized baseline run for `cfg`: memory, then disk, then the
    /// remote service, then a fresh simulation (whose result is
    /// published to the local tiers).
    pub fn conventional(&self, cfg: &RunConfig) -> ConventionalRun {
        let key = BaselineKey::of(cfg);
        if let Some(found) = self.baselines.lock().expect("baseline lock").get(&key) {
            self.stats.lock().expect("session stats lock").baseline_hits += 1;
            return *found;
        }
        if let Some(run) = self.disk_conventional(cfg) {
            self.stats
                .lock()
                .expect("session stats lock")
                .baseline_disk_hits += 1;
            return *self
                .baselines
                .lock()
                .expect("baseline lock")
                .entry(key)
                .or_insert(run);
        }
        if let Some(run) = self.remote_conventional(cfg) {
            self.stats
                .lock()
                .expect("session stats lock")
                .baseline_remote_hits += 1;
            return *self
                .baselines
                .lock()
                .expect("baseline lock")
                .entry(key)
                .or_insert(run);
        }
        let run = crate::runner::run_conventional_fresh_in(self, cfg);
        self.stats
            .lock()
            .expect("session stats lock")
            .baseline_misses += 1;
        if let Some(store) = &self.store {
            store.save(
                crate::persist::BASELINE_KIND,
                crate::persist::SCHEMA_VERSION,
                crate::persist::baseline_key(cfg),
                &crate::persist::encode_conventional(&run),
            );
        }
        *self
            .baselines
            .lock()
            .expect("baseline lock")
            .entry(key)
            .or_insert(run)
    }

    /// The memoized DRI run for `cfg`: memory, then disk, then the
    /// remote service, then a fresh simulation (whose result is
    /// published to the local tiers).
    pub fn dri(&self, cfg: &RunConfig) -> DriRun {
        let key = DriKey::of(cfg);
        if let Some(found) = self.dri_runs.lock().expect("dri lock").get(&key) {
            self.stats.lock().expect("session stats lock").dri_hits += 1;
            return *found;
        }
        if let Some(run) = self.disk_dri(cfg) {
            self.stats.lock().expect("session stats lock").dri_disk_hits += 1;
            return *self
                .dri_runs
                .lock()
                .expect("dri lock")
                .entry(key)
                .or_insert(run);
        }
        if let Some(run) = self.remote_dri(cfg) {
            self.stats
                .lock()
                .expect("session stats lock")
                .dri_remote_hits += 1;
            return *self
                .dri_runs
                .lock()
                .expect("dri lock")
                .entry(key)
                .or_insert(run);
        }
        let run = crate::runner::run_dri_fresh_in(self, cfg);
        self.stats.lock().expect("session stats lock").dri_misses += 1;
        if let Some(store) = &self.store {
            store.save(
                crate::persist::DRI_KIND,
                crate::persist::SCHEMA_VERSION,
                crate::persist::dri_key(cfg),
                &crate::persist::encode_dri(&run),
            );
        }
        *self
            .dri_runs
            .lock()
            .expect("dri lock")
            .entry(key)
            .or_insert(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_generated_once_per_key() {
        let session = SimSession::new();
        let cfg = RunConfig::quick(Benchmark::Li);
        let a = session.workload(&cfg);
        let b = session.workload(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let stats = session.stats();
        assert_eq!(stats.workload_misses, 1);
        assert_eq!(stats.workload_hits, 1);

        let mut seeded = cfg.clone();
        seeded.seed_override = Some(7);
        let c = session.workload(&seeded);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different workload");
        assert_eq!(session.stats().workload_misses, 2);
    }

    #[test]
    fn baseline_is_shared_across_dri_parameter_changes() {
        let session = SimSession::new();
        let mut cfg = RunConfig::quick(Benchmark::Compress);
        cfg.instruction_budget = Some(100_000);
        let a = session.conventional(&cfg);
        // Miss-bound and size-bound do not touch the baseline geometry.
        cfg.dri.miss_bound *= 2;
        cfg.dri.size_bound_bytes = 8 * 1024;
        let b = session.conventional(&cfg);
        assert_eq!(a.timing.cycles, b.timing.cycles);
        let stats = session.stats();
        assert_eq!(stats.baseline_misses, 1);
        assert_eq!(stats.baseline_hits, 1);
        // A geometry change (associativity) is a different baseline.
        cfg.dri.associativity = 4;
        let _ = session.conventional(&cfg);
        assert_eq!(session.stats().baseline_misses, 2);
    }

    #[test]
    fn dri_runs_memoize_on_the_full_config() {
        let session = SimSession::new();
        let mut cfg = RunConfig::quick(Benchmark::Mgrid);
        cfg.instruction_budget = Some(100_000);
        let a = session.dri(&cfg);
        let b = session.dri(&cfg);
        assert_eq!(a.timing.cycles, b.timing.cycles);
        assert_eq!(session.stats().dri_hits, 1);
        cfg.dri.sense_interval /= 2;
        let _ = session.dri(&cfg);
        assert_eq!(session.stats().dri_misses, 2);
    }
}
