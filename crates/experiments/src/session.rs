//! The simulation session: process-wide memoization of workloads and runs.
//!
//! Every figure in the paper is assembled from *hundreds* of paired
//! baseline-vs-DRI simulations, and before this layer existed each
//! `run_conventional`/`run_dri` call regenerated its synthetic workload
//! from scratch and every sweep point re-simulated the baseline. A
//! [`SimSession`] eliminates that redundancy without changing a single
//! counter:
//!
//! * **Workloads** are memoized behind [`Arc`], keyed by
//!   `(Benchmark, seed override)`. Generation is deterministic in that
//!   key (see `synth_workload::generator`), so the cached program is the
//!   program a fresh generation would produce, and each workload is built
//!   exactly once per process no matter how many sweep points touch it.
//! * **Baseline (conventional) runs** are memoized by everything that can
//!   influence their counters: benchmark, seed, CPU configuration,
//!   hierarchy configuration, baseline i-cache geometry, and instruction
//!   budget. A parameter search over `n` (miss-bound × size-bound) points
//!   simulates the baseline once, not `n` times — and the search and the
//!   Figure 4–6 sweeps that follow it share that one run too.
//! * **Policy runs** (the DRI i-cache by default, or whichever model
//!   [`crate::runner::RunConfig::policy`] selects) are memoized by the
//!   same key plus the resolved [`PolicyConfig`], so a sweep whose base
//!   point was already visited by the parameter search reuses it instead
//!   of re-simulating — and two policies over one grid never alias.
//!
//! Simulations are deterministic (seeded RNGs, no wall-clock input), so a
//! cache hit is *bit-identical* to a fresh run — the regression tests in
//! `tests/session_identity.rs` assert this field by field. Results are
//! small `Copy` structs; workloads are the only cached values of any size.
//!
//! The global session is shared across threads (guarded by mutexes that
//! are held only for lookup/insert, never during a simulation), which is
//! what makes the parallel sweeps in [`crate::sweeps`] and
//! [`crate::harness::parallel_map`] cheap: concurrent sweep points fall
//! back to at most one redundant simulation per race, and typically none.
//!
//! ## The disk tier
//!
//! A session can additionally carry a [`dri_store::ResultStore`], making
//! the lookup order **memory → disk → simulate**. The global session
//! attaches one automatically when `DRI_STORE` names a directory (unset
//! = memory-only, so tests stay hermetic by default). Disk entries are
//! keyed by a stable content hash of everything that can influence the
//! counters (see [`crate::persist`]) and carry checksummed payloads, so
//! a loaded result is bit-identical to the simulation that produced it —
//! across processes, not just within one — and a corrupt or truncated
//! entry is silently recomputed and overwritten, never trusted.
//!
//! ## The remote tier
//!
//! A session can further carry a [`dri_serve::ShardedStore`] client,
//! making the full lookup order **memory → disk → remote → simulate**.
//! The global session attaches one when `DRI_REMOTE` names a `dri-serve`
//! instance or `DRI_SHARDS` names a whole fleet (again, unset = off) —
//! in a fleet, every record key is consistent-hashed to its owning
//! shards, batch traffic is split per shard, and reads fail over to
//! replicas when a shard dies. A remote hit is validated end-to-end
//! (the full checksummed record crosses the wire) and is immediately
//! **healed into the local disk tier** when one is attached, so a record
//! crosses the network at most once per worker; the remote service
//! itself is never written to. Remote failures of any kind — the server
//! is down, a response is truncated, a record is corrupt — degrade to
//! the next tier (a local simulation), exactly like disk corruption.
//!
//! ## Batch prefetch
//!
//! Sweeps and manifest-driven suites know their full configuration grid
//! before they run a point, so [`SimSession::prefetch`] resolves the
//! whole grid through the tiers **in bulk** before the per-point fan-out
//! starts: the grid's store keys are enumerated into a deduplicated
//! [`dri_store::KeyPlan`], records already in memory are skipped, the
//! local disk tier is swept once, and everything still missing is
//! fetched from the remote tier in a single chunked `POST /batch`
//! round-trip (healed into the local store on arrival). Only true misses
//! are left for the sweep's `parallel_map` workers to simulate. The pass
//! is purely a cache-warming step — every record it installs is the same
//! validated, bit-identical record the per-point lookup path would have
//! loaded — and it is on by default; `DRI_PREFETCH=0` (or `suite
//! --no-prefetch` / a manifest's `prefetch = off`) restores per-point
//! lookups. See `tests/batch_prefetch.rs` for the round-trip and
//! bit-identity proofs.
//!
//! ## Write-through push
//!
//! Prefetch heals records *downward* (remote → local disk); push mode
//! heals them **upward**. With `DRI_PUSH=1` (or `suite --push` / a
//! manifest's `push = on`) and a remote tier attached, every record this
//! session *simulates* — a true miss nothing could serve — is buffered,
//! and [`SimSession::push_pending`] sends the batch to the central
//! server after each sweep's fan-out, chunked exactly like prefetch's
//! `POST /batch` (one `POST /batch-put` per [`dri_serve::BATCH_CHUNK`]
//! records). Pushes are signed with the `DRI_TOKEN` shared secret (see
//! `dri_serve::auth`); a server that rejects them — wrong token,
//! read-only — costs one warning and the records simply stay local.
//! This is what turns a fleet of workers into one shared memoization
//! domain: each grid point is simulated once *fleet-wide*, by whichever
//! worker reaches it first (`tests/push_tier.rs` proves the full
//! two-pushers-one-cold-replayer scenario bit-identically).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dri_serve::{BatchEntry, PushOutcome, RemoteStats, RemoteStore, ShardedStore};
use dri_store::{KeyPlan, ResultStore, StoreStats};
use dri_telemetry::{trace, Histogram, Span, TraceEvent};

use cache_sim::config::CacheConfig;
use cache_sim::hierarchy::HierarchyConfig;
use dri_core::PolicyConfig;
use ooo_cpu::config::CpuConfig;
use synth_workload::suite::Benchmark;
use synth_workload::Generated;

use crate::runner::{ConventionalRun, DriRun, RunConfig};

/// Identifies a generated workload: the benchmark plus the optional seed
/// override (`None` = the benchmark's canonical seed).
pub type WorkloadKey = (Benchmark, Option<u64>);

/// Which tier a prefetched record arrived from (for stats accounting).
#[derive(Debug, Clone, Copy)]
enum TierHit {
    Disk,
    Remote,
}

/// Everything that can influence a conventional (baseline) run's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BaselineKey {
    benchmark: Benchmark,
    seed_override: Option<u64>,
    cpu: CpuConfig,
    hierarchy: HierarchyConfig,
    icache: CacheConfig,
    instruction_budget: Option<u64>,
}

impl BaselineKey {
    fn of(cfg: &RunConfig) -> Self {
        BaselineKey {
            benchmark: cfg.benchmark,
            seed_override: cfg.seed_override,
            cpu: cfg.cpu,
            hierarchy: cfg.hierarchy,
            icache: cfg.baseline_icache(),
            instruction_budget: cfg.instruction_budget,
        }
    }
}

/// Everything that can influence a leakage-policy run's counters. The
/// policy travels *resolved* ([`RunConfig::resolved_policy`]), so a
/// config with `policy: None` and one with an explicit identical DRI
/// selection share an entry, exactly as they share a store key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PolicyKey {
    benchmark: Benchmark,
    seed_override: Option<u64>,
    cpu: CpuConfig,
    hierarchy: HierarchyConfig,
    policy: PolicyConfig,
    instruction_budget: Option<u64>,
}

impl PolicyKey {
    fn of(cfg: &RunConfig) -> Self {
        PolicyKey {
            benchmark: cfg.benchmark,
            seed_override: cfg.seed_override,
            cpu: cfg.cpu,
            hierarchy: cfg.hierarchy,
            policy: cfg.resolved_policy(),
            instruction_budget: cfg.instruction_budget,
        }
    }
}

/// Cache-hit/miss counters, for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Workload cache hits.
    pub workload_hits: u64,
    /// Workloads generated (cache misses).
    pub workload_misses: u64,
    /// Baseline-run memory-cache hits.
    pub baseline_hits: u64,
    /// Baseline simulations executed (missed memory *and* disk).
    pub baseline_misses: u64,
    /// Baseline runs loaded from the disk store (no simulation ran).
    pub baseline_disk_hits: u64,
    /// Baseline runs fetched from the remote service (no simulation ran).
    pub baseline_remote_hits: u64,
    /// Policy-run memory-cache hits (the `dri_` prefix is historical:
    /// these count the non-baseline side of every pair, whichever
    /// leakage policy it runs).
    pub dri_hits: u64,
    /// Policy simulations executed (missed memory *and* disk).
    pub dri_misses: u64,
    /// Policy runs loaded from the disk store (no simulation ran).
    pub dri_disk_hits: u64,
    /// Policy runs fetched from the remote service (no simulation ran).
    pub dri_remote_hits: u64,
}

impl SessionStats {
    /// Total simulations this session actually executed.
    pub fn simulations(&self) -> u64 {
        self.baseline_misses + self.dri_misses
    }

    /// Total runs served from the disk tier.
    pub fn disk_hits(&self) -> u64 {
        self.baseline_disk_hits + self.dri_disk_hits
    }

    /// Total runs served from the remote tier.
    pub fn remote_hits(&self) -> u64 {
        self.baseline_remote_hits + self.dri_remote_hits
    }
}

/// Environment variable gating the bulk-prefetch pass. Prefetch is **on
/// by default**; set `DRI_PREFETCH=0` (or `off`/`false`/`no`) to restore
/// per-point tier lookups.
pub const PREFETCH_ENV: &str = "DRI_PREFETCH";

/// Whether sweeps/search should bulk-prefetch their grids through the
/// session tiers before fanning out (see [`SimSession::prefetch`]).
/// Reads [`PREFETCH_ENV`] afresh on every call, like the other `DRI_*`
/// switches, so a manifest's `prefetch =` option takes effect even after
/// the global session exists.
pub fn prefetch_enabled() -> bool {
    match std::env::var(PREFETCH_ENV) {
        Ok(raw) => !matches!(
            raw.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// Bulk-prefetches `cfgs` through the **global** session's tiers when
/// prefetch is enabled — the hook every sweep/search grid calls right
/// before its `parallel_map` fan-out. Returns the per-plan outcome
/// (`None` when prefetch is disabled).
pub fn prefetch_grid(cfgs: &[RunConfig]) -> Option<PrefetchStats> {
    prefetch_enabled().then(|| SimSession::global().prefetch(cfgs))
}

/// Environment variable gating write-through push mode. Push is **off by
/// default** (workers must opt in to writing at a shared host); set
/// `DRI_PUSH=1` (or `on`/`true`/`yes`) to enable it.
pub const PUSH_ENV: &str = "DRI_PUSH";

/// Whether locally simulated results should be pushed to the remote
/// result service after each sweep (see [`SimSession::push_pending`]).
/// Like the other `DRI_*` switches this reads [`PUSH_ENV`] afresh on
/// every call, so a manifest's `push =` option takes effect even after
/// the global session exists.
pub fn push_enabled() -> bool {
    match std::env::var(PUSH_ENV) {
        Ok(raw) => matches!(
            raw.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes"
        ),
        Err(_) => false,
    }
}

/// Pushes the **global** session's pending simulated records upward when
/// push mode is enabled — the hook every sweep/search calls right after
/// its `parallel_map` fan-out completes (the post-sweep mirror of
/// [`prefetch_grid`]). Returns the per-batch outcome (`None` when push
/// is disabled).
pub fn push_grid() -> Option<PushStats> {
    push_enabled().then(|| SimSession::global().push_pending())
}

/// Outcome counters of one (or, aggregated, every) write-through push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushStats {
    /// Push passes that had at least one pending record (empty passes —
    /// a fully warm sweep — cost nothing and count nothing).
    pub batches: u64,
    /// Records drained from the pending buffer and offered to the server.
    pub attempted: u64,
    /// Records the server validated and landed in its store.
    pub pushed: u64,
    /// Records the server definitively rejected (bad token, read-only
    /// server, or a frame that failed validation).
    pub rejected: u64,
    /// Records whose fate is unknown (transport failure mid-batch).
    pub failed: u64,
    /// `POST /batch-put` exchanges that reached the server
    /// (⌈attempted ∕ [`dri_serve::BATCH_CHUNK`]⌉ when all goes well).
    pub round_trips: u64,
}

/// Outcome counters of one (or, aggregated, every) bulk-prefetch pass.
///
/// Every planned record lands in exactly one of the four outcome
/// buckets: `memory_hits + disk_hits + remote_hits + misses == planned`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch passes executed.
    pub plans: u64,
    /// Records enumerated, summed over plans. Each plan dedups
    /// internally (a parameter search reuses one baseline across its
    /// whole grid, so a plan holds well under two records per grid
    /// point), but a record re-planned by a nested grid — a
    /// per-benchmark search inside an already-prefetched campaign —
    /// counts once per plan (it shows up again as a memory hit).
    pub planned: u64,
    /// Planned records already resident in the memory tier.
    pub memory_hits: u64,
    /// Planned records loaded from the local disk tier.
    pub disk_hits: u64,
    /// Planned records fetched from the remote tier (and healed into the
    /// local disk tier when one is attached).
    pub remote_hits: u64,
    /// Planned records no tier could serve — the simulations the sweep's
    /// workers will actually run.
    pub misses: u64,
    /// `POST /batch` round-trips the remote pass cost (0 for a plan the
    /// local tiers fully absorbed; ⌈remainder / `BATCH_CHUNK`⌉ otherwise).
    pub batch_round_trips: u64,
}

/// Per-tier lookup-resolution latency: each histogram holds the
/// wall-times of the
/// [`SimSession::conventional`]/[`SimSession::policy_run`] lookups
/// *answered by that tier* — so `memory` is the warm-path cost, `disk`
/// the load+decode cost, `remote` the round-trip cost, and `simulate`
/// the price of a true miss. Only populated on a **timed** session
/// ([`dri_telemetry::timing_enabled`] at construction, or
/// [`SessionBuilder::timed`]): the warm memory path runs in hundreds
/// of nanoseconds, where even two clock reads are visible, so untimed
/// sessions skip the clocks entirely.
#[derive(Debug, Default)]
pub struct TierLatency {
    /// Lookups the memory tier answered.
    pub memory: Histogram,
    /// Lookups the disk tier answered.
    pub disk: Histogram,
    /// Lookups the remote tier answered.
    pub remote: Histogram,
    /// Lookups that fell through to a fresh simulation.
    pub simulate: Histogram,
}

impl TierLatency {
    /// The histogram for a tier's outcome name.
    fn of(&self, tier: &str) -> &Histogram {
        match tier {
            "memory" => &self.memory,
            "disk" => &self.disk,
            "remote" => &self.remote,
            _ => &self.simulate,
        }
    }

    /// `(tier, histogram)` rows in lookup order — the suite's summary
    /// table iterates these.
    pub fn rows(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("memory", &self.memory),
            ("disk", &self.disk),
            ("remote", &self.remote),
            ("simulate", &self.simulate),
        ]
    }
}

/// Memoization scope for workloads and runs (see the module docs).
///
/// Most callers use [`SimSession::global`] through the `runner` free
/// functions; a fresh `SimSession::builder().build()` gives tests and
/// long-lived servers an isolated scope they can drop to release memory.
#[derive(Debug, Default)]
pub struct SimSession {
    workloads: Mutex<HashMap<WorkloadKey, Arc<Generated>>>,
    baselines: Mutex<HashMap<BaselineKey, ConventionalRun>>,
    dri_runs: Mutex<HashMap<PolicyKey, DriRun>>,
    stats: Mutex<SessionStats>,
    prefetch_totals: Mutex<PrefetchStats>,
    /// Store keys a successful remote exchange has definitively answered
    /// with a miss frame: the serving store does not hold them, so
    /// re-asking — from a nested grid's prefetch or from the per-point
    /// lookup that precedes a simulation — is pure wasted traffic. Never
    /// consulted for anything but skipping the remote tier; the disk and
    /// memory tiers still see every lookup.
    known_missing: Mutex<HashSet<u128>>,
    /// Encoded payloads of records this session *simulated* while push
    /// mode was active, awaiting the next [`Self::push_pending`] drain.
    /// Simulated-only by construction: disk/remote hits already exist
    /// upstream or arrived from there, so pushing them back would be
    /// redundant traffic.
    pending_push: Mutex<Vec<(&'static str, u128, Vec<u8>)>>,
    push_totals: Mutex<PushStats>,
    /// Test-facing push switch; the environment ([`push_enabled`]) is
    /// also consulted afresh on every simulation, so the global session
    /// honours a manifest's `push = on` even though it was constructed
    /// earlier.
    push: bool,
    /// Whether lookups are wall-clocked into [`Self::tier_latency`] (and
    /// traced). Resolved once at construction — see [`TierLatency`] for
    /// why the warm path must not read clocks by default. A session
    /// built by `Default::default()` is untimed.
    timed: bool,
    tier_latency: TierLatency,
    store: Option<ResultStore>,
    remote: Option<ShardedStore>,
}

/// Builds a [`SimSession`] from any combination of optional tiers and
/// switches — the one construction path (the former `new` /
/// `with_store` / `with_remote` / `with_tiers` / `with_tiers_push` /
/// `with_timing` constructor family kept drifting apart: PR 7 fixed a
/// flag one of them silently dropped).
///
/// Defaults: memory-only, push off, timing resolved from the
/// environment ([`dri_telemetry::timing_enabled`]) at `build()` unless
/// [`Self::timed`] pins it.
///
/// ```
/// use dri_experiments::session::SimSession;
///
/// let session = SimSession::builder().build(); // memory-only
/// assert!(session.store().is_none() && session.remote().is_none());
/// ```
#[derive(Debug, Default)]
pub struct SessionBuilder {
    store: Option<ResultStore>,
    remote: Option<ShardedStore>,
    push: bool,
    timed: Option<bool>,
}

impl SessionBuilder {
    /// Attaches (or, with `None`, omits) the disk tier.
    pub fn store(mut self, store: impl Into<Option<ResultStore>>) -> Self {
        self.store = store.into();
        self
    }

    /// Attaches (or, with `None`, omits) the remote tier as a
    /// single-server client (the common test/bench shape). Wrapped as a
    /// one-shard [`ShardedStore`] internally — routing degenerates to
    /// pass-through, so the single-remote protocol is unchanged.
    pub fn remote(mut self, remote: impl Into<Option<RemoteStore>>) -> Self {
        self.remote = remote.into().map(ShardedStore::single);
        self
    }

    /// Attaches (or, with `None`, omits) the remote tier as a sharded
    /// fleet client — batch traffic splits per owning shard and reads
    /// fail over to replicas.
    pub fn sharded(mut self, remote: impl Into<Option<ShardedStore>>) -> Self {
        self.remote = remote.into();
        self
    }

    /// Sets write-through push mode explicitly (tests use this instead
    /// of mutating the process environment; `DRI_PUSH` is still
    /// consulted afresh on every simulation either way).
    pub fn push(mut self, push: bool) -> Self {
        self.push = push;
        self
    }

    /// Pins lookup timing instead of resolving it from the environment —
    /// the bench harness uses `.timed(true)` to measure the timed warm
    /// path without touching the process environment.
    pub fn timed(mut self, timed: bool) -> Self {
        self.timed = Some(timed);
        self
    }

    /// Finishes the session.
    pub fn build(self) -> SimSession {
        SimSession {
            store: self.store,
            remote: self.remote,
            push: self.push,
            timed: self.timed.unwrap_or_else(dri_telemetry::timing_enabled),
            ..SimSession::default()
        }
    }
}

impl SimSession {
    /// Starts building a session; see [`SessionBuilder`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The process-wide session every default-path run shares. Attaches
    /// the disk tier when the `DRI_STORE` environment variable names a
    /// usable directory, and the remote tier when `DRI_SHARDS` names a
    /// serve fleet or `DRI_REMOTE` a single `dri-serve` instance (each
    /// decided once, at first use).
    pub fn global() -> &'static SimSession {
        static GLOBAL: OnceLock<SimSession> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            SimSession::builder()
                .store(ResultStore::from_env())
                .sharded(ShardedStore::from_env())
                .build()
        })
    }

    /// The disk tier, if one is attached.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Snapshot of the disk tier's counters, if one is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(ResultStore::stats)
    }

    /// The remote tier, if one is attached: a fleet client that is a
    /// plain pass-through when it holds a single shard.
    pub fn remote(&self) -> Option<&ShardedStore> {
        self.remote.as_ref()
    }

    /// Snapshot of the remote tier's counters (summed over shards), if
    /// one is attached.
    pub fn remote_stats(&self) -> Option<RemoteStats> {
        self.remote.as_ref().map(ShardedStore::stats)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock().expect("session stats lock")
    }

    /// Per-tier lookup-resolution latency histograms (empty unless the
    /// session is timed — see [`TierLatency`]).
    pub fn tier_latency(&self) -> &TierLatency {
        &self.tier_latency
    }

    /// Whether lookups are wall-clocked (and traced) on this session.
    pub fn is_timed(&self) -> bool {
        self.timed
    }

    /// Aggregate of every [`Self::prefetch`] pass this session ran.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        *self.prefetch_totals.lock().expect("prefetch totals lock")
    }

    /// Aggregate of every [`Self::push_pending`] drain this session ran.
    pub fn push_stats(&self) -> PushStats {
        *self.push_totals.lock().expect("push totals lock")
    }

    /// Whether fresh simulations should be buffered for upward push:
    /// push mode is on (session flag or `DRI_PUSH`), and there is a
    /// remote tier to push to.
    fn push_active(&self) -> bool {
        self.remote.is_some() && (self.push || push_enabled())
    }

    /// Buffers one freshly simulated record for the next push drain.
    fn buffer_push(&self, kind: &'static str, key: u128, payload: Vec<u8>) {
        self.pending_push
            .lock()
            .expect("pending push lock")
            .push((kind, key, payload));
    }

    /// Drains the pending-push buffer to the remote service in one
    /// chunked `POST /batch-put` pass — the post-sweep mirror of
    /// [`Self::prefetch`]. Every buffered payload is framed into the
    /// same self-validating record the local store persists
    /// ([`dri_store::frame_record`]), so the server re-validates
    /// end-to-end before a byte lands. Best-effort by design: rejected
    /// and failed records are dropped from the buffer (they live on in
    /// this worker's local tiers), counted, and never retried — a dead
    /// or read-only server must not add latency to every sweep.
    ///
    /// No-op (and no exchange) when the buffer is empty or no remote
    /// tier is attached.
    pub fn push_pending(&self) -> PushStats {
        let pending: Vec<(&'static str, u128, Vec<u8>)> = {
            let mut buffer = self.pending_push.lock().expect("pending push lock");
            std::mem::take(&mut *buffer)
        };
        let mut report = PushStats::default();
        let Some(remote) = &self.remote else {
            return report;
        };
        if pending.is_empty() {
            return report;
        }
        report.batches = 1;
        report.attempted = pending.len() as u64;
        let records: Vec<(&'static str, u128, Vec<u8>)> = pending
            .into_iter()
            .map(|(kind, key, payload)| {
                (
                    kind,
                    key,
                    dri_store::frame_record(crate::persist::SCHEMA_VERSION, key, &payload),
                )
            })
            .collect();
        let entries: Vec<(&str, u32, u128, &[u8])> = records
            .iter()
            .map(|(kind, key, record)| {
                (
                    *kind,
                    crate::persist::SCHEMA_VERSION,
                    *key,
                    record.as_slice(),
                )
            })
            .collect();
        let (outcomes, round_trips) = remote.push_batch_chunked(&entries, dri_serve::BATCH_CHUNK);
        report.round_trips = round_trips;
        for outcome in outcomes {
            match outcome {
                PushOutcome::Accepted => report.pushed += 1,
                PushOutcome::Rejected => report.rejected += 1,
                PushOutcome::Failed => report.failed += 1,
            }
        }
        let mut totals = self.push_totals.lock().expect("push totals lock");
        totals.batches += report.batches;
        totals.attempted += report.attempted;
        totals.pushed += report.pushed;
        totals.rejected += report.rejected;
        totals.failed += report.failed;
        totals.round_trips += report.round_trips;
        report
    }

    /// Resolves the whole configuration grid through the cache tiers in
    /// bulk, before any per-point lookup runs (see the module docs):
    ///
    /// 1. every grid point's baseline and DRI store keys are enumerated
    ///    into one deduplicated [`KeyPlan`];
    /// 2. records already in the memory tier are skipped;
    /// 3. the local disk tier is swept for the remainder;
    /// 4. what is still missing is fetched from the remote tier in one
    ///    chunked `POST /batch` pass, each arrival healed into the local
    ///    disk tier;
    /// 5. true misses are left for the caller's fan-out to simulate —
    ///    and the ones a successful exchange *definitively* reported
    ///    absent are remembered, so nested plans and the per-point
    ///    lookups that precede those simulations never re-ask the
    ///    server for records it is known not to hold.
    ///
    /// Disk and remote arrivals are installed into the memory tier and
    /// counted in [`SessionStats`] exactly as per-point lookups would
    /// have counted them, so a prefetched grid replays with the same
    /// observable tier accounting — just fewer round-trips. The pass
    /// never simulates; an empty (or fully memory-warm) plan touches
    /// neither the disk nor the network.
    pub fn prefetch(&self, cfgs: &[RunConfig]) -> PrefetchStats {
        // Traced as one `kind:"prefetch"` span covering the whole plan;
        // the outcome labels carry the per-tier split so a trace alone
        // reconstructs the bulk pass without the stderr summary.
        let trace_start = trace::enabled().then(|| (trace::now_us(), Instant::now()));
        let mut report = PrefetchStats {
            plans: 1,
            ..PrefetchStats::default()
        };

        // 1–2. Enumerate the deduplicated key grid, skipping records the
        // memory tier already holds. The map locks are held only for the
        // membership probes, never across I/O.
        let mut plan = KeyPlan::new();
        let mut pending_baselines: Vec<(u128, BaselineKey, &RunConfig)> = Vec::new();
        let mut pending_dri: Vec<(u128, PolicyKey, &RunConfig)> = Vec::new();
        {
            let baselines = self.baselines.lock().expect("baseline lock");
            let dri_runs = self.dri_runs.lock().expect("dri lock");
            for cfg in cfgs {
                let store_key = crate::persist::baseline_key(cfg);
                if plan.push(
                    crate::persist::BASELINE_KIND,
                    crate::persist::SCHEMA_VERSION,
                    store_key,
                ) {
                    report.planned += 1;
                    let key = BaselineKey::of(cfg);
                    if baselines.contains_key(&key) {
                        report.memory_hits += 1;
                    } else {
                        pending_baselines.push((store_key, key, cfg));
                    }
                }
                let store_key = crate::persist::policy_key(cfg);
                if plan.push(
                    crate::persist::policy_kind(cfg),
                    crate::persist::SCHEMA_VERSION,
                    store_key,
                ) {
                    report.planned += 1;
                    let key = PolicyKey::of(cfg);
                    if dri_runs.contains_key(&key) {
                        report.memory_hits += 1;
                    } else {
                        pending_dri.push((store_key, key, cfg));
                    }
                }
            }
        }

        // 3. One pass over the local disk tier.
        if self.store.is_some() {
            pending_baselines.retain(|&(store_key, key, cfg)| match self.disk_conventional(cfg) {
                Some(run) => {
                    debug_assert_eq!(store_key, crate::persist::baseline_key(cfg));
                    self.install_baseline(key, run, TierHit::Disk);
                    report.disk_hits += 1;
                    false
                }
                None => true,
            });
            pending_dri.retain(|&(store_key, key, cfg)| match self.disk_policy(cfg) {
                Some(run) => {
                    debug_assert_eq!(store_key, crate::persist::policy_key(cfg));
                    self.install_dri(key, run, TierHit::Disk);
                    report.disk_hits += 1;
                    false
                }
                None => true,
            });
        }

        // Records a prior exchange definitively reported missing from
        // the serving store go straight to the simulate bucket — a
        // nested grid (a per-benchmark search inside an already-planned
        // campaign) must not re-ask for guaranteed misses.
        {
            let missing = self.known_missing.lock().expect("known-missing lock");
            if !missing.is_empty() {
                pending_baselines.retain(|(store_key, _, _)| {
                    let skip = missing.contains(store_key);
                    report.misses += u64::from(skip);
                    !skip
                });
                pending_dri.retain(|(store_key, _, _)| {
                    let skip = missing.contains(store_key);
                    report.misses += u64::from(skip);
                    !skip
                });
            }
        }

        // 4. One chunked batch fetch for everything still missing.
        let remainder = pending_baselines.len() + pending_dri.len();
        match (&self.remote, remainder) {
            (Some(remote), 1..) => {
                let mut entries: Vec<(&str, u32, u128)> = Vec::with_capacity(remainder);
                entries.extend(pending_baselines.iter().map(|&(store_key, _, _)| {
                    (
                        crate::persist::BASELINE_KIND,
                        crate::persist::SCHEMA_VERSION,
                        store_key,
                    )
                }));
                entries.extend(pending_dri.iter().map(|&(store_key, _, cfg)| {
                    (
                        crate::persist::policy_kind(cfg),
                        crate::persist::SCHEMA_VERSION,
                        store_key,
                    )
                }));
                let (outcomes, round_trips) =
                    remote.fetch_batch_outcomes(&entries, dri_serve::BATCH_CHUNK);
                report.batch_round_trips = round_trips;
                let mut outcomes = outcomes.into_iter();
                let mut definitive_misses: Vec<u128> = Vec::new();
                for (store_key, key, _) in pending_baselines {
                    match outcomes.next() {
                        Some(BatchEntry::Hit(payload)) => {
                            match crate::persist::decode_conventional(&payload) {
                                Some(run) => {
                                    self.heal(crate::persist::BASELINE_KIND, store_key, &payload);
                                    self.install_baseline(key, run, TierHit::Remote);
                                    report.remote_hits += 1;
                                }
                                None => report.misses += 1,
                            }
                        }
                        Some(BatchEntry::Miss) => {
                            definitive_misses.push(store_key);
                            report.misses += 1;
                        }
                        _ => report.misses += 1,
                    }
                }
                for (store_key, key, cfg) in pending_dri {
                    match outcomes.next() {
                        Some(BatchEntry::Hit(payload)) => {
                            match crate::persist::decode_dri(&payload) {
                                Some(run) => {
                                    self.heal(
                                        crate::persist::policy_kind(cfg),
                                        store_key,
                                        &payload,
                                    );
                                    self.install_dri(key, run, TierHit::Remote);
                                    report.remote_hits += 1;
                                }
                                None => report.misses += 1,
                            }
                        }
                        Some(BatchEntry::Miss) => {
                            definitive_misses.push(store_key);
                            report.misses += 1;
                        }
                        _ => report.misses += 1,
                    }
                }
                if !definitive_misses.is_empty() {
                    self.known_missing
                        .lock()
                        .expect("known-missing lock")
                        .extend(definitive_misses);
                }
            }
            // 5. No remote tier (or nothing left): the rest simulates.
            _ => report.misses += remainder as u64,
        }

        let mut totals = self.prefetch_totals.lock().expect("prefetch totals lock");
        totals.plans += report.plans;
        totals.planned += report.planned;
        totals.memory_hits += report.memory_hits;
        totals.disk_hits += report.disk_hits;
        totals.remote_hits += report.remote_hits;
        totals.misses += report.misses;
        totals.batch_round_trips += report.batch_round_trips;
        drop(totals);
        if let Some((ts_us, started)) = trace_start {
            let mut event = TraceEvent::new("prefetch", "plan")
                .outcome("resolved")
                .label("planned", &report.planned.to_string())
                .label("memory", &report.memory_hits.to_string())
                .label("disk", &report.disk_hits.to_string())
                .label("remote", &report.remote_hits.to_string())
                .label("misses", &report.misses.to_string())
                .label("round_trips", &report.batch_round_trips.to_string());
            event.ts_us = ts_us;
            event.dur_us = Some(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
            event.emit();
        }
        report
    }

    /// Publishes a prefetched baseline run to the memory tier with the
    /// same [`SessionStats`] accounting the per-point lookup would apply.
    fn install_baseline(&self, key: BaselineKey, run: ConventionalRun, tier: TierHit) {
        {
            let mut stats = self.stats.lock().expect("session stats lock");
            match tier {
                TierHit::Disk => stats.baseline_disk_hits += 1,
                TierHit::Remote => stats.baseline_remote_hits += 1,
            }
        }
        self.baselines
            .lock()
            .expect("baseline lock")
            .entry(key)
            .or_insert(run);
    }

    /// Publishes a prefetched policy run to the memory tier (see
    /// [`Self::install_baseline`]).
    fn install_dri(&self, key: PolicyKey, run: DriRun, tier: TierHit) {
        {
            let mut stats = self.stats.lock().expect("session stats lock");
            match tier {
                TierHit::Disk => stats.dri_disk_hits += 1,
                TierHit::Remote => stats.dri_remote_hits += 1,
            }
        }
        self.dri_runs
            .lock()
            .expect("dri lock")
            .entry(key)
            .or_insert(run);
    }

    /// Writes a remotely fetched payload through to the local disk tier.
    fn heal(&self, kind: &str, key: u128, payload: &[u8]) {
        if let Some(store) = &self.store {
            store.save(kind, crate::persist::SCHEMA_VERSION, key, payload);
        }
    }

    /// The memoized workload for `cfg` (generated on first use).
    pub fn workload(&self, cfg: &RunConfig) -> Arc<Generated> {
        let key = (cfg.benchmark, cfg.seed_override);
        if let Some(found) = self.workloads.lock().expect("workload lock").get(&key) {
            self.stats.lock().expect("session stats lock").workload_hits += 1;
            return Arc::clone(found);
        }
        // Generate outside the lock: concurrent first uses may race and
        // both generate, but generation is deterministic so either result
        // is the canonical one.
        let generated = Arc::new(crate::runner::generate_workload(cfg));
        self.stats
            .lock()
            .expect("session stats lock")
            .workload_misses += 1;
        Arc::clone(
            self.workloads
                .lock()
                .expect("workload lock")
                .entry(key)
                .or_insert(generated),
        )
    }

    /// Loads a baseline run from the disk tier, or `None` on a miss or a
    /// rejected (corrupt / truncated / wrong-schema) entry.
    fn disk_conventional(&self, cfg: &RunConfig) -> Option<ConventionalRun> {
        self.store.as_ref()?.load_decoded(
            crate::persist::BASELINE_KIND,
            crate::persist::SCHEMA_VERSION,
            crate::persist::baseline_key(cfg),
            crate::persist::decode_conventional,
        )
    }

    /// Loads a policy run from the disk tier (see
    /// [`Self::disk_conventional`]). Every policy kind shares the
    /// [`crate::persist::decode_dri`] payload layout; only the key and
    /// the kind directory differ.
    fn disk_policy(&self, cfg: &RunConfig) -> Option<DriRun> {
        self.store.as_ref()?.load_decoded(
            crate::persist::policy_kind(cfg),
            crate::persist::SCHEMA_VERSION,
            crate::persist::policy_key(cfg),
            crate::persist::decode_dri,
        )
    }

    /// Fetches a record payload from the remote tier and heals it into
    /// the local disk tier (when one is attached): the record then never
    /// crosses the wire again from this machine. The payload arrived
    /// end-to-end validated (checksummed record, checked by the client);
    /// `decode` still bounds-checks every field, so a layout mismatch
    /// degrades to `None` → a local simulation, like any other miss.
    fn remote_fetch<T>(
        &self,
        kind: &str,
        key: u128,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let remote = self.remote.as_ref()?;
        // A prior batch exchange definitively established the record is
        // absent from the serving store: skip straight to simulation
        // rather than re-asking per point.
        if self
            .known_missing
            .lock()
            .expect("known-missing lock")
            .contains(&key)
        {
            return None;
        }
        let payload = remote.fetch(kind, crate::persist::SCHEMA_VERSION, key)?;
        let value = decode(&payload)?;
        if let Some(store) = &self.store {
            store.save(kind, crate::persist::SCHEMA_VERSION, key, &payload);
        }
        Some(value)
    }

    /// Fetches a baseline run from the remote tier.
    fn remote_conventional(&self, cfg: &RunConfig) -> Option<ConventionalRun> {
        self.remote_fetch(
            crate::persist::BASELINE_KIND,
            crate::persist::baseline_key(cfg),
            crate::persist::decode_conventional,
        )
    }

    /// Fetches a policy run from the remote tier.
    fn remote_policy(&self, cfg: &RunConfig) -> Option<DriRun> {
        self.remote_fetch(
            crate::persist::policy_kind(cfg),
            crate::persist::policy_key(cfg),
            crate::persist::decode_dri,
        )
    }

    /// The memoized baseline run for `cfg`: memory, then disk, then the
    /// remote service, then a fresh simulation (whose result is
    /// published to the local tiers). On a timed session the resolution
    /// is wall-clocked into [`Self::tier_latency`] (bucketed by the tier
    /// that answered) and emitted as a `kind:"tier"` trace span; the
    /// resolution itself — and therefore every counter in the result —
    /// is identical either way.
    pub fn conventional(&self, cfg: &RunConfig) -> ConventionalRun {
        if !self.timed {
            return self.conventional_resolve(cfg).0;
        }
        let span = Span::begin("tier", "conventional").label("benchmark", cfg.benchmark.name());
        let (run, tier) = self.conventional_resolve(cfg);
        let elapsed = span.finish(tier);
        self.tier_latency.of(tier).record_duration(elapsed);
        run
    }

    /// The tier fall-through behind [`Self::conventional`]; names the
    /// tier that answered so the timed wrapper can attribute the cost.
    fn conventional_resolve(&self, cfg: &RunConfig) -> (ConventionalRun, &'static str) {
        let key = BaselineKey::of(cfg);
        if let Some(found) = self.baselines.lock().expect("baseline lock").get(&key) {
            self.stats.lock().expect("session stats lock").baseline_hits += 1;
            return (*found, "memory");
        }
        if let Some(run) = self.disk_conventional(cfg) {
            self.stats
                .lock()
                .expect("session stats lock")
                .baseline_disk_hits += 1;
            return (
                *self
                    .baselines
                    .lock()
                    .expect("baseline lock")
                    .entry(key)
                    .or_insert(run),
                "disk",
            );
        }
        if let Some(run) = self.remote_conventional(cfg) {
            self.stats
                .lock()
                .expect("session stats lock")
                .baseline_remote_hits += 1;
            return (
                *self
                    .baselines
                    .lock()
                    .expect("baseline lock")
                    .entry(key)
                    .or_insert(run),
                "remote",
            );
        }
        let run = crate::runner::run_conventional_fresh_in(self, cfg);
        self.stats
            .lock()
            .expect("session stats lock")
            .baseline_misses += 1;
        let push = self.push_active();
        if self.store.is_some() || push {
            let store_key = crate::persist::baseline_key(cfg);
            let payload = crate::persist::encode_conventional(&run);
            if let Some(store) = &self.store {
                store.save(
                    crate::persist::BASELINE_KIND,
                    crate::persist::SCHEMA_VERSION,
                    store_key,
                    &payload,
                );
            }
            if push {
                self.buffer_push(crate::persist::BASELINE_KIND, store_key, payload);
            }
        }
        (
            *self
                .baselines
                .lock()
                .expect("baseline lock")
                .entry(key)
                .or_insert(run),
            "simulate",
        )
    }

    /// The memoized leakage-policy run for `cfg` (DRI unless
    /// [`RunConfig::policy`] selects another model): memory, then disk,
    /// then the remote service, then a fresh simulation (whose result is
    /// published to the local tiers). Timed exactly like
    /// [`Self::conventional`]; the trace span is named after the policy
    /// kind, so a trace distinguishes the models at a glance.
    pub fn policy_run(&self, cfg: &RunConfig) -> DriRun {
        if !self.timed {
            return self.policy_resolve(cfg).0;
        }
        let span = Span::begin("tier", crate::persist::policy_kind(cfg))
            .label("benchmark", cfg.benchmark.name());
        let (run, tier) = self.policy_resolve(cfg);
        let elapsed = span.finish(tier);
        self.tier_latency.of(tier).record_duration(elapsed);
        run
    }

    /// The tier fall-through behind [`Self::policy_run`].
    fn policy_resolve(&self, cfg: &RunConfig) -> (DriRun, &'static str) {
        let key = PolicyKey::of(cfg);
        if let Some(found) = self.dri_runs.lock().expect("dri lock").get(&key) {
            self.stats.lock().expect("session stats lock").dri_hits += 1;
            return (*found, "memory");
        }
        if let Some(run) = self.disk_policy(cfg) {
            self.stats.lock().expect("session stats lock").dri_disk_hits += 1;
            return (
                *self
                    .dri_runs
                    .lock()
                    .expect("dri lock")
                    .entry(key)
                    .or_insert(run),
                "disk",
            );
        }
        if let Some(run) = self.remote_policy(cfg) {
            self.stats
                .lock()
                .expect("session stats lock")
                .dri_remote_hits += 1;
            return (
                *self
                    .dri_runs
                    .lock()
                    .expect("dri lock")
                    .entry(key)
                    .or_insert(run),
                "remote",
            );
        }
        let run = crate::runner::run_policy_fresh_in(self, cfg);
        self.stats.lock().expect("session stats lock").dri_misses += 1;
        let push = self.push_active();
        if self.store.is_some() || push {
            let kind = crate::persist::policy_kind(cfg);
            let store_key = crate::persist::policy_key(cfg);
            let payload = crate::persist::encode_dri(&run);
            if let Some(store) = &self.store {
                store.save(kind, crate::persist::SCHEMA_VERSION, store_key, &payload);
            }
            if push {
                self.buffer_push(kind, store_key, payload);
            }
        }
        (
            *self
                .dri_runs
                .lock()
                .expect("dri lock")
                .entry(key)
                .or_insert(run),
            "simulate",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_generated_once_per_key() {
        let session = SimSession::builder().build();
        let cfg = RunConfig::quick(Benchmark::Li);
        let a = session.workload(&cfg);
        let b = session.workload(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let stats = session.stats();
        assert_eq!(stats.workload_misses, 1);
        assert_eq!(stats.workload_hits, 1);

        let mut seeded = cfg.clone();
        seeded.seed_override = Some(7);
        let c = session.workload(&seeded);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different workload");
        assert_eq!(session.stats().workload_misses, 2);
    }

    #[test]
    fn baseline_is_shared_across_dri_parameter_changes() {
        let session = SimSession::builder().build();
        let mut cfg = RunConfig::quick(Benchmark::Compress);
        cfg.instruction_budget = Some(100_000);
        let a = session.conventional(&cfg);
        // Miss-bound and size-bound do not touch the baseline geometry.
        cfg.dri.miss_bound *= 2;
        cfg.dri.size_bound_bytes = 8 * 1024;
        let b = session.conventional(&cfg);
        assert_eq!(a.timing.cycles, b.timing.cycles);
        let stats = session.stats();
        assert_eq!(stats.baseline_misses, 1);
        assert_eq!(stats.baseline_hits, 1);
        // A geometry change (associativity) is a different baseline.
        cfg.dri.associativity = 4;
        let _ = session.conventional(&cfg);
        assert_eq!(session.stats().baseline_misses, 2);
    }

    #[test]
    fn push_mode_buffers_simulations_and_survives_a_dead_server() {
        let session = SimSession::builder()
            .remote(RemoteStore::new("127.0.0.1:1"))
            .push(true)
            .build();
        let mut cfg = RunConfig::quick(Benchmark::Li);
        cfg.instruction_budget = Some(60_000);
        let _ = session.conventional(&cfg);
        let _ = session.policy_run(&cfg);
        let report = session.push_pending();
        assert_eq!(report.batches, 1);
        assert_eq!(report.attempted, 2, "baseline + dri were buffered");
        assert_eq!(report.pushed, 0);
        assert_eq!(report.failed, 2, "a dead server fails, never blocks");
        assert_eq!(report.round_trips, 0, "the connection never opened");
        // The buffer drained: a second pass has nothing to do.
        assert_eq!(session.push_pending().batches, 0);
        assert_eq!(session.push_stats().attempted, 2, "totals aggregate");
        // Memory/tier hits are never buffered — only true simulations.
        let _ = session.policy_run(&cfg);
        assert_eq!(session.push_pending().attempted, 0);

        // With push mode off nothing accumulates in the first place.
        let quiet = SimSession::builder()
            .remote(RemoteStore::new("127.0.0.1:1"))
            .build();
        let _ = quiet.policy_run(&cfg);
        assert_eq!(quiet.push_pending().attempted, 0);
    }

    #[test]
    fn dri_runs_memoize_on_the_full_config() {
        let session = SimSession::builder().build();
        let mut cfg = RunConfig::quick(Benchmark::Mgrid);
        cfg.instruction_budget = Some(100_000);
        let a = session.policy_run(&cfg);
        let b = session.policy_run(&cfg);
        assert_eq!(a.timing.cycles, b.timing.cycles);
        assert_eq!(session.stats().dri_hits, 1);
        cfg.dri.sense_interval /= 2;
        let _ = session.policy_run(&cfg);
        assert_eq!(session.stats().dri_misses, 2);
    }

    #[test]
    fn policies_memoize_under_disjoint_keys() {
        let session = SimSession::builder().build();
        let mut cfg = RunConfig::quick(Benchmark::Li);
        cfg.instruction_budget = Some(60_000);
        let dri = session.policy_run(&cfg);
        cfg.policy = Some(PolicyConfig::Decay(PolicyConfig::decay_from(&cfg.dri)));
        let decay = session.policy_run(&cfg);
        // Two models, two simulations, no aliasing — and an explicit
        // DRI selection lands back on the default entry.
        assert_eq!(session.stats().dri_misses, 2);
        cfg.policy = Some(PolicyConfig::Dri(cfg.dri));
        let explicit = session.policy_run(&cfg);
        assert_eq!(session.stats().dri_hits, 1);
        assert_eq!(explicit.timing.cycles, dri.timing.cycles);
        assert_ne!(
            (decay.dri.avg_active_fraction, decay.dri.resizes),
            (dri.dri.avg_active_fraction, dri.dri.resizes),
            "decay gates per line; its accounting must differ from DRI's"
        );
    }
}
