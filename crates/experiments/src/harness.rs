//! Shared plumbing for the experiment binaries.

use crate::runner::RunConfig;
use crate::search::SearchSpace;
use dri_core::PolicyConfig;
use synth_workload::suite::Benchmark;

/// Whether quick mode is enabled (`DRI_QUICK=1`): smaller search grids and
/// shorter runs, for smoke-testing the harness.
pub fn quick_mode() -> bool {
    std::env::var_os("DRI_QUICK").is_some_and(|v| v != "0")
}

/// Worker threads to use for benchmark- and sweep-level parallelism.
///
/// Defaults to the machine's available parallelism; `DRI_THREADS=n`
/// overrides it (`DRI_THREADS=1` forces fully serial execution, which is
/// also the automatic behaviour on single-core hosts; `0` is clamped to
/// `1` as it always was). A value that does not parse as an integer is
/// **rejected with a warning** (once per process) rather than silently
/// ignored — a typo like `DRI_THREADS=4x` used to fall back to all cores
/// without a trace.
pub fn threads() -> usize {
    match std::env::var("DRI_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => warn_bad_threads(&raw),
        },
        Err(std::env::VarError::NotUnicode(raw)) => {
            warn_bad_threads(&raw.to_string_lossy());
        }
        Err(std::env::VarError::NotPresent) => {}
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Warns (once) that `DRI_THREADS` was set to something unusable.
fn warn_bad_threads(raw: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: DRI_THREADS={raw:?} is not an integer; \
             falling back to the machine's available parallelism"
        );
    });
}

/// Workers currently spawned by [`parallel_map`] across the process, so
/// nested maps (a per-benchmark fan-out whose body runs a per-point
/// fan-out) share one budget instead of multiplying to `threads()²`
/// CPU-bound threads.
static ACTIVE_WORKERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Applies `f` to every item across scoped workers (at most [`threads`]
/// process-wide, shared with any enclosing `parallel_map`), returning
/// results in input order. Runs inline when one worker (or one item)
/// suffices, so single-core hosts — and the innermost level of a nested
/// fan-out — pay no thread overhead.
///
/// Work is claimed from a shared atomic cursor, so uneven item costs
/// (a thrashing sweep point next to a quiet one) still pack tightly.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_capped(threads(), items, f)
}

/// [`parallel_map`] with an explicit worker cap (still bounded by the
/// shared process-wide budget).
pub fn parallel_map_capped<T: Sync, R: Send>(
    cap: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    use std::sync::atomic::Ordering;
    let budget = threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::SeqCst));
    let workers = budget.min(cap).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    ACTIVE_WORKERS.fetch_add(workers, Ordering::SeqCst);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                results.lock().expect("parallel_map results").push((i, out));
            });
        }
    });
    ACTIVE_WORKERS.fetch_sub(workers, Ordering::SeqCst);
    let mut indexed = results.into_inner().expect("parallel_map results");
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Environment variable restricting which benchmarks the figure suites
/// run: a comma-separated list of benchmark names (`compress,gcc,li`).
/// Unset or empty = every benchmark. This is the fleet-splitting knob:
/// two workers pointed at one pushing store each take a disjoint half of
/// a campaign (manifest `benchmarks =` sets the same variable).
pub const BENCHMARKS_ENV: &str = "DRI_BENCHMARKS";

/// The benchmarks the figure suites should cover: all fifteen, unless
/// [`BENCHMARKS_ENV`] names a subset. Order always follows the paper's
/// presentation order regardless of how the list was written. Unknown
/// names warn (once per process) and are skipped; a selection that names
/// nothing valid falls back to the full suite rather than silently
/// producing empty figures.
pub fn selected_benchmarks() -> Vec<Benchmark> {
    let all = Benchmark::all();
    let Ok(raw) = std::env::var(BENCHMARKS_ENV) else {
        return all.to_vec();
    };
    if raw.trim().is_empty() {
        return all.to_vec();
    }
    let mut wanted: Vec<&str> = Vec::new();
    for name in raw.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        if all.iter().any(|b| b.name() == name) {
            wanted.push(name);
        } else {
            warn_bad_benchmark(name);
        }
    }
    if wanted.is_empty() {
        return all.to_vec();
    }
    all.into_iter()
        .filter(|b| wanted.contains(&b.name()))
        .collect()
}

/// Warns (once per process) that `DRI_BENCHMARKS` named something that
/// is not a benchmark.
fn warn_bad_benchmark(name: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: {BENCHMARKS_ENV} names unknown benchmark `{name}`; \
             ignoring it (known: {})",
            Benchmark::all().map(Benchmark::name).join(", ")
        );
    });
}

/// Environment variable selecting the leakage policy the figure suites
/// run: one of [`PolicyConfig::all_ids`] (`dri`, `decay`, `way_resize`,
/// `way_memo`). Unset or `dri` = the paper's DRI i-cache. A manifest's
/// `policy =` option sets the same variable, so any figure binary can be
/// replayed under any policy without code changes.
pub const POLICY_ENV: &str = "DRI_POLICY";

/// The policy [`POLICY_ENV`] selects, derived from `dri` (see
/// [`PolicyConfig::from_id`]). `None` when the variable is unset, empty,
/// or explicitly `dri` — the default DRI path keys identically either
/// way, but `None` keeps the common case on the frozen `RunConfig`
/// default. Unknown names warn (once per process) and fall back to DRI
/// rather than silently mislabelling a whole campaign's records.
pub fn selected_policy(dri: &dri_core::DriConfig) -> Option<PolicyConfig> {
    let raw = std::env::var(POLICY_ENV).ok()?;
    let id = raw.trim();
    if id.is_empty() {
        return None;
    }
    match PolicyConfig::from_id(id, dri) {
        Some(policy) => Some(policy),
        None => {
            warn_bad_policy(id);
            None
        }
    }
}

/// Warns (once per process) that `DRI_POLICY` named something that is
/// not a policy.
fn warn_bad_policy(id: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: {POLICY_ENV} names unknown policy `{id}`; \
             falling back to dri (known: {})",
            PolicyConfig::all_ids().join(", ")
        );
    });
}

/// The base run configuration for a benchmark, honouring quick mode and
/// the [`POLICY_ENV`] policy selection.
pub fn base_config(benchmark: Benchmark) -> RunConfig {
    let mut cfg = if quick_mode() {
        let mut cfg = RunConfig::quick(benchmark);
        cfg.instruction_budget = Some(600_000);
        cfg
    } else {
        RunConfig::hpca01(benchmark)
    };
    cfg.policy = selected_policy(&cfg.dri);
    cfg
}

/// The search space, honouring quick mode.
pub fn space() -> SearchSpace {
    if quick_mode() {
        SearchSpace::quick()
    } else {
        SearchSpace::standard()
    }
}

/// Runs one closure per selected benchmark (see [`selected_benchmarks`])
/// across [`threads`] workers, preserving the canonical benchmark order
/// in the output.
pub fn for_each_benchmark<T: Send>(f: impl Fn(Benchmark) -> T + Sync) -> Vec<(Benchmark, T)> {
    let benchmarks = selected_benchmarks();
    parallel_map(&benchmarks, |&b| (b, f(b)))
}

/// Standard banner for every experiment binary. A `paper_ref` beginning
/// with `~` is printed verbatim (for artifacts that have no direct
/// counterpart in the paper).
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    match paper_ref.strip_prefix('~') {
        Some(verbatim) => println!("({verbatim})"),
        None => println!("(reproduces {paper_ref} of Yang et al., HPCA 2001)"),
    }
    if quick_mode() {
        println!("[quick mode: reduced grids and budgets — shapes only]");
    }
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_benchmark_preserves_order() {
        let rows = for_each_benchmark(|b| b.name().len());
        assert_eq!(rows.len(), 15);
        for ((b, len), expect) in rows.iter().zip(Benchmark::all()) {
            assert_eq!(*b, expect);
            assert_eq!(*len, expect.name().len());
        }
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn policy_defaults_to_dri() {
        // Like `selection_defaults_to_every_benchmark`, only assert on
        // the ambient case; explicit selections are covered by the
        // manifest's strict `policy =` validation and the two-policy
        // distributed CI job.
        if std::env::var_os(POLICY_ENV).is_none() {
            let cfg = base_config(Benchmark::Li);
            assert_eq!(cfg.policy, None);
            assert_eq!(cfg.resolved_policy(), PolicyConfig::Dri(cfg.dri));
        }
    }

    #[test]
    fn selection_defaults_to_every_benchmark() {
        // `selected_benchmarks` reads the ambient environment; only
        // assert on the case this test can see without mutating global
        // state (the filtering itself is covered via the manifest's
        // strict `benchmarks =` validation and the distributed CI job).
        if std::env::var_os(BENCHMARKS_ENV).is_none() {
            assert_eq!(selected_benchmarks(), Benchmark::all().to_vec());
        }
    }
}
