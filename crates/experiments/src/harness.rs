//! Shared plumbing for the experiment binaries.

use crate::runner::RunConfig;
use crate::search::SearchSpace;
use synth_workload::suite::Benchmark;

/// Whether quick mode is enabled (`DRI_QUICK=1`): smaller search grids and
/// shorter runs, for smoke-testing the harness.
pub fn quick_mode() -> bool {
    std::env::var_os("DRI_QUICK").is_some_and(|v| v != "0")
}

/// Worker threads to use for benchmark-level parallelism.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The base run configuration for a benchmark, honouring quick mode.
pub fn base_config(benchmark: Benchmark) -> RunConfig {
    if quick_mode() {
        let mut cfg = RunConfig::quick(benchmark);
        cfg.instruction_budget = Some(600_000);
        cfg
    } else {
        RunConfig::hpca01(benchmark)
    }
}

/// The search space, honouring quick mode.
pub fn space() -> SearchSpace {
    if quick_mode() {
        SearchSpace::quick()
    } else {
        SearchSpace::standard()
    }
}

/// Runs one closure per benchmark across [`threads`] workers, preserving
/// the canonical benchmark order in the output.
pub fn for_each_benchmark<T: Send>(
    f: impl Fn(Benchmark) -> T + Sync,
) -> Vec<(Benchmark, T)> {
    let benchmarks = Benchmark::all();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads() {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= benchmarks.len() {
                    break;
                }
                let out = f(benchmarks[i]);
                results.lock().unwrap().push((benchmarks[i], out));
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(b, _)| benchmarks.iter().position(|x| x == b).expect("known"));
    out
}

/// Standard banner for every experiment binary. A `paper_ref` beginning
/// with `~` is printed verbatim (for artifacts that have no direct
/// counterpart in the paper).
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    match paper_ref.strip_prefix('~') {
        Some(verbatim) => println!("({verbatim})"),
        None => println!("(reproduces {paper_ref} of Yang et al., HPCA 2001)"),
    }
    if quick_mode() {
        println!("[quick mode: reduced grids and budgets — shapes only]");
    }
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_benchmark_preserves_order() {
        let rows = for_each_benchmark(|b| b.name().len());
        assert_eq!(rows.len(), 15);
        for ((b, len), expect) in rows.iter().zip(Benchmark::all()) {
            assert_eq!(*b, expect);
            assert_eq!(*len, expect.name().len());
        }
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }
}
