//! §5.2.1: the analytic leakage/dynamic trade-off bounds. (Thin wrapper —
//! the suite body lives in `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::tradeoff();
}
