//! §5.2.1: the analytic leakage/dynamic trade-off bounds.

use dri_experiments::harness::banner;
use dri_experiments::report::Table;
use energy_model::params::EnergyParams;
use energy_model::tradeoff::{extra_l1_over_leakage, extra_l2_over_leakage};

fn main() {
    banner(
        "Section 5.2.1: leakage vs dynamic energy trade-off bounds",
        "section 5.2.1",
    );
    let published = EnergyParams::hpca01_published();
    let derived = EnergyParams::hpca01_derived();

    println!("constants (published / derived-from-circuit-model):");
    println!(
        "  L1 leakage per cycle: {:.3} / {:.3} nJ",
        published.l1_leak_per_cycle.value(),
        derived.l1_leak_per_cycle.value()
    );
    println!(
        "  resizing bitline:     {:.4} / {:.4} nJ",
        published.resizing_bitline_energy.value(),
        derived.resizing_bitline_energy.value()
    );
    println!(
        "  L2 access:            {:.2} / {:.2} nJ",
        published.l2_access_energy.value(),
        derived.l2_access_energy.value()
    );
    println!();

    println!("extra-L1-dynamic / L1-leakage (paper's example: 0.024 at 5 bits, active 0.5):");
    let mut t = Table::new(["resizing bits", "active 0.25", "active 0.50", "active 1.00"]);
    for bits in [3u32, 5, 6] {
        t.row([
            bits.to_string(),
            format!("{:.3}", extra_l1_over_leakage(&published, bits, 0.25)),
            format!("{:.3}", extra_l1_over_leakage(&published, bits, 0.50)),
            format!("{:.3}", extra_l1_over_leakage(&published, bits, 1.00)),
        ]);
    }
    print!("{}", t.render());
    println!();

    println!("extra-L2-dynamic / L1-leakage (paper's example: 0.08 at +1% misses, active 0.5):");
    let mut t = Table::new([
        "extra miss rate",
        "active 0.25",
        "active 0.50",
        "active 1.00",
    ]);
    for mr in [0.001f64, 0.005, 0.01] {
        t.row([
            format!("{:.1}%", mr * 100.0),
            format!("{:.3}", extra_l2_over_leakage(&published, 0.25, mr)),
            format!("{:.3}", extra_l2_over_leakage(&published, 0.50, mr)),
            format!("{:.3}", extra_l2_over_leakage(&published, 1.00, mr)),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "conclusion (paper): even under extreme assumptions the dynamic overheads \
         are a few percent of the leakage energy, so sizable leakage savings survive."
    );
}
