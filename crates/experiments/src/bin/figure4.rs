//! Figure 4: impact of varying the miss-bound (0.5x, 1x, 2x of each
//! benchmark's performance-constrained base value).

use dri_experiments::harness::{banner, base_config, for_each_benchmark, space};
use dri_experiments::report::{pct, Table};
use dri_experiments::search::search_benchmark;
use dri_experiments::sweeps::{miss_bound_sweep, MissBoundSweep};
use dri_experiments::Comparison;

fn cell(c: &Comparison) -> String {
    let mark = if c.slowdown > 0.04 { "!" } else { "" };
    format!("{:.2} ({}{mark})", c.relative_energy_delay, pct(c.slowdown))
}

fn main() {
    banner("Figure 4: impact of varying the miss-bound", "Figure 4");
    let grid = space();
    let rows: Vec<(synth_workload::suite::Benchmark, MissBoundSweep)> = for_each_benchmark(|b| {
        let base = base_config(b);
        let sr = search_benchmark(&base, &grid);
        let mut tuned = base.clone();
        tuned.dri.miss_bound = sr.constrained.miss_bound;
        tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
        miss_bound_sweep(&tuned)
    });

    let mut t = Table::new([
        "benchmark",
        "0.5x miss-bound",
        "base miss-bound",
        "2x miss-bound",
        "base mb",
    ]);
    for (b, s) in &rows {
        t.row([
            b.name().to_owned(),
            cell(&s.half),
            cell(&s.base),
            cell(&s.double),
            s.base.miss_bound.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("cells are relative energy-delay (slowdown); '!' = above the 4% constraint.");
    println!(
        "paper: \"despite varying the miss-bound over a factor of four range, most \
         of the energy-delay products do not change significantly\" — exceptions \
         gcc, go, perl, tomcatv (5-8% slowdown at 2x)."
    );
}
