//! Figure 4: impact of varying the miss-bound (0.5x, 1x, 2x of each
//! benchmark's performance-constrained base value). (Thin wrapper — the
//! suite body lives in `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::figure4();
}
