//! Robustness check: do the headline results depend on the particular
//! synthetic code bodies? Re-runs a representative benchmark per class
//! with several generator seeds (same footprint/phase structure,
//! different instruction mix, data, and layout jitter) at fixed DRI
//! parameters, and reports the spread.

use dri_experiments::harness::{banner, base_config};
use dri_experiments::report::{pct, Table};
use dri_experiments::runner::{compare_with_baseline, run_conventional, run_dri};
use synth_workload::suite::Benchmark;

fn main() {
    banner(
        "Robustness: generator-seed sensitivity of the headline metrics",
        "~a validity check of this reproduction; no corresponding artifact in the paper",
    );
    let cases = [
        (Benchmark::Compress, 100u64, 4 * 1024u64),
        (Benchmark::Perl, 800, 32 * 1024),
        (Benchmark::Hydro2d, 50, 8 * 1024),
    ];
    let seeds = [1u64, 7, 42, 1234];

    let mut t = Table::new([
        "benchmark",
        "seed",
        "rel-ED",
        "avg size",
        "slowdown",
        "conv miss/cyc",
    ]);
    for (bench, mb, sb) in cases {
        let mut eds = Vec::new();
        for &seed in &seeds {
            let mut cfg = base_config(bench);
            cfg.dri.miss_bound = mb;
            cfg.dri.size_bound_bytes = sb;
            cfg.seed_override = Some(seed);
            let baseline = run_conventional(&cfg);
            let dri = run_dri(&cfg);
            let c = compare_with_baseline(&cfg, &baseline, &dri);
            t.row([
                bench.name().to_owned(),
                seed.to_string(),
                format!("{:.3}", c.relative_energy_delay),
                pct(c.avg_size_fraction),
                pct(c.slowdown),
                format!("{:.3}%", c.conventional_miss_rate * 100.0),
            ]);
            eds.push(c.relative_energy_delay);
        }
        let min = eds.iter().cloned().fold(f64::MAX, f64::min);
        let max = eds.iter().cloned().fold(f64::MIN, f64::max);
        t.row([
            format!("{} spread", bench.name()),
            "-".to_owned(),
            format!("{:.3}", max - min),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "a small spread means the reproduction's conclusions rest on the \
         *structure* (footprints, phases) rather than on any particular \
         generated instruction sequence."
    );
}
