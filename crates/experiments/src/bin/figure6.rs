//! Figure 6: varying conventional cache parameters — 64K 4-way vs 64K
//! direct-mapped vs 128K direct-mapped (each normalized to a conventional
//! cache of equivalent geometry).

use dri_experiments::harness::{banner, base_config, for_each_benchmark, space};
use dri_experiments::report::{pct, Table};
use dri_experiments::search::search_benchmark;
use dri_experiments::sweeps::{geometry_sweep, GeometrySweep};
use dri_experiments::Comparison;

fn cell(c: &Comparison) -> String {
    let mark = if c.slowdown > 0.04 { "!" } else { "" };
    format!("{:.2} ({}{mark})", c.relative_energy_delay, pct(c.slowdown))
}

fn main() {
    banner(
        "Figure 6: varying conventional cache parameters (A: 64K 4-way, B: 64K DM, C: 128K DM)",
        "Figure 6 and section 5.5",
    );
    let grid = space();
    let rows: Vec<(synth_workload::suite::Benchmark, GeometrySweep)> = for_each_benchmark(|b| {
        let base = base_config(b);
        let sr = search_benchmark(&base, &grid);
        let mut tuned = base.clone();
        tuned.dri.miss_bound = sr.constrained.miss_bound;
        tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
        geometry_sweep(&tuned)
    });

    let mut t = Table::new([
        "benchmark",
        "A: 64K 4-way",
        "B: 64K DM",
        "C: 128K DM",
        "A avg-size",
        "B avg-size",
        "C avg-size",
    ]);
    let mut sums = [0.0f64; 3];
    for (b, s) in &rows {
        t.row([
            b.name().to_owned(),
            cell(&s.assoc_4way),
            cell(&s.dm_64k),
            cell(&s.dm_128k),
            pct(s.assoc_4way.avg_size_fraction),
            pct(s.dm_64k.avg_size_fraction),
            pct(s.dm_128k.avg_size_fraction),
        ]);
        sums[0] += s.assoc_4way.relative_energy_delay;
        sums[1] += s.dm_64k.relative_energy_delay;
        sums[2] += s.dm_128k.relative_energy_delay;
    }
    print!("{}", t.render());
    let n = rows.len() as f64;
    println!();
    println!(
        "mean relative energy-delay: 4-way {:.2}, 64K DM {:.2}, 128K DM {:.2}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!(
        "paper: higher associativity absorbs conflicts and encourages downsizing; \
         larger caches gain more because a bigger fraction can be put in standby — \
         both variants should (on average) match or beat the 64K DM design point."
    );
}
