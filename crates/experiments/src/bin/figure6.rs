//! Figure 6: varying conventional cache parameters — 64K 4-way vs 64K
//! direct-mapped vs 128K direct-mapped (each normalized to a conventional
//! cache of equivalent geometry). (Thin wrapper — the suite body lives in
//! `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::figure6();
}
