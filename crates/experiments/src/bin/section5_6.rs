//! §5.6: sense-interval length and divisibility robustness.
//!
//! The paper varies the interval from 250K to 4M i-cache accesses around
//! the 1M base and reports <1% energy-delay change (go <5%, due to its
//! irregular phases), and finds divisibility 4/8 counterproductive. Our
//! base interval is scaled to 100K instructions, so the sweep covers the
//! same 1/4x..4x span.

use dri_experiments::harness::{banner, base_config, for_each_benchmark, space};
use dri_experiments::report::{pct, Table};
use dri_experiments::search::search_benchmark;
use dri_experiments::sweeps::{divisibility_sweep, interval_sweep};

fn main() {
    banner(
        "Section 5.6: varying sense-interval length and divisibility",
        "section 5.6",
    );
    let grid = space();
    type Rows = (
        Vec<(u64, dri_experiments::Comparison)>,
        Vec<(u32, dri_experiments::Comparison)>,
    );
    let rows: Vec<(synth_workload::suite::Benchmark, Rows)> = for_each_benchmark(|b| {
        let base = base_config(b);
        let sr = search_benchmark(&base, &grid);
        let mut tuned = base.clone();
        tuned.dri.miss_bound = sr.constrained.miss_bound;
        tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
        let base_si = tuned.dri.sense_interval;
        let intervals = interval_sweep(
            &tuned,
            &[base_si / 4, base_si / 2, base_si, base_si * 2, base_si * 4],
        );
        let divs = divisibility_sweep(&tuned, &[2, 4, 8]);
        (intervals, divs)
    });

    println!("\n-- sense-interval sweep (relative energy-delay per interval length) --");
    let mut t = Table::new(["benchmark", "1/4x", "1/2x", "1x", "2x", "4x", "max |dED|"]);
    for (b, (intervals, _)) in &rows {
        let base_ed = intervals[2].1.relative_energy_delay;
        let spread = intervals
            .iter()
            .map(|(_, c)| (c.relative_energy_delay - base_ed).abs())
            .fold(0.0f64, f64::max);
        let mut cells = vec![b.name().to_owned()];
        cells.extend(
            intervals
                .iter()
                .map(|(_, c)| format!("{:.3}", c.relative_energy_delay)),
        );
        cells.push(format!("{spread:.3}"));
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\n-- divisibility sweep (relative energy-delay / slowdown) --");
    let mut t = Table::new(["benchmark", "div 2", "div 4", "div 8"]);
    for (b, (_, divs)) in &rows {
        let mut cells = vec![b.name().to_owned()];
        cells.extend(
            divs.iter()
                .map(|(_, c)| format!("{:.2} ({})", c.relative_energy_delay, pct(c.slowdown))),
        );
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!(
        "paper: interval-length robustness (<1% change, go <5%); divisibility 4/8 \
         \"prohibitively increases the resizing granularity\"."
    );
}
