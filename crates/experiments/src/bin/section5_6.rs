//! §5.6: sense-interval length and divisibility robustness. (Thin
//! wrapper — the suite body lives in `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::section5_6();
}
