//! Extension: DRI set-resizing vs per-line cache decay.
//!
//! The DRI paper spawned a line of leakage-control work whose next step
//! was cache decay (per-line gating after a fixed idle interval). This
//! harness runs both policies over the suite under identical substrates
//! and energy accounting, sweeping the decay interval.

use dri_core::{DecayConfig, PolicyConfig};
use dri_experiments::harness::{banner, base_config, for_each_benchmark, space};
use dri_experiments::report::{pct, Table};
use dri_experiments::runner::{
    compare_with_baseline, run_conventional, run_dri, run_policy, DriRun, RunConfig,
};
use dri_experiments::search::search_benchmark;

/// Runs a decaying i-cache under the same system configuration, through
/// the policy path: the run is session-memoized and store-persisted
/// under the decay key (and honours `seed_override`/`instruction_budget`
/// like every other policy, which the old hand-rolled loop here did not).
fn run_decay(cfg: &RunConfig, interval_cycles: u64) -> DriRun {
    let mut cfg = cfg.clone();
    cfg.policy = Some(PolicyConfig::Decay(DecayConfig {
        decay_interval_cycles: interval_cycles,
        ..PolicyConfig::decay_from(&cfg.dri)
    }));
    run_policy(&cfg)
}

fn main() {
    banner(
        "Extension: DRI set-resizing vs per-line cache decay",
        "~extends the paper: the successor policy its related-work line led to",
    );
    let grid = space();
    let decay_intervals: [u64; 2] = [32 * 1024, 256 * 1024];
    let rows = for_each_benchmark(|b| {
        let base = base_config(b);
        let sr = search_benchmark(&base, &grid);
        let mut tuned = base.clone();
        tuned.dri.miss_bound = sr.constrained.miss_bound;
        tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
        let baseline = run_conventional(&tuned);
        let dri = run_dri(&tuned);
        let dri_cmp = compare_with_baseline(&tuned, &baseline, &dri);
        let decays: Vec<_> = decay_intervals
            .iter()
            .map(|&d| {
                let run = run_decay(&tuned, d);
                compare_with_baseline(&tuned, &baseline, &run)
            })
            .collect();
        (dri_cmp, decays)
    });

    let mut t = Table::new([
        "benchmark",
        "DRI: rel-ED (slow)",
        "decay 32K: rel-ED (slow)",
        "decay 256K: rel-ED (slow)",
        "DRI size",
        "decay32K size",
    ]);
    let mut sums = [0.0f64; 3];
    for (b, (dri_cmp, decays)) in &rows {
        t.row([
            b.name().to_owned(),
            format!(
                "{:.2} ({})",
                dri_cmp.relative_energy_delay,
                pct(dri_cmp.slowdown)
            ),
            format!(
                "{:.2} ({})",
                decays[0].relative_energy_delay,
                pct(decays[0].slowdown)
            ),
            format!(
                "{:.2} ({})",
                decays[1].relative_energy_delay,
                pct(decays[1].slowdown)
            ),
            pct(dri_cmp.avg_size_fraction),
            pct(decays[0].avg_size_fraction),
        ]);
        sums[0] += dri_cmp.relative_energy_delay;
        sums[1] += decays[0].relative_energy_delay;
        sums[2] += decays[1].relative_energy_delay;
    }
    print!("{}", t.render());
    let n = rows.len() as f64;
    println!();
    println!(
        "mean relative energy-delay: DRI {:.2}, decay-32K {:.2}, decay-256K {:.2}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!(
        "decay adapts per line with no parameter search and shines on large \
         working sets with dead blocks (gcc, go); DRI's explicit miss-rate \
         control bounds the slowdown, which decay cannot promise at short \
         intervals."
    );
}
