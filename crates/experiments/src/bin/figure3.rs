//! Figure 3: base energy-delay and average cache size, performance-
//! constrained (≤4% slowdown) and performance-unconstrained, for all
//! fifteen benchmarks.

use dri_experiments::harness::{banner, base_config, space, threads};
use dri_experiments::published;
use dri_experiments::report::{kbytes, pct, Table};
use dri_experiments::search::search_all;
use dri_experiments::Comparison;

fn case_cells(c: &Comparison) -> [String; 6] {
    [
        format!("{:.2}", c.relative_energy_delay),
        format!("{:.2}+{:.2}", c.leakage_component, c.dynamic_component),
        pct(c.avg_size_fraction),
        if c.slowdown > 0.04 {
            format!("{}!", pct(c.slowdown))
        } else {
            pct(c.slowdown)
        },
        format!("{:.2}%", c.dri_miss_rate * 100.0),
        format!("mb={} sb={}", c.miss_bound, kbytes(c.size_bound_bytes)),
    ]
}

fn main() {
    banner(
        "Figure 3: base energy-delay and average cache size measurements",
        "Figure 3 and section 5.3",
    );
    eprintln!(
        "searching miss-bound x size-bound per benchmark on {} threads...",
        threads()
    );
    let results = search_all(base_config, &space(), threads());
    let paper = published::figure3();

    let mut t = Table::new([
        "benchmark",
        "C:rel-ED",
        "C:leak+dyn",
        "C:avg-size",
        "C:slowdown",
        "C:missrate",
        "C:params",
        "U:rel-ED",
        "U:slowdown",
        "paper C:ED",
        "paper C:size",
    ]);
    let mut sum_c = 0.0;
    let mut sum_u = 0.0;
    let mut sum_size = 0.0;
    for (r, p) in results.iter().zip(&paper) {
        assert_eq!(r.benchmark, p.benchmark);
        let c = case_cells(&r.constrained);
        let mut cells: Vec<String> = vec![r.benchmark.name().to_owned()];
        cells.extend(c);
        cells.push(format!("{:.2}", r.unconstrained.relative_energy_delay));
        cells.push(pct(r.unconstrained.slowdown));
        cells.push(format!("{:.2}", p.relative_energy_delay));
        cells.push(pct(p.avg_size_fraction));
        t.row(cells);
        sum_c += r.constrained.relative_energy_delay;
        sum_u += r.unconstrained.relative_energy_delay;
        sum_size += r.constrained.avg_size_fraction;
    }
    print!("{}", t.render());
    let n = results.len() as f64;
    println!();
    println!(
        "mean constrained energy-delay reduction: {} (paper headline: {})",
        pct(1.0 - sum_c / n),
        pct(published::HEADLINE_CONSTRAINED_REDUCTION)
    );
    println!(
        "mean unconstrained energy-delay reduction: {} (paper headline: {})",
        pct(1.0 - sum_u / n),
        pct(published::HEADLINE_UNCONSTRAINED_REDUCTION)
    );
    println!(
        "mean constrained cache-size reduction: {} (paper: ~62%)",
        pct(1.0 - sum_size / n)
    );
    println!();
    println!("legend: C = performance-constrained (slowdown <= 4%), U = unconstrained;");
    println!("        leak+dyn are the stacked components of the relative energy-delay;");
    println!("        '!' marks slowdown above the 4% constraint.");
}
