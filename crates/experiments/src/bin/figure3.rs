//! Figure 3: base energy-delay and average cache size, performance-
//! constrained (≤4% slowdown) and performance-unconstrained, for all
//! fifteen benchmarks. (Thin wrapper — the suite body lives in
//! `dri_experiments::figures` so the `suite` batch runner can share it.)

fn main() {
    dri_experiments::figures::figure3();
}
