//! Figure 5: impact of varying the size-bound (2x, 1x, 0.5x of each
//! benchmark's performance-constrained base value).

use dri_experiments::harness::{banner, base_config, for_each_benchmark, space};
use dri_experiments::report::{kbytes, pct, Table};
use dri_experiments::search::search_benchmark;
use dri_experiments::sweeps::{size_bound_sweep, SizeBoundSweep};
use dri_experiments::Comparison;

fn cell(c: &Comparison) -> String {
    let mark = if c.slowdown > 0.04 { "!" } else { "" };
    format!("{:.2} ({}{mark})", c.relative_energy_delay, pct(c.slowdown))
}

fn opt_cell(c: &Option<Comparison>) -> String {
    c.as_ref().map_or("N/A".to_owned(), cell)
}

fn main() {
    banner("Figure 5: impact of varying the size-bound", "Figure 5");
    let grid = space();
    let rows: Vec<(synth_workload::suite::Benchmark, SizeBoundSweep)> = for_each_benchmark(|b| {
        let base = base_config(b);
        let sr = search_benchmark(&base, &grid);
        let mut tuned = base.clone();
        tuned.dri.miss_bound = sr.constrained.miss_bound;
        tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;
        size_bound_sweep(&tuned)
    });

    let mut t = Table::new([
        "benchmark",
        "2x size-bound",
        "base size-bound",
        "0.5x size-bound",
        "base sb",
    ]);
    for (b, s) in &rows {
        t.row([
            b.name().to_owned(),
            opt_cell(&s.double),
            cell(&s.base),
            opt_cell(&s.half),
            kbytes(s.base.size_bound_bytes),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("cells are relative energy-delay (slowdown); '!' = above the 4% constraint;");
    println!("N/A mirrors the paper's 'NOT APPLICABLE' column (bound at the cache size).");
    println!(
        "paper: a smaller size-bound shrinks the cache further, but class-1 \
         benchmarks thrash below their working set and class-3 benchmarks pay \
         extra dynamic energy — the energy-delay can worsen in both directions."
    );
}
