//! Figure 5: impact of varying the size-bound (2x, 1x, 0.5x of each
//! benchmark's performance-constrained base value). (Thin wrapper — the
//! suite body lives in `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::figure5();
}
