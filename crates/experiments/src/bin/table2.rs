//! Table 2: energy, speed, and area trade-off of varying threshold voltage
//! and gated-Vdd — model output next to the published numbers. (Thin
//! wrapper — the suite body lives in `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::table2();
}
