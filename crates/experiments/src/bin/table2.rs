//! Table 2: energy, speed, and area trade-off of varying threshold voltage
//! and gated-Vdd — model output next to the published numbers.

use dri_experiments::harness::banner;
use dri_experiments::report::Table;
use sram_circuit::process::Process;
use sram_circuit::table2::{generate, generate_extended, published, OperatingPoint};

fn fmt_e(e: Option<f64>) -> String {
    e.map_or("N/A".to_owned(), |v| format!("{:.0}", v * 1e9))
}

fn main() {
    banner(
        "Table 2: threshold voltage and gated-Vdd trade-offs (0.18um, 1.0V, 110C)",
        "Table 2",
    );
    let process = Process::tsmc180();
    let op = OperatingPoint::default();
    let rows = generate(&process, op);

    let mut t = Table::new([
        "technique",
        "gated-Vdd Vt",
        "SRAM Vt",
        "rel. read time (model/paper)",
        "active leak e-9 nJ (model/paper)",
        "standby leak e-9 nJ (model/paper)",
        "savings % (model/paper)",
        "area % (model/paper)",
    ]);
    for (row, (_, p_read, p_active, p_standby, p_savings, p_area)) in
        rows.iter().zip(published::TABLE2)
    {
        t.row([
            row.technique.clone(),
            row.gate_vt
                .map_or("N/A".to_owned(), |v| format!("{:.2}V", v.value())),
            format!("{:.2}V", row.sram_vt.value()),
            format!("{:.2} / {:.2}", row.relative_read_time, p_read),
            format!(
                "{:.0} / {:.0}",
                row.active_leakage.value() * 1e9,
                p_active * 1e9
            ),
            format!(
                "{} / {}",
                fmt_e(row.standby_leakage.map(|e| e.value())),
                fmt_e(p_standby)
            ),
            format!(
                "{} / {}",
                row.energy_savings_pct
                    .map_or("N/A".to_owned(), |v| format!("{v:.0}")),
                p_savings.map_or("N/A".to_owned(), |v| format!("{v:.0}"))
            ),
            format!(
                "{} / {}",
                row.area_increase_pct
                    .map_or("N/A".to_owned(), |v| format!("{v:.1}")),
                p_area.map_or("N/A".to_owned(), |v| format!("{v:.1}"))
            ),
        ]);
    }
    print!("{}", t.render());

    println!();
    println!("Extended trade-off table (ablations beyond the paper's columns):");
    for row in generate_extended(&process, op).iter().skip(3) {
        println!("  {row}");
    }
}
