//! Ablation: set-resizing (the DRI i-cache) vs way-resizing (the
//! Albonesi-style alternative paper §2 argues against), on the 64K 4-way
//! geometry, using the same miss-bound feedback loop for both.

use dri_core::{DriConfig, WayConfig};
use dri_experiments::harness::{banner, base_config, for_each_benchmark, space};
use dri_experiments::report::{pct, Table};
use dri_experiments::runner::{
    compare_with_baseline, run_conventional, run_dri, run_way_resizable,
};
use dri_experiments::search::search_benchmark;

fn main() {
    banner(
        "Ablation: set-resizing (DRI) vs way-resizing (selective ways)",
        "~quantifies the design argument of section 2 of Yang et al., HPCA 2001",
    );
    let grid = space();
    let rows = for_each_benchmark(|b| {
        // Tune on the 4-way geometry, then run both resizing styles with
        // the same feedback parameters against the same 4-way baseline.
        let mut base = base_config(b);
        base.dri = DriConfig {
            miss_bound: base.dri.miss_bound,
            size_bound_bytes: base.dri.size_bound_bytes,
            sense_interval: base.dri.sense_interval,
            ..DriConfig::hpca01_64k_4way()
        };
        let sr = search_benchmark(&base, &grid);
        let mut tuned = base.clone();
        tuned.dri.miss_bound = sr.constrained.miss_bound;
        tuned.dri.size_bound_bytes = sr.constrained.size_bound_bytes;

        let baseline = run_conventional(&tuned);
        let dri = run_dri(&tuned);
        let set_cmp = compare_with_baseline(&tuned, &baseline, &dri);

        let way_cfg = WayConfig {
            miss_bound: tuned.dri.miss_bound,
            sense_interval: tuned.dri.sense_interval,
            ..WayConfig::hpca01_64k_4way()
        };
        let way = run_way_resizable(&tuned, way_cfg);
        let way_cmp = compare_with_baseline(&tuned, &baseline, &way);
        (set_cmp, way_cmp)
    });

    let mut t = Table::new([
        "benchmark",
        "set: rel-ED",
        "set: avg size",
        "set: slowdown",
        "way: rel-ED",
        "way: avg size",
        "way: slowdown",
    ]);
    let mut set_sum = 0.0;
    let mut way_sum = 0.0;
    for (b, (set_cmp, way_cmp)) in &rows {
        t.row([
            b.name().to_owned(),
            format!("{:.2}", set_cmp.relative_energy_delay),
            pct(set_cmp.avg_size_fraction),
            pct(set_cmp.slowdown),
            format!("{:.2}", way_cmp.relative_energy_delay),
            pct(way_cmp.avg_size_fraction),
            pct(way_cmp.slowdown),
        ]);
        set_sum += set_cmp.relative_energy_delay;
        way_sum += way_cmp.relative_energy_delay;
    }
    print!("{}", t.render());
    let n = rows.len() as f64;
    println!();
    println!(
        "mean relative energy-delay: set-resizing {:.2}, way-resizing {:.2}",
        set_sum / n,
        way_sum / n
    );
    println!(
        "expected: way-resizing bottoms out at size/associativity (16K of 64K), \
         so small-working-set benchmarks cannot reach their required size — \
         the granularity argument of paper section 2."
    );
}
