//! Policy shoot-out: the paper's gated-Vdd DRI cache vs cache decay vs
//! way resizing vs way memoization, side by side on the 64K 4-way
//! geometry. (Thin wrapper — the suite body lives in
//! `dri_experiments::figures` so the `suite` batch runner can share it.)

fn main() {
    dri_experiments::figures::policies();
}
