//! Table 1: the system configuration actually simulated. (Thin wrapper —
//! the suite body lives in `dri_experiments::figures`.)

fn main() {
    dri_experiments::figures::table1();
}
