//! Table 1: the system configuration actually simulated.

use cache_sim::hierarchy::HierarchyConfig;
use dri_core::DriConfig;
use dri_experiments::harness::banner;
use dri_experiments::report::{kbytes, Table};
use ooo_cpu::config::CpuConfig;

fn main() {
    banner("Table 1: system configuration parameters", "Table 1");
    let cpu = CpuConfig::hpca01();
    let hier = HierarchyConfig::hpca01();
    let dri = DriConfig::hpca01_64k_dm();

    let mut t = Table::new(["parameter", "paper", "simulated"]);
    t.row([
        "instruction issue & decode bandwidth",
        "8 issues per cycle",
        &format!("{} issues per cycle", cpu.issue_width),
    ]);
    t.row([
        "L1 i-cache / L1 DRI i-cache",
        "64K, direct-mapped, 1 cycle latency",
        &format!(
            "{}, {}-way, {} cycle latency, {}B blocks",
            kbytes(dri.max_size_bytes),
            dri.associativity,
            dri.latency,
            dri.block_bytes
        ),
    ]);
    t.row([
        "L1 d-cache",
        "64K, 2-way (LRU), 1 cycle latency",
        &format!(
            "{}, {}-way (LRU), {} cycle latency",
            kbytes(hier.l1d.size_bytes),
            hier.l1d.associativity,
            hier.l1d.latency
        ),
    ]);
    t.row([
        "L2 cache",
        "1M, 4-way, unified, 12 cycle latency",
        &format!(
            "{}, {}-way, unified, {} cycle latency",
            kbytes(hier.l2.size_bytes),
            hier.l2.associativity,
            hier.l2.latency
        ),
    ]);
    t.row([
        "memory access latency",
        "80 cycles + 4 cycles per 8 bytes",
        &format!(
            "{} cycles + {} cycles per 8 bytes",
            hier.memory.base_latency, hier.memory.per_8_bytes
        ),
    ]);
    t.row(["reorder buffer size", "128", &cpu.rob_entries.to_string()]);
    t.row(["LSQ size", "128", &cpu.lsq_entries.to_string()]);
    t.row([
        "branch predictor",
        "2-level hybrid",
        "2-level hybrid (bimodal 4K + gshare 4K + chooser 4K, 512-entry BTB, 8-deep RAS)",
    ]);
    print!("{}", t.render());

    println!();
    println!(
        "DRI defaults: sense interval {} instructions (paper example: 1M; \
         scaled with the shorter synthetic runs), divisibility {}, throttle \
         {}-bit counter / {}-interval lockout.",
        dri.sense_interval,
        dri.divisibility,
        dri.throttle.counter_bits,
        dri.throttle.lockout_intervals
    );
}
