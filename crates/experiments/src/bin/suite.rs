//! The manifest-driven batch runner: any subset of the paper's figures
//! and tables as one declarative plan, executed in a single process so
//! every job shares the warm `SimSession` (and, with `DRI_STORE`, the
//! cross-process result store).
//!
//! ```text
//! suite                          # run everything (same as `suite all`)
//! suite figure3 figure4          # run two jobs, in order
//! suite --manifest plan.txt      # run a declarative plan file
//! suite --store-stats figure3    # append the result-store counters
//! suite --list                   # show available jobs
//! ```
//!
//! Job stdout is byte-identical to the per-figure binaries (jobs
//! concatenate with no extra separators; `--store-stats` opt-in appends
//! its block after all jobs); progress lines and the closing summary go
//! to stderr so piped stdout stays clean.

use std::process::ExitCode;

use dri_experiments::harness::{quick_mode, selected_benchmarks, BENCHMARKS_ENV};
use dri_experiments::manifest::{self, Job, Manifest};
use dri_experiments::report::Table;
use dri_experiments::SimSession;
use dri_store::{GcPolicy, ResultStore};
use dri_telemetry::Span;

const USAGE: &str = "\
usage: suite [--manifest FILE] [--store-stats] [--[no-]prefetch] [--[no-]push]
             [--[no-]steal] [--list] [JOB ...]
       suite gc [--store DIR] [--max-bytes N[K|M|G]] [--max-age GENS] [--dry-run]

Runs figure/table jobs in one process with shared simulation caches.
With no jobs from the command line or the manifest, runs every job
(`all`); an options-only manifest composes with command-line jobs.

options:
  --manifest FILE   load the run plan (options + job list) from FILE
  --store-stats     print DRI_STORE result-store counters and disk usage
                    after the run
  --prefetch        resolve each sweep's whole key grid through the cache
                    tiers up front (one chunked POST /batch round-trip for
                    the remote remainder); this is the default
  --no-prefetch     restore per-point tier lookups
  --push            push locally simulated records to the DRI_REMOTE
                    service after each sweep (requires the server to hold
                    the matching DRI_TOKEN); off by default
  --no-push         keep simulated records local (the default)
  --steal           join a lease-based work-stealing campaign: claim
                    benchmark-sized units from the DRI_REMOTE scheduler,
                    simulate only what is claimed, push the records, and
                    reclaim units abandoned by dead workers (implies
                    --push unless push is explicitly off)
  --no-steal        run every planned job locally (the default)
  --list            list available jobs and exit
  --help            this text

gc subcommand (garbage-collect a result store):
  --store DIR       store root (default: the DRI_STORE environment variable)
  --max-bytes N     evict least-recently-used records until the store's
                    record bytes fit N (suffixes K/M/G = KiB/MiB/GiB)
  --max-age GENS    evict records not accessed in the last GENS gc
                    generations
  --dry-run         report what would be evicted without deleting anything

environment: DRI_QUICK, DRI_THREADS, DRI_STORE, DRI_REMOTE, DRI_PREFETCH,
DRI_PUSH, DRI_STEAL, DRI_WORKER, DRI_TOKEN, DRI_POLICY, DRI_BENCHMARKS
(see README); a manifest's
`quick/threads/store/remote/prefetch/push/steal/policy/benchmarks`
options set the same variables (the token deliberately has no manifest
spelling — a secret does not belong in a reviewable plan file).";

struct CliArgs {
    manifest_path: Option<String>,
    store_stats: bool,
    prefetch: Option<bool>,
    push: Option<bool>,
    steal: Option<bool>,
    list: bool,
    jobs: Vec<Job>,
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut parsed = CliArgs {
        manifest_path: None,
        store_stats: false,
        prefetch: None,
        push: None,
        steal: None,
        list: false,
        jobs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifest" => {
                let path = it.next().ok_or("--manifest needs a file path")?;
                parsed.manifest_path = Some(path.clone());
            }
            "--store-stats" => parsed.store_stats = true,
            "--prefetch" => parsed.prefetch = Some(true),
            "--no-prefetch" => parsed.prefetch = Some(false),
            "--push" => parsed.push = Some(true),
            "--no-push" => parsed.push = Some(false),
            "--steal" => parsed.steal = Some(true),
            "--no-steal" => parsed.steal = Some(false),
            "--list" => parsed.list = true,
            "--help" | "-h" => return Err(String::new()),
            "all" => parsed.jobs.extend(Job::all()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => match Job::from_name(other) {
                Some(job) => parsed.jobs.push(job),
                None => return Err(format!("unknown job `{other}` (try --list)")),
            },
        }
    }
    Ok(parsed)
}

/// Builds the run plan: CLI jobs and a manifest file compose (manifest
/// options always apply, except that an explicit `--[no-]prefetch` /
/// `--[no-]push` / `--[no-]steal` flag overrides the manifest's
/// `prefetch =` / `push =` / `steal =`; explicit CLI jobs run after the
/// manifest's).
fn build_plan(args: &CliArgs) -> Result<Manifest, String> {
    let mut plan = match &args.manifest_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read manifest `{path}`: {e}"))?;
            manifest::parse(&text).map_err(|e| e.to_string())?
        }
        None => Manifest::default(),
    };
    if args.prefetch.is_some() {
        plan.options.prefetch = args.prefetch;
    }
    if args.push.is_some() {
        plan.options.push = args.push;
    }
    if args.steal.is_some() {
        plan.options.steal = args.steal;
    }
    for &job in &args.jobs {
        plan.push_job(job);
    }
    if plan.jobs.is_empty() {
        for job in Job::all() {
            plan.push_job(job);
        }
    }
    Ok(plan)
}

/// Applies plan options by exporting the corresponding `DRI_*` variables
/// (before any worker thread or the global session exists).
fn apply_options(plan: &Manifest) {
    if let Some(quick) = plan.options.quick {
        std::env::set_var("DRI_QUICK", if quick { "1" } else { "0" });
    }
    if let Some(threads) = plan.options.threads {
        std::env::set_var("DRI_THREADS", threads.to_string());
    }
    if let Some(store) = &plan.options.store {
        std::env::set_var("DRI_STORE", store);
    }
    if let Some(remote) = &plan.options.remote {
        std::env::set_var("DRI_REMOTE", remote);
    }
    if let Some(prefetch) = plan.options.prefetch {
        std::env::set_var("DRI_PREFETCH", if prefetch { "1" } else { "0" });
    }
    if let Some(push) = plan.options.push {
        std::env::set_var("DRI_PUSH", if push { "1" } else { "0" });
    }
    if let Some(steal) = plan.options.steal {
        std::env::set_var(dri_experiments::STEAL_ENV, if steal { "1" } else { "0" });
    }
    if let Some(policy) = &plan.options.policy {
        std::env::set_var(dri_experiments::harness::POLICY_ENV, policy);
    }
    if let Some(benchmarks) = &plan.options.benchmarks {
        std::env::set_var("DRI_BENCHMARKS", benchmarks);
    }
}

/// Parses a byte count with optional binary suffix: `64`, `512K`, `2M`, `1G`.
fn parse_bytes(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, multiplier) = match raw.as_bytes().last()? {
        b'K' | b'k' => (&raw[..raw.len() - 1], 1024u64),
        b'M' | b'm' => (&raw[..raw.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&raw[..raw.len() - 1], 1024 * 1024 * 1024),
        _ => (raw, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(multiplier)
}

/// The `suite gc` subcommand: age/size-budget garbage collection of a
/// result store, with a report-only dry-run mode.
fn run_gc(args: &[String]) -> Result<(), String> {
    let mut root: Option<String> = std::env::var("DRI_STORE").ok().filter(|s| !s.is_empty());
    let mut policy = GcPolicy::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => root = Some(it.next().ok_or("--store needs a directory")?.clone()),
            "--max-bytes" => {
                let raw = it.next().ok_or("--max-bytes needs a byte count")?;
                policy.max_bytes = Some(
                    parse_bytes(raw)
                        .ok_or_else(|| format!("--max-bytes: `{raw}` is not a byte count"))?,
                );
            }
            "--max-age" => {
                let raw = it.next().ok_or("--max-age needs a generation count")?;
                policy.max_age = Some(
                    raw.parse()
                        .map_err(|_| format!("--max-age: `{raw}` is not an integer"))?,
                );
            }
            "--dry-run" => policy.dry_run = true,
            other => return Err(format!("gc: unknown argument `{other}`")),
        }
    }
    let root = root.ok_or("gc: no store root (pass --store DIR or set DRI_STORE)")?;
    // `ResultStore::open` creates missing roots (right for writers, wrong
    // here): a typo'd path must fail loudly, not "collect" a fresh empty
    // directory while the real store stays over budget.
    if !std::path::Path::new(&root).is_dir() {
        return Err(format!("gc: store root `{root}` does not exist"));
    }
    let store =
        ResultStore::open(&root).map_err(|e| format!("gc: cannot open store `{root}`: {e}"))?;
    let report = store.gc(&policy);
    println!("gc ({root}): generation {}", report.generation);
    println!(
        "  scanned: {} records, {} bytes",
        report.scanned_records, report.scanned_bytes
    );
    println!("  evicted: {} records", report.evicted_records);
    println!("  reclaimed bytes: {}", report.reclaimed_bytes);
    println!(
        "  remaining: {} records, {} bytes",
        report.remaining_records, report.remaining_bytes
    );
    if report.dry_run {
        println!("  (dry run: nothing was deleted)");
    }
    Ok(())
}

/// The `--steal` campaign mode. Instead of running every simulating job
/// over every benchmark locally, the worker claims benchmark-sized
/// units from the remote scheduler's durable lease queue, simulates
/// just the claimed benchmark's share of each simulating job, pushes
/// the records, and completes the lease — looping until the campaign
/// drains. Units abandoned by crashed workers (expired leases) are
/// reclaimed and re-run; the deterministic simulator makes the replay
/// bit-identical. Non-simulating jobs (the closed-form tables) run
/// locally once — they are cheap and keep this worker's stdout useful.
fn run_steal(plan: &Manifest, session: &SimSession) -> Result<(), String> {
    let Some(remote) = session.remote() else {
        return Err(
            "--steal needs a scheduler: set DRI_REMOTE (or `remote =` in the manifest) \
             to a dri-serve address"
                .to_owned(),
        );
    };
    for job in plan.jobs.iter().filter(|j| !j.simulates()) {
        eprintln!("suite: [steal] running non-simulating job {job} locally");
        job.run();
    }
    let sim_jobs: Vec<Job> = plan.jobs.iter().copied().filter(Job::simulates).collect();
    if sim_jobs.is_empty() {
        eprintln!("suite: [steal] no simulating jobs in the plan — nothing to lease");
        return Ok(());
    }
    // Stealing without pushing would strand every simulated record on
    // this worker and force the next claimant to redo it, so steal
    // implies push unless push was explicitly switched off.
    if plan.options.push.is_none() && std::env::var_os("DRI_PUSH").is_none() {
        eprintln!(
            "suite: [steal] enabling write-through push (pass --no-push to keep records local)"
        );
        std::env::set_var("DRI_PUSH", "1");
    }
    let sim_names: Vec<&str> = sim_jobs.iter().map(Job::name).collect();
    let campaign = dri_experiments::campaign_id(&sim_names, quick_mode());
    let worker = dri_experiments::worker_name();
    let units: Vec<String> = selected_benchmarks()
        .iter()
        .map(|b| b.name().to_owned())
        .collect();
    // The lease control plane has no record key to route by, so a fleet
    // hashes the campaign name: every worker of one campaign agrees on
    // one scheduler shard, while record traffic stays key-sharded.
    let control = remote.lease_shard(&campaign);
    eprintln!(
        "suite: [steal] worker `{worker}` joining campaign `{campaign}` \
         (scheduler {}, {} unit(s), {} simulating job(s))",
        control.addr(),
        units.len(),
        sim_jobs.len()
    );
    let outcome = dri_experiments::drain(control, &campaign, &units, &worker, |unit| {
        std::env::set_var(BENCHMARKS_ENV, unit);
        eprintln!("suite: [{worker}] unit `{unit}` ...");
        for job in &sim_jobs {
            job.run();
        }
        session.push_pending();
    })?;
    eprintln!(
        "suite: steal campaign `{campaign}` drained: {} claimed ({} reclaimed), \
         {} completed, {} lost, {} renewal(s), {} wait(s)",
        outcome.granted,
        outcome.reclaimed,
        outcome.completed,
        outcome.lost,
        outcome.renewals,
        outcome.waits
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("gc") {
        return match run_gc(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        let mut t = Table::new(["job", "description", "simulates?"]);
        for job in Job::all() {
            t.row([
                job.name(),
                job.description(),
                if job.simulates() { "yes" } else { "no" },
            ]);
        }
        print!("{}", t.render());
        return ExitCode::SUCCESS;
    }
    let plan = match build_plan(&args) {
        Ok(plan) => plan,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    apply_options(&plan);

    // The summary's wall-times and the per-tier latency table both come
    // from telemetry spans — switch lookup timing on (one clock for the
    // whole report) before the global session resolves it. An explicit
    // DRI_TIMING from the caller wins.
    if std::env::var_os(dri_telemetry::TIMING_ENV).is_none() {
        std::env::set_var(dri_telemetry::TIMING_ENV, "1");
    }

    let session = SimSession::global();
    let names: Vec<&str> = plan.jobs.iter().map(Job::name).collect();
    eprintln!(
        "suite: {} job(s) [{}]{}{}{}",
        plan.jobs.len(),
        names.join(", "),
        if quick_mode() { ", quick mode" } else { "" },
        match session.store() {
            Some(store) => format!(", store at {}", store.root().display()),
            None => ", no result store (set DRI_STORE to enable)".to_owned(),
        },
        match session.remote() {
            Some(remote) => format!(
                ", remote at http://{}{}",
                remote.describe(),
                if dri_experiments::push_enabled() {
                    " (write-through push)"
                } else {
                    ""
                }
            ),
            None => String::new(),
        }
    );

    if dri_experiments::steal_enabled() {
        return match run_steal(&plan, session) {
            Ok(()) => {
                let stats = session.stats();
                eprintln!(
                    "suite: session: {} simulations, {} remote hits",
                    stats.simulations(),
                    stats.remote_hits()
                );
                print_tier_latency(session);
                if args.store_stats {
                    print_store_stats(session);
                }
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let suite_span = Span::begin("job", "suite");
    let mut timings: Vec<(Job, f64, u64, u64, u64, u64)> = Vec::new();
    for (i, job) in plan.jobs.iter().enumerate() {
        let before = session.stats();
        eprintln!("suite: [{}/{}] {} ...", i + 1, plan.jobs.len(), job);
        let span = Span::begin("job", job.name());
        job.run();
        let secs = span.finish("done").as_secs_f64();
        let after = session.stats();
        timings.push((
            *job,
            secs,
            after.simulations() - before.simulations(),
            (after.baseline_hits + after.dri_hits) - (before.baseline_hits + before.dri_hits),
            after.disk_hits() - before.disk_hits(),
            after.remote_hits() - before.remote_hits(),
        ));
    }

    eprintln!("suite: summary");
    let mut t = Table::new([
        "job",
        "wall time",
        "simulated",
        "memory hits",
        "disk hits",
        "remote hits",
    ]);
    for (job, secs, simulated, memory_hits, disk_hits, remote_hits) in &timings {
        t.row([
            job.name().to_owned(),
            format!("{secs:.2}s"),
            simulated.to_string(),
            memory_hits.to_string(),
            disk_hits.to_string(),
            remote_hits.to_string(),
        ]);
    }
    for line in t.render().lines() {
        eprintln!("  {line}");
    }
    let stats = session.stats();
    eprintln!(
        "  total {:.2}s; session: {} simulations, {} memory hits, {} disk hits, {} remote hits, {} workloads generated",
        suite_span.finish("done").as_secs_f64(),
        stats.simulations(),
        stats.baseline_hits + stats.dri_hits,
        stats.disk_hits(),
        stats.remote_hits(),
        stats.workload_misses,
    );
    let prefetch = session.prefetch_stats();
    if prefetch.plans > 0 {
        eprintln!(
            "  prefetch: {} plan(s), {} records planned — {} memory / {} disk / {} remote, \
             {} left to simulate, {} batch round-trip(s)",
            prefetch.plans,
            prefetch.planned,
            prefetch.memory_hits,
            prefetch.disk_hits,
            prefetch.remote_hits,
            prefetch.misses,
            prefetch.batch_round_trips,
        );
    }
    let push = session.push_stats();
    if push.batches > 0 {
        eprintln!(
            "  push: {} batch(es), {} record(s) — {} pushed / {} rejected / {} failed, \
             {} round-trip(s)",
            push.batches, push.attempted, push.pushed, push.rejected, push.failed, push.round_trips,
        );
    }
    print_tier_latency(session);

    if args.store_stats {
        print_store_stats(session);
    }
    ExitCode::SUCCESS
}

/// The per-tier lookup-latency table on stderr (timed sessions only —
/// with timing off every histogram is empty and nothing prints).
fn print_tier_latency(session: &SimSession) {
    let tiers = session.tier_latency();
    if tiers.rows().iter().any(|(_, h)| h.count() > 0) {
        eprintln!("  tier resolution latency:");
        let mut lt = Table::new(["tier", "lookups", "p50", "p90", "p99", "max"]);
        for (tier, hist) in tiers.rows() {
            if hist.count() == 0 {
                continue;
            }
            let (p50, p90, p99, max) = hist.percentiles();
            lt.row([
                tier.to_owned(),
                hist.count().to_string(),
                fmt_ns(p50),
                fmt_ns(p90),
                fmt_ns(p99),
                fmt_ns(max),
            ]);
        }
        for line in lt.render().lines() {
            eprintln!("  {line}");
        }
    }
}

/// The `--store-stats` report on stdout: local store counters, remote
/// client counters, and the server's own `/stats` tallies.
fn print_store_stats(session: &SimSession) {
    match session.store() {
        Some(store) => {
            let s = store.stats();
            let usage = store.disk_usage();
            println!("result store ({}):", store.root().display());
            println!("  hits: {}", s.hits);
            println!("  misses: {}", s.misses);
            println!("  corrupt: {}", s.corrupt);
            println!("  writes: {}", s.writes);
            println!("  write errors: {}", s.write_errors);
            println!("  bytes read: {}", s.bytes_read);
            println!("  bytes written: {}", s.bytes_written);
            println!("  records on disk: {}", usage.records);
            println!("  bytes on disk: {}", usage.bytes);
            println!("  generation: {}", store.generation());
        }
        None => println!("result store: disabled (set DRI_STORE to a directory to enable)"),
    }
    if let Some(remote) = session.remote() {
        let r = remote.stats();
        println!("remote store (http://{}):", remote.describe());
        println!("  hits: {}", r.hits);
        println!("  misses: {}", r.misses);
        println!("  corrupt: {}", r.corrupt);
        println!("  errors: {}", r.errors);
        println!("  bytes fetched: {}", r.bytes_fetched);
        println!("  batch round trips: {}", r.batch_round_trips);
        // Write-side counters, named like the server's /stats JSON
        // fields so a client line and a server line about the same
        // quantity grep identically from both reports.
        println!("  records accepted: {}", r.records_accepted);
        println!("  writes rejected: {}", r.writes_rejected);
        println!("  push round trips: {}", r.push_round_trips);
        // Per-shard client traffic: a fleet's aggregate above hides
        // which shard a dead server starved, so break the read/write
        // counters out per address (single-remote runs skip this — the
        // aggregate IS the shard).
        if remote.is_sharded() {
            for (addr, s) in remote.shard_stats() {
                println!(
                    "  shard http://{addr}: {} hits, {} misses, {} errors, \
                     {} accepted, {} batch rt, {} push rt",
                    s.hits,
                    s.misses,
                    s.errors,
                    s.records_accepted,
                    s.batch_round_trips,
                    s.push_round_trips
                );
            }
        }
        // The servers' own side of the story: one GET /stats scrape per
        // shard surfaces the write-path and lease-scheduler tallies and
        // any chaos injections next to the client counters above. On a
        // single-worker run the three write-side pairs match line for
        // line; a fleet's server lines sum over every worker (and, with
        // replication, count each record once per owning shard).
        for (addr, stats) in remote.server_stats_all() {
            match stats {
                Some(s) => {
                    println!("server (http://{addr}/stats):");
                    println!("  records accepted: {}", s.records_accepted);
                    println!("  writes rejected: {}", s.writes_rejected);
                    println!("  push round trips: {}", s.push_round_trips);
                    // Journal depth > 0 means acked records still awaiting
                    // compaction into record files — normal in flight, and
                    // drained within a compaction interval once pushes stop.
                    println!("  journal depth: {}", s.journal_depth);
                    println!("  journal batches: {}", s.journal_batches);
                    println!("  journal fsyncs: {}", s.journal_fsyncs);
                    println!("  journal compacted: {}", s.journal_compacted);
                    println!("  faults injected: {}", s.faults_injected);
                    println!("  lease claims: {}", s.lease_claims);
                    println!("  lease granted: {}", s.lease_granted);
                    println!("  lease reclaimed: {}", s.lease_reclaimed);
                    println!("  lease renewed: {}", s.lease_renewed);
                    println!("  lease completed: {}", s.lease_completed);
                    println!("  lease rejected: {}", s.lease_rejected);
                }
                None => println!("server (http://{addr}/stats): unavailable"),
            }
        }
    }
}

/// Renders a nanosecond figure at the precision a summary table wants.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}
