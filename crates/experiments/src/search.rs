//! The per-benchmark parameter search of §5.3.
//!
//! The paper reports *best-case* energy-delay "under various combinations
//! of [miss-bound and size-bound] … determined via simulation by
//! empirically searching the combination space", in two flavours:
//! **performance-constrained** (best energy-delay with slowdown under 4%)
//! and **performance-unconstrained** (best energy-delay outright). This
//! module reproduces that search.

use crate::runner::{compare_with_baseline, run_conventional, run_dri, Comparison, RunConfig};
use synth_workload::suite::Benchmark;

/// The paper's performance-degradation cap for the constrained search.
pub const SLOWDOWN_CONSTRAINT: f64 = 0.04;

/// The (miss-bound × size-bound) grid to explore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Candidate miss-bounds (misses per sense interval).
    pub miss_bounds: Vec<u64>,
    /// Candidate size-bounds in bytes.
    pub size_bounds: Vec<u64>,
}

impl SearchSpace {
    /// The standard grid: miss-bounds spanning roughly one to two orders
    /// of magnitude above typical conventional miss counts (as in the
    /// paper), size-bounds covering every power of two from 1K to the full
    /// 64K.
    pub fn standard() -> Self {
        SearchSpace {
            miss_bounds: vec![50, 100, 200, 800],
            size_bounds: vec![1, 2, 4, 8, 16, 32, 64]
                .into_iter()
                .map(|k| k * 1024)
                .collect(),
        }
    }

    /// A reduced grid for smoke tests and benches.
    pub fn quick() -> Self {
        SearchSpace {
            miss_bounds: vec![100, 400],
            size_bounds: vec![2 * 1024, 8 * 1024, 32 * 1024],
        }
    }
}

/// Search outcome for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SearchResult {
    /// The benchmark searched.
    pub benchmark: Benchmark,
    /// Best energy-delay with slowdown ≤ 4%.
    pub constrained: Comparison,
    /// Best energy-delay regardless of slowdown.
    pub unconstrained: Comparison,
}

/// The full (miss-bound × size-bound) grid for one benchmark as run
/// configurations, in the canonical search order (size-bounds outer,
/// miss-bounds inner; bounds over the cache size skipped). This is both
/// what [`search_benchmark`] simulates and what the batch-prefetch pass
/// ([`crate::session::SimSession::prefetch`]) enumerates up front.
pub fn grid_configs(base: &RunConfig, space: &SearchSpace) -> Vec<RunConfig> {
    let mut cfgs: Vec<RunConfig> = Vec::new();
    for &size_bound in &space.size_bounds {
        if size_bound > base.dri.max_size_bytes {
            continue;
        }
        for &miss_bound in &space.miss_bounds {
            let mut cfg = base.clone();
            cfg.dri.miss_bound = miss_bound;
            cfg.dri.size_bound_bytes = size_bound;
            cfgs.push(cfg);
        }
    }
    cfgs
}

/// Exhaustively searches the grid for one benchmark, reusing a single
/// baseline run and simulating the grid's DRI points across
/// [`crate::harness::threads`] workers. `base` supplies everything but
/// the two searched parameters.
///
/// The best-point selection folds over the grid in its canonical order
/// (size-bounds outer, miss-bounds inner), so ties resolve exactly as the
/// original serial search resolved them.
pub fn search_benchmark(base: &RunConfig, space: &SearchSpace) -> SearchResult {
    let cfgs = grid_configs(base, space);
    // Resolve the grid through the cache tiers in bulk first (a no-op
    // when an enclosing search_all already warmed the session).
    crate::session::prefetch_grid(&cfgs);
    let baseline = run_conventional(base);
    let runs = crate::harness::parallel_map(&cfgs, run_dri);
    // With push mode on, heal whatever this grid had to simulate upward
    // into the shared store (one chunked POST /batch-put; a no-op when
    // every point came from a cache tier).
    crate::session::push_grid();
    let mut best_constrained: Option<Comparison> = None;
    let mut best_unconstrained: Option<Comparison> = None;
    for (cfg, dri) in cfgs.iter().zip(&runs) {
        let c = compare_with_baseline(cfg, &baseline, dri);
        if c.slowdown <= SLOWDOWN_CONSTRAINT
            && best_constrained.is_none_or(|b| c.relative_energy_delay < b.relative_energy_delay)
        {
            best_constrained = Some(c);
        }
        if best_unconstrained.is_none_or(|b| c.relative_energy_delay < b.relative_energy_delay) {
            best_unconstrained = Some(c);
        }
        // With the full-size bound and a generous miss-bound the cache
        // never resizes, so the constrained set is never empty; the
        // expect below documents that invariant.
    }
    let unconstrained = best_unconstrained.expect("non-empty search space");
    let constrained = best_constrained.unwrap_or(unconstrained);
    SearchResult {
        benchmark: base.benchmark,
        constrained,
        unconstrained,
    }
}

/// Searches every selected benchmark (all fifteen unless
/// `DRI_BENCHMARKS` restricts the campaign — the fleet-splitting knob),
/// spreading the work over at most `threads` workers (drawn from the
/// same process-wide budget the per-benchmark grids use, so the fan-out
/// never multiplies past the machine).
///
/// The **entire cross-benchmark grid** is enumerated and prefetched
/// before the fan-out, so a cold worker pointed at a warm `dri-serve`
/// instance resolves the whole campaign — every benchmark's baseline and
/// every (miss-bound × size-bound) point — in **one** batch round-trip,
/// not one per benchmark (the per-benchmark prefetch inside
/// [`search_benchmark`] then finds everything memory-resident and stays
/// off the network). With push mode on, whatever the campaign had to
/// simulate is pushed upward after the fan-out too (each per-benchmark
/// grid pushes as it finishes; the final [`crate::session::push_grid`]
/// drains stragglers).
pub fn search_all(
    make_base: impl Fn(Benchmark) -> RunConfig + Sync,
    space: &SearchSpace,
    threads: usize,
) -> Vec<SearchResult> {
    let benchmarks = crate::harness::selected_benchmarks();
    let campaign: Vec<RunConfig> = benchmarks
        .iter()
        .flat_map(|&b| grid_configs(&make_base(b), space))
        .collect();
    crate::session::prefetch_grid(&campaign);
    let results = crate::harness::parallel_map_capped(threads.max(1), &benchmarks, |&b| {
        search_benchmark(&make_base(b), space)
    });
    crate::session::push_grid();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_prefers_lower_energy_delay() {
        let mut base = RunConfig::quick(Benchmark::Compress);
        base.instruction_budget = Some(300_000);
        let r = search_benchmark(&base, &SearchSpace::quick());
        // compress is class 1: big savings within the constraint.
        assert!(r.constrained.slowdown <= SLOWDOWN_CONSTRAINT);
        assert!(
            r.constrained.relative_energy_delay < 0.7,
            "constrained ED {}",
            r.constrained.relative_energy_delay
        );
        // Unconstrained can only be at least as good.
        assert!(
            r.unconstrained.relative_energy_delay <= r.constrained.relative_energy_delay + 1e-12
        );
    }

    #[test]
    fn oversized_bounds_are_skipped() {
        let mut base = RunConfig::quick(Benchmark::Li);
        base.instruction_budget = Some(200_000);
        let space = SearchSpace {
            miss_bounds: vec![100],
            size_bounds: vec![4 * 1024, 128 * 1024], // 128K > 64K max: skipped
        };
        let r = search_benchmark(&base, &space);
        assert_eq!(r.unconstrained.size_bound_bytes, 4 * 1024);
    }
}
