//! The paper's published per-benchmark results, digitised from Figure 3
//! and the surrounding text, for side-by-side "paper vs measured" output.
//!
//! Figure 3 is a bar chart; values here are read off the plot to roughly
//! ±0.05, guided by the text ("the reduction ranges from as much as 80%
//! for applu, compress, ijpeg, and mgrid, to 60% for apsi, hydro2d, li,
//! and swim, 40% for m88ksim, perl, and su2cor, and 10% for gcc, go, and
//! tomcatv", §5.3).

use synth_workload::suite::Benchmark;

/// Published Figure 3 values for one benchmark (performance-constrained
/// case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Published {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Relative energy-delay (conventional = 1.0), constrained.
    pub relative_energy_delay: f64,
    /// Average cache size as a fraction of 64K, constrained.
    pub avg_size_fraction: f64,
}

/// Figure 3's performance-constrained bars.
pub fn figure3() -> Vec<Fig3Published> {
    use Benchmark::*;
    [
        (Applu, 0.20, 0.20),
        (Compress, 0.20, 0.20),
        (Li, 0.40, 0.20),
        (Mgrid, 0.20, 0.20),
        (Swim, 0.40, 0.35),
        (Apsi, 0.40, 0.40),
        (Fpppp, 1.00, 1.00),
        (Go, 0.90, 0.80),
        (M88ksim, 0.60, 0.40),
        (Perl, 0.60, 0.40),
        (Gcc, 0.90, 0.80),
        (Hydro2d, 0.40, 0.35),
        (Ijpeg, 0.20, 0.20),
        (Su2cor, 0.60, 0.40),
        (Tomcatv, 0.90, 0.80),
    ]
    .into_iter()
    .map(
        |(benchmark, relative_energy_delay, avg_size_fraction)| Fig3Published {
            benchmark,
            relative_energy_delay,
            avg_size_fraction,
        },
    )
    .collect()
}

/// The headline result: mean leakage energy-delay reduction with the
/// performance constraint (62%) and without (67%).
pub const HEADLINE_CONSTRAINED_REDUCTION: f64 = 0.62;
/// Unconstrained headline reduction.
pub const HEADLINE_UNCONSTRAINED_REDUCTION: f64 = 0.67;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_benchmarks_in_order() {
        let rows = figure3();
        assert_eq!(rows.len(), 15);
        for (row, bench) in rows.iter().zip(Benchmark::all()) {
            assert_eq!(row.benchmark, bench);
        }
    }

    #[test]
    fn class_text_is_respected() {
        // The class-1 members sit at ~80% reduction; fpppp saves nothing.
        let rows = figure3();
        let get = |b: Benchmark| {
            rows.iter()
                .find(|r| r.benchmark == b)
                .unwrap()
                .relative_energy_delay
        };
        assert!(get(Benchmark::Applu) <= 0.25);
        assert!((get(Benchmark::Fpppp) - 1.0).abs() < 1e-9);
        assert!(get(Benchmark::Gcc) >= 0.8);
    }
}
