//! The work-stealing campaign worker: claim → simulate → push → complete.
//!
//! A campaign splits into named **work units** (one benchmark each) that
//! live as durable leases on the serving host (`dri_store::lease`,
//! brokered over `POST /lease/claim|renew|complete` — see `dri_serve`).
//! Instead of pre-assigning benchmarks with `DRI_BENCHMARKS`, a `suite
//! --steal` worker calls [`drain`]: it loops claiming whatever unit is
//! next, runs it, pushes what it simulated to the shared store, and
//! completes the lease. Fast workers naturally take more units, a dead
//! worker's lease expires and is **reclaimed** by any survivor, and the
//! campaign is drained when every unit is completed — no coordinator
//! process, no static partitioning.
//!
//! Crash-safety comes from the tier system, not from the scheduler:
//! simulations are deterministic, so a reclaimed unit re-executes
//! bit-identically, and whatever the dead worker already pushed is
//! served straight back to the reclaimer by the prefetch tier — re-won
//! work costs a batch round-trip, not a simulation.
//!
//! While a unit runs, a heartbeat thread renews the lease at a third of
//! the granted TTL, so a live worker is never mistaken for a dead one
//! mid-sweep; the heartbeat stops (and the lease is completed) the
//! moment the unit's body returns — or unwinds, so a panicking unit
//! still releases its heartbeat.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dri_serve::{LeaseClaim, LeaseError, RemoteStore};
use dri_telemetry::{trace, Span};

/// Environment variable gating work-stealing campaign mode. Off by
/// default; set `DRI_STEAL=1` (or `on`/`true`/`yes`) — or pass `suite
/// --steal` / a manifest's `steal = on` — to enable it.
pub const STEAL_ENV: &str = "DRI_STEAL";

/// Environment variable naming this worker to the lease scheduler.
/// Unset, the worker is `worker-<pid>`; CI sets readable names so the
/// server's lease files and logs identify who held what.
pub const WORKER_ENV: &str = "DRI_WORKER";

/// How long a worker sleeps between claim attempts while every
/// remaining unit is leased to someone else (or a transient claim
/// failure is backing off).
pub const WAIT_POLL: Duration = Duration::from_millis(150);

/// Consecutive failed claims (transport errors, after the client's own
/// per-call retry budget) before the worker gives up. Waits and grants
/// reset the count — this bails out of a *dead* scheduler, not a busy
/// one.
pub const MAX_CLAIM_FAILURES: u32 = 5;

/// Granularity at which the heartbeat thread notices the unit finished,
/// so completing a fast unit never blocks on a sleeping heartbeat.
const STOP_POLL: Duration = Duration::from_millis(10);

/// Whether work-stealing campaign mode is enabled (reads [`STEAL_ENV`]
/// afresh on every call, like the other `DRI_*` switches, so a
/// manifest's `steal =` option takes effect even after the global
/// session exists).
pub fn steal_enabled() -> bool {
    match std::env::var(STEAL_ENV) {
        Ok(raw) => matches!(
            raw.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes"
        ),
        Err(_) => false,
    }
}

/// This worker's name to the scheduler: [`WORKER_ENV`] when set and
/// non-empty, else `worker-<pid>`.
pub fn worker_name() -> String {
    std::env::var(WORKER_ENV)
        .ok()
        .map(|raw| raw.trim().to_owned())
        .filter(|name| !name.is_empty())
        .unwrap_or_else(|| format!("worker-{}", std::process::id()))
}

/// The deterministic campaign identifier a fleet of workers agrees on:
/// the simulating job names joined with `.`, suffixed `-quick` in quick
/// mode (a quick and a full campaign of the same jobs must never share
/// lease state — their units are different work). The result is a safe
/// lease-directory name as long as job names are (they are: the
/// scheduler's [`dri_store::lease::name_is_safe`] allows `[A-Za-z0-9._-]`).
pub fn campaign_id(job_names: &[&str], quick: bool) -> String {
    let mut id = job_names.join(".");
    if id.is_empty() {
        id.push_str("empty");
    }
    if quick {
        id.push_str("-quick");
    }
    id
}

/// What one [`drain`] call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Leases granted to this worker (first claims and reclaims).
    pub granted: u64,
    /// Of those, expired leases reclaimed from another worker.
    pub reclaimed: u64,
    /// Units this worker ran *and* completed.
    pub completed: u64,
    /// Units this worker ran whose completion did not land: the lease
    /// expired mid-run and was reclaimed by someone else (the refused
    /// completion), or the completion call failed in transport. The
    /// work is not wasted — it was pushed, so the re-executing worker
    /// replays it from the store.
    pub lost: u64,
    /// Heartbeat renewals sent while units ran.
    pub renewals: u64,
    /// Claim attempts answered `wait` (every remaining unit was leased
    /// to a live worker at that moment).
    pub waits: u64,
}

/// Drains `campaign` as `worker`: loops **claim → run → complete**
/// until the scheduler reports the campaign drained, running each
/// granted unit through `run_unit` under a heartbeat that renews the
/// lease at a third of its TTL. `units` seeds the campaign idempotently
/// on every claim, so whichever worker arrives first creates the lease
/// table and late joiners see the same one.
///
/// `run_unit` is expected to push what it simulates before returning
/// (the `suite --steal` runner drains the session's pending pushes at
/// the end of each unit) — completion marks the unit's results as
/// *centrally available*, not merely computed.
///
/// Returns when the campaign is drained. Fails fast on authentication
/// errors (a worker without the server's `DRI_TOKEN` can never make
/// progress) and after [`MAX_CLAIM_FAILURES`] consecutive transport
/// failures (a dead scheduler); a busy campaign — claims answered
/// `wait` — polls patiently at [`WAIT_POLL`] instead.
pub fn drain(
    control: &RemoteStore,
    campaign: &str,
    units: &[String],
    worker: &str,
    run_unit: impl Fn(&str),
) -> Result<DrainOutcome, String> {
    // Ambient context for every event the drain loop (and the session
    // tiers running beneath it) emits: worker + campaign for the whole
    // drain, unit per claimed lease. No-ops when tracing is off.
    trace::set_context("worker", worker);
    trace::set_context("campaign", campaign);
    let mut outcome = DrainOutcome::default();
    let mut claim_failures = 0u32;
    loop {
        match control.lease_claim(campaign, worker, units) {
            Ok(LeaseClaim::Granted {
                unit,
                generation,
                ttl_ms,
                reclaimed,
                ..
            }) => {
                claim_failures = 0;
                outcome.granted += 1;
                outcome.reclaimed += u64::from(reclaimed);
                trace::set_context("unit", &unit);
                let span = Span::begin("unit", &unit)
                    .label("gen", &generation.to_string())
                    .label("reclaimed", if reclaimed { "1" } else { "0" });
                outcome.renewals += run_with_heartbeat(
                    control,
                    campaign,
                    &unit,
                    generation,
                    worker,
                    ttl_ms,
                    || run_unit(&unit),
                );
                let completion = control.lease_complete(campaign, &unit, generation, worker);
                span.finish(match &completion {
                    Ok(()) => "completed",
                    Err(_) => "lost",
                });
                trace::clear_context("unit");
                match completion {
                    Ok(()) => outcome.completed += 1,
                    Err(LeaseError::Denied(status)) => return Err(denied(status)),
                    // Reclaimed mid-run, or the completion call itself
                    // failed: the unit will be re-executed (cheaply —
                    // its records were pushed), so keep draining.
                    Err(LeaseError::Refused(_) | LeaseError::Unavailable) => outcome.lost += 1,
                }
            }
            Ok(LeaseClaim::Wait { .. }) => {
                claim_failures = 0;
                outcome.waits += 1;
                std::thread::sleep(WAIT_POLL);
            }
            Ok(LeaseClaim::Drained) => {
                trace::clear_context("campaign");
                trace::clear_context("worker");
                return Ok(outcome);
            }
            Err(LeaseError::Denied(status)) => return Err(denied(status)),
            Err(err) => {
                claim_failures += 1;
                if claim_failures >= MAX_CLAIM_FAILURES {
                    return Err(format!(
                        "giving up after {MAX_CLAIM_FAILURES} consecutive failed claims \
                         (last: {err})"
                    ));
                }
                std::thread::sleep(WAIT_POLL);
            }
        }
    }
}

fn denied(status: u16) -> String {
    format!(
        "the scheduler denied the lease request with HTTP {status} — \
         stealing requires the server's DRI_TOKEN (and a writable server)"
    )
}

/// Runs `body` while a scoped heartbeat thread renews the lease every
/// `ttl_ms / 3`; returns the number of successful renewals. The
/// heartbeat stops when `body` returns — or unwinds (the stop flag is
/// set by a drop guard), so a panicking unit cannot leave the thread
/// renewing a lease nobody is working under. A *refused* renewal also
/// stops it: the lease was reclaimed (or the clock ran out), and
/// continuing to renew could only fight the new owner.
fn run_with_heartbeat(
    control: &RemoteStore,
    campaign: &str,
    unit: &str,
    generation: u64,
    worker: &str,
    ttl_ms: u64,
    body: impl FnOnce(),
) -> u64 {
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    let stop = AtomicBool::new(false);
    let renewals = AtomicU64::new(0);
    let interval = Duration::from_millis((ttl_ms / 3).max(1));
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut last = Instant::now();
            while !stop.load(Ordering::SeqCst) {
                if last.elapsed() >= interval {
                    match control.lease_renew(campaign, unit, generation, worker) {
                        Ok(_) => {
                            renewals.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(LeaseError::Refused(_) | LeaseError::Denied(_)) => break,
                        // Transport trouble: keep trying — the next
                        // beat may get through before the TTL runs out.
                        Err(LeaseError::Unavailable) => {}
                    }
                    last = Instant::now();
                }
                std::thread::sleep(STOP_POLL.min(interval));
            }
        });
        let _stop_guard = StopOnDrop(&stop);
        body();
    });
    renewals.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_store::ResultStore;
    use std::path::PathBuf;
    use std::sync::{Arc, Mutex};

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dri-steal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn units(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn campaign_ids_are_deterministic_and_lease_safe() {
        assert_eq!(campaign_id(&["figure3"], false), "figure3");
        assert_eq!(campaign_id(&["figure3"], true), "figure3-quick");
        assert_eq!(
            campaign_id(&["figure3", "figure4", "section5_6"], true),
            "figure3.figure4.section5_6-quick"
        );
        assert_eq!(campaign_id(&[], false), "empty");
        for quick in [false, true] {
            assert!(dri_store::lease::name_is_safe(&campaign_id(
                &["figure3", "figure4", "figure5", "figure6", "section5_6"],
                quick
            )));
        }
    }

    #[test]
    fn worker_names_fall_back_to_the_pid() {
        // The environment override is covered by the CI chaos job (which
        // names its workers); here only the ambient-default case is
        // observable without mutating global state.
        if std::env::var_os(WORKER_ENV).is_none() {
            assert_eq!(worker_name(), format!("worker-{}", std::process::id()));
        }
    }

    #[test]
    fn steal_mode_defaults_off() {
        if std::env::var_os(STEAL_ENV).is_none() {
            assert!(!steal_enabled());
        }
    }

    #[test]
    fn drain_runs_every_unit_once_and_then_reports_drained() {
        let root = temp_root("lifecycle");
        let token = "steal-unit-secret";
        let server = dri_serve::Server::bind_with_options(
            Arc::new(ResultStore::open(&root).expect("open store")),
            "127.0.0.1:0",
            4,
            Some(token.to_owned()),
            60_000,
            None,
        )
        .expect("bind");
        let control = RemoteStore::with_token(server.addr().to_string(), Some(token.to_owned()));

        let plan = units(&["compress", "gcc", "li"]);
        let ran: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let outcome = drain(&control, "steal-unit-test", &plan, "w1", |unit| {
            ran.lock().expect("ran lock").push(unit.to_owned());
        })
        .expect("drain succeeds");
        assert_eq!(outcome.granted, 3);
        assert_eq!(outcome.completed, 3);
        assert_eq!(outcome.reclaimed, 0);
        assert_eq!(outcome.lost, 0);
        assert_eq!(
            *ran.lock().expect("ran lock"),
            vec!["compress", "gcc", "li"],
            "one worker drains in deterministic unit order"
        );

        // A late joiner finds the campaign already drained: no claims,
        // no work, immediate exit.
        let late = drain(&control, "steal-unit-test", &plan, "w2", |_| {
            panic!("nothing left to run")
        })
        .expect("drained campaign");
        assert_eq!(late, DrainOutcome::default());

        server.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn drain_fails_fast_without_the_write_token() {
        let root = temp_root("auth");
        let server = dri_serve::Server::bind_with_options(
            Arc::new(ResultStore::open(&root).expect("open store")),
            "127.0.0.1:0",
            2,
            Some("the-real-secret".to_owned()),
            60_000,
            None,
        )
        .expect("bind");
        let imposter = RemoteStore::with_token(server.addr().to_string(), Some("wrong".to_owned()));
        let err = drain(&imposter, "c", &units(&["u"]), "w", |_| {
            panic!("never granted")
        })
        .expect_err("denied");
        assert!(err.contains("401"), "{err}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }
}
