//! The disk tier's contract, extending the `session_identity` pattern to
//! cross-process warm starts: a store-loaded result is **bit-identical**
//! to a fresh simulation, a warmed store eliminates *all* re-simulation
//! (and even workload regeneration) in a new session, and every
//! corruption mode — truncation, wrong schema version, racing writers —
//! degrades to a recompute that again matches the cold run field by
//! field.
//!
//! Each test uses private `SimSession::builder().store(…)` scopes over its own
//! temp directory, so nothing here depends on (or pollutes) the `DRI_STORE`
//! environment; a fresh `SimSession` per phase models a fresh process
//! (the in-memory tier starts empty, exactly like a new `figure4` run).

use std::fs;
use std::path::{Path, PathBuf};

use dri_experiments::runner::{run_conventional_uncached, run_dri_uncached, ConventionalRun};
use dri_experiments::{DriRun, ResultStore, RunConfig, SimSession};
use synth_workload::suite::Benchmark;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "dri-store-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    root
}

fn open_store(root: &Path) -> ResultStore {
    ResultStore::open(root).expect("open store")
}

fn test_config() -> RunConfig {
    let mut cfg = RunConfig::quick(Benchmark::Compress);
    cfg.instruction_budget = Some(120_000);
    cfg.dri.size_bound_bytes = 8 * 1024;
    cfg
}

fn assert_conventional_identical(a: &ConventionalRun, b: &ConventionalRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy {} vs {}",
        a.bpred_accuracy,
        b.bpred_accuracy
    );
}

fn assert_dri_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_active_fraction.to_bits(),
        b.dri.avg_active_fraction.to_bits(),
        "{what}: avg_active_fraction"
    );
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(
        a.dri.final_size_bytes, b.dri.final_size_bytes,
        "{what}: final_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(a.dri.intervals, b.dri.intervals, "{what}: intervals");
    assert_eq!(
        a.dri.resizing_bits, b.dri.resizing_bits,
        "{what}: resizing_bits"
    );
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

/// All record files under `root`, recursively.
fn record_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "bin") {
                found.push(path);
            }
        }
    }
    found
}

/// Populates `root` with the baseline + DRI records for `cfg` and returns
/// the uncached reference pair.
fn warm_store(root: &Path, cfg: &RunConfig) -> (ConventionalRun, DriRun) {
    let session = SimSession::builder().store(open_store(root)).build();
    let baseline = session.conventional(cfg);
    let dri = session.policy_run(cfg);
    let stats = session.stats();
    assert_eq!(stats.baseline_misses, 1, "cold store must simulate");
    assert_eq!(stats.dri_misses, 1, "cold store must simulate");
    assert_eq!(
        session.store_stats().expect("store attached").writes,
        2,
        "both runs must be published to disk"
    );
    // The cold, store-backed results themselves match a no-cache run.
    let reference = (run_conventional_uncached(cfg), run_dri_uncached(cfg));
    assert_conventional_identical(&reference.0, &baseline, "cold baseline");
    assert_dri_identical(&reference.1, &dri, "cold dri");
    (reference.0, reference.1)
}

#[test]
fn second_process_warm_starts_with_zero_resimulation() {
    let root = temp_root("warm-start");
    let cfg = test_config();
    let (ref_baseline, ref_dri) = warm_store(&root, &cfg);

    // A fresh session over the same root models a second process: the
    // memory tier is cold, the disk tier is warm.
    let session = SimSession::builder().store(open_store(&root)).build();
    let baseline = session.conventional(&cfg);
    let dri = session.policy_run(&cfg);
    assert_conventional_identical(&ref_baseline, &baseline, "disk-loaded baseline");
    assert_dri_identical(&ref_dri, &dri, "disk-loaded dri");

    let stats = session.stats();
    assert_eq!(stats.baseline_misses, 0, "no baseline re-simulation");
    assert_eq!(stats.dri_misses, 0, "no DRI re-simulation");
    assert_eq!(stats.baseline_disk_hits, 1);
    assert_eq!(stats.dri_disk_hits, 1);
    assert_eq!(
        stats.workload_misses, 0,
        "a full disk hit must not even regenerate the workload"
    );
    let store = session.store_stats().expect("store attached");
    assert_eq!(store.hits, 2);
    assert_eq!(store.corrupt, 0);

    // Within the same session the memory tier now absorbs repeats.
    let again = session.policy_run(&cfg);
    assert_dri_identical(&ref_dri, &again, "memory re-hit");
    assert_eq!(session.stats().dri_hits, 1);
    assert_eq!(
        session.store_stats().expect("store attached").hits,
        2,
        "memory hit must not touch the disk again"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn truncated_entries_fall_back_to_an_identical_recompute() {
    let root = temp_root("truncated");
    let cfg = test_config();
    let (ref_baseline, ref_dri) = warm_store(&root, &cfg);

    let files = record_files(&root);
    assert_eq!(files.len(), 2, "one baseline + one DRI record: {files:?}");
    for file in &files {
        let bytes = fs::read(file).expect("record bytes");
        fs::write(file, &bytes[..bytes.len() * 3 / 5]).expect("truncate record");
    }

    let session = SimSession::builder().store(open_store(&root)).build();
    let baseline = session.conventional(&cfg);
    let dri = session.policy_run(&cfg);
    assert_conventional_identical(&ref_baseline, &baseline, "recompute after truncation");
    assert_dri_identical(&ref_dri, &dri, "recompute after truncation");
    let stats = session.stats();
    assert_eq!(stats.baseline_misses, 1, "truncated entry must re-simulate");
    assert_eq!(stats.dri_misses, 1, "truncated entry must re-simulate");
    let store = session.store_stats().expect("store attached");
    assert_eq!(store.corrupt, 2, "both truncations detected");
    assert_eq!(store.hits, 0);
    assert_eq!(store.writes, 2, "recomputed results must heal the store");

    // The healed entries serve the next "process" from disk again.
    let healed = SimSession::builder().store(open_store(&root)).build();
    assert_dri_identical(&ref_dri, &healed.policy_run(&cfg), "healed entry");
    assert_eq!(healed.stats().dri_misses, 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn wrong_schema_version_is_ignored_and_recomputed() {
    let root = temp_root("schema");
    let cfg = test_config();
    let (ref_baseline, ref_dri) = warm_store(&root, &cfg);

    // Rewrite each record's embedded schema-version field (bytes 4..8,
    // after the 4-byte magic). The checksum still matches a *well-formed*
    // file of the wrong version only if recomputed, so corrupt the field
    // alone: the header check must reject it before any payload use.
    for file in record_files(&root) {
        let mut bytes = fs::read(&file).expect("record bytes");
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&file, &bytes).expect("tamper version");
    }

    let session = SimSession::builder().store(open_store(&root)).build();
    let baseline = session.conventional(&cfg);
    let dri = session.policy_run(&cfg);
    assert_conventional_identical(&ref_baseline, &baseline, "recompute after schema drift");
    assert_dri_identical(&ref_dri, &dri, "recompute after schema drift");
    let stats = session.stats();
    assert_eq!(stats.baseline_misses, 1);
    assert_eq!(stats.dri_misses, 1);
    assert_eq!(session.store_stats().expect("store attached").hits, 0);
    assert!(session.store_stats().expect("store attached").corrupt >= 2);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_journal_tail_recovers_the_synced_prefix_and_compacts_bit_identically() {
    use dri_store::{Journal, JournalEntry, JournalOptions};

    let root = temp_root("journal-tail");
    let store = open_store(&root);

    let entry = |tag: u64, i: u64| JournalEntry {
        kind: "dri".to_owned(),
        schema: 1,
        key: ((tag as u128) << 64) | i as u128,
        payload: (0..6u64)
            .flat_map(|w| (tag * 7_919 + i * 13 + w).to_le_bytes())
            .collect(),
    };
    let batch = |tag: u64| (0..4).map(|i| entry(tag, i)).collect::<Vec<_>>();

    // Two batches land durably; the third tears mid-frame — the on-disk
    // shape a power cut leaves between `write` and `fsync`.
    let journal = Journal::open(&root, JournalOptions::default()).expect("open journal");
    journal.append_batch(batch(1)).expect("batch 1");
    journal.append_batch(batch(2)).expect("batch 2");
    journal
        .simulate_torn_append(&batch(3), 11)
        .expect("torn batch 3");
    drop(journal);

    // Recovery over the same root: the synced prefix is fully visible,
    // the torn frame is dropped whole.
    let recovered = Journal::open(&root, JournalOptions::default()).expect("reopen journal");
    assert_eq!(recovered.stats().recovered, 8, "both synced batches");
    assert_eq!(recovered.depth(), 8);
    for tag in [1, 2] {
        for i in 0..4 {
            let want = entry(tag, i);
            assert_eq!(
                recovered.lookup("dri", 1, want.key).as_deref(),
                Some(&want.payload),
                "recovered batch {tag} entry {i}"
            );
        }
    }
    for i in 0..4 {
        assert_eq!(
            recovered.lookup("dri", 1, entry(3, i).key),
            None,
            "torn batch entry {i} never becomes visible"
        );
    }

    // Compaction drains the prefix into record files bit-identically,
    // and the store itself (no journal in front) serves them.
    assert_eq!(recovered.compact(&store).expect("compact"), 8);
    assert_eq!(recovered.depth(), 0);
    for tag in [1, 2] {
        for i in 0..4 {
            let want = entry(tag, i);
            assert_eq!(
                store.load("dri", 1, want.key).as_deref(),
                Some(want.payload.as_slice()),
                "compacted batch {tag} entry {i}"
            );
        }
    }
    for i in 0..4 {
        assert_eq!(store.load("dri", 1, entry(3, i).key), None);
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn concurrent_writers_converge_to_identical_results() {
    let root = temp_root("concurrent");
    let cfg = test_config();
    let reference = run_dri_uncached(&cfg);

    // Several "processes" (independent sessions over the same root) race
    // to simulate and publish the same point.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let session = SimSession::builder().store(open_store(&root)).build();
                let dri = session.policy_run(&cfg);
                assert_dri_identical(&reference, &dri, "racing writer");
            });
        }
    });

    // Whatever interleaving happened, the store holds one valid record
    // and a later session loads it without simulating.
    let session = SimSession::builder().store(open_store(&root)).build();
    let dri = session.policy_run(&cfg);
    assert_dri_identical(&reference, &dri, "after the race");
    let stats = session.stats();
    assert_eq!(stats.dri_misses, 0, "the surviving record must be valid");
    assert_eq!(stats.dri_disk_hits, 1);
    assert_eq!(session.store_stats().expect("store attached").corrupt, 0);
    let _ = fs::remove_dir_all(&root);
}
