//! The authenticated write path, end to end: a fleet of workers fills
//! **one** central store, and cold replayers then get the whole campaign
//! for free.
//!
//! The headline proof is the distributed figure3 scenario (CI's
//! `distributed-smoke` job asserts the same thing over real `suite` and
//! `dri-serve` processes): two cold workers split the full 15-benchmark
//! quick-space grid — 105 unique records — simulate their own halves,
//! and push them to a single token-authenticated `dri-serve` store. A
//! third cold worker then replays the *entire* grid in one `POST /batch`
//! round-trip with **zero** local simulations, bit-identical to the
//! pushing workers' fresh runs; a server restart over the same root
//! changes nothing, because pushes land through the store's atomic
//! temp+rename writes.
//!
//! Degradation is proven alongside: a wrong-token worker is rejected
//! (`401`) and its results simply stay local; a corrupt frame inside a
//! push batch fails only its own entry; replayers missing a record
//! recompute locally, exactly as they would for any other miss.
//!
//! Like the other tier tests, every test runs its own ephemeral server
//! over its own temp store — nothing reads or pollutes `DRI_*` variables
//! (sessions get their push flag via `SessionBuilder::push`, not the
//! environment).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dri_experiments::runner::ConventionalRun;
use dri_experiments::search::{grid_configs, SearchSpace};
use dri_experiments::{DriRun, RemoteStore, ResultStore, RunConfig, SimSession};
use dri_serve::{PushOutcome, Server};
use synth_workload::suite::Benchmark;

const TOKEN: &str = "push-tier-test-secret";

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-push-tier-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn open_store(root: &Path) -> ResultStore {
    ResultStore::open(root).expect("open store")
}

/// A token-authenticated server over `root` on an ephemeral port.
fn serve_writable(root: &Path) -> Server {
    Server::bind_with_token(
        Arc::new(open_store(root)),
        "127.0.0.1:0",
        4,
        Some(TOKEN.to_owned()),
    )
    .expect("bind server")
}

/// A cold worker that simulates what it must and pushes it upward.
fn pushing_worker(addr: &str, token: &str) -> SimSession {
    SimSession::builder()
        .remote(RemoteStore::with_token(
            addr.to_owned(),
            Some(token.to_owned()),
        ))
        .push(true)
        .build()
}

/// Each benchmark's full quick-space search grid at a test-sized budget
/// (the same shape `tests/batch_prefetch.rs` replays).
fn figure3_like_grid(benchmarks: &[Benchmark]) -> Vec<RunConfig> {
    let space = SearchSpace::quick();
    benchmarks
        .iter()
        .flat_map(|&b| {
            let mut base = RunConfig::quick(b);
            base.instruction_budget = Some(60_000);
            grid_configs(&base, &space)
        })
        .collect()
}

fn assert_conventional_identical(a: &ConventionalRun, b: &ConventionalRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

fn assert_dri_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_active_fraction.to_bits(),
        b.dri.avg_active_fraction.to_bits(),
        "{what}: avg_active_fraction"
    );
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(
        a.dri.final_size_bytes, b.dri.final_size_bytes,
        "{what}: final_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(a.dri.intervals, b.dri.intervals, "{what}: intervals");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

#[test]
fn two_pushing_workers_fill_the_store_and_a_cold_third_replays_everything() {
    let central = temp_root("fleet-central");
    let benchmarks = Benchmark::all();
    let grid = figure3_like_grid(&benchmarks);
    let unique_records = benchmarks.len() * (6 + 1);
    assert_eq!(unique_records, 105, "the full quick figure3 record grid");

    // One empty, token-authenticated central store. Nothing seeds it.
    let server = serve_writable(&central);
    let addr = server.addr().to_string();

    // Two cold workers, each owning a disjoint half of the benchmark
    // suite. They simulate their halves (nothing can serve them) and
    // push what they computed.
    let mut reference: Vec<(ConventionalRun, DriRun)> = Vec::new();
    let mut pushed_total = 0;
    for half in [&benchmarks[..8], &benchmarks[8..]] {
        let worker = pushing_worker(&addr, TOKEN);
        let half_grid = figure3_like_grid(half);
        let half_records = half.len() * (6 + 1);
        // Prefetch answers with definitive misses (the store is cold) so
        // the per-point lookups below never re-ask the server.
        let report = worker.prefetch(&half_grid);
        assert_eq!(report.misses as usize, half_records, "cold store");
        for cfg in &half_grid {
            reference.push((worker.conventional(cfg), worker.policy_run(cfg)));
        }
        assert_eq!(worker.stats().simulations() as usize, half_records);
        let push = worker.push_pending();
        assert_eq!(push.batches, 1);
        assert_eq!(push.attempted as usize, half_records);
        assert_eq!(push.pushed as usize, half_records, "every record landed");
        assert_eq!(push.rejected, 0);
        assert_eq!(push.failed, 0);
        assert_eq!(push.round_trips, 1, "one chunked POST /batch-put");
        let remote = worker.remote_stats().expect("remote attached");
        assert_eq!(remote.records_accepted as usize, half_records);
        assert_eq!(remote.push_round_trips, 1);
        pushed_total += half_records;
    }
    assert_eq!(pushed_total, unique_records);
    let stats = server.stats();
    assert_eq!(stats.records_accepted as usize, unique_records);
    assert_eq!(stats.writes_rejected, 0);
    assert_eq!(stats.push_round_trips, 2, "one per pushing worker");

    // A third, completely cold worker replays the full grid: one batch
    // round-trip, zero simulations, zero workload generations, and every
    // counter bit-identical to the workers' fresh runs.
    let replayer = SimSession::builder()
        .remote(RemoteStore::new(addr.clone()))
        .build();
    let report = replayer.prefetch(&grid);
    assert_eq!(report.planned as usize, unique_records);
    assert_eq!(
        report.remote_hits as usize, unique_records,
        "105/105 served"
    );
    assert_eq!(report.misses, 0);
    assert_eq!(report.batch_round_trips, 1, "exactly one POST /batch");
    for (cfg, (ref_baseline, ref_dri)) in grid.iter().zip(&reference) {
        assert_conventional_identical(ref_baseline, &replayer.conventional(cfg), "replay baseline");
        assert_dri_identical(ref_dri, &replayer.policy_run(cfg), "replay dri");
    }
    let stats = replayer.stats();
    assert_eq!(stats.simulations(), 0, "nothing simulated on replay");
    assert_eq!(stats.workload_misses, 0, "no workload even generated");

    // Restart the service over the same root: pushes landed as ordinary
    // atomic store writes, so a fresh (read-only) server serves the
    // healed store identically.
    server.shutdown();
    let server = Server::bind(Arc::new(open_store(&central)), "127.0.0.1:0", 4).expect("rebind");
    let late = SimSession::builder()
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    let report = late.prefetch(&grid);
    assert_eq!(report.remote_hits as usize, unique_records);
    assert_eq!(report.misses, 0);
    for (cfg, (ref_baseline, ref_dri)) in grid.iter().zip(&reference) {
        assert_conventional_identical(ref_baseline, &late.conventional(cfg), "restart baseline");
        assert_dri_identical(ref_dri, &late.policy_run(cfg), "restart dri");
    }
    assert_eq!(late.stats().simulations(), 0);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn wrong_token_pushes_are_rejected_and_replayers_recompute_locally() {
    let central = temp_root("bad-token-central");
    let mut cfg = RunConfig::quick(Benchmark::Compress);
    cfg.instruction_budget = Some(60_000);

    let server = serve_writable(&central);
    let addr = server.addr().to_string();

    // The worker holds the wrong secret: it simulates fine, but its
    // pushes bounce with 401 and its results stay local.
    let worker = pushing_worker(&addr, "not-the-secret");
    let ref_baseline = worker.conventional(&cfg);
    let ref_dri = worker.policy_run(&cfg);
    let push = worker.push_pending();
    assert_eq!(push.attempted, 2);
    assert_eq!(push.pushed, 0);
    assert_eq!(push.rejected, 2, "definitive 401, not a transport failure");
    assert_eq!(push.failed, 0);
    let remote = worker.remote_stats().expect("remote attached");
    assert_eq!(remote.writes_rejected, 2);
    assert_eq!(remote.errors, 0, "auth rejection never trips the breaker");
    assert!(remote.push_round_trips >= 1);
    // Pushes latch off after a definitive rejection; reads still work.
    let _ = worker.policy_run(&cfg);
    let server_stats = server.stats();
    assert_eq!(server_stats.records_accepted, 0, "nothing landed");
    assert!(server_stats.writes_rejected >= 1);

    // A replayer finds nothing remote and degrades to local recompute —
    // bit-identical, just not free.
    let replayer = SimSession::builder().remote(RemoteStore::new(addr)).build();
    assert_conventional_identical(
        &ref_baseline,
        &replayer.conventional(&cfg),
        "recomputed baseline",
    );
    assert_dri_identical(&ref_dri, &replayer.policy_run(&cfg), "recomputed dri");
    assert_eq!(replayer.stats().simulations(), 2, "nothing was served");

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn a_corrupt_frame_fails_only_its_own_entry() {
    let central = temp_root("corrupt-frame-central");
    let mut cfg = RunConfig::quick(Benchmark::Li);
    cfg.instruction_budget = Some(60_000);

    let server = serve_writable(&central);
    let remote = RemoteStore::with_token(server.addr().to_string(), Some(TOKEN.to_owned()));

    // Build two genuine records and push them with a tampered frame in
    // between (right shape, damaged bytes — it fails server-side
    // validation).
    let baseline_key = dri_experiments::persist::baseline_key(&cfg);
    let dri_key = dri_experiments::persist::dri_key(&cfg);
    let schema = dri_experiments::persist::SCHEMA_VERSION;
    let session = SimSession::builder().build();
    let baseline_payload =
        dri_experiments::persist::encode_conventional(&session.conventional(&cfg));
    let dri_payload = dri_experiments::persist::encode_dri(&session.policy_run(&cfg));
    let baseline_record = dri_store::frame_record(schema, baseline_key, &baseline_payload);
    let dri_record = dri_store::frame_record(schema, dri_key, &dri_payload);
    let mut tampered = dri_store::frame_record(schema, 0x1234, b"tampered payload");
    tampered[10] ^= 0x40;

    let (outcomes, round_trips) = remote.push_batch(&[
        ("baseline", schema, baseline_key, &baseline_record),
        ("dri", schema, 0x1234, &tampered),
        ("dri", schema, dri_key, &dri_record),
    ]);
    assert_eq!(round_trips, 1);
    assert_eq!(
        outcomes,
        vec![
            PushOutcome::Accepted,
            PushOutcome::Rejected,
            PushOutcome::Accepted,
        ],
        "the corrupt frame fails alone"
    );
    // A key-mismatched frame (bytes valid, wrong address) also fails
    // alone: the server never trusts the claimed location.
    let (outcomes, _) = remote.push_batch(&[("dri", schema, dri_key + 1, &dri_record)]);
    assert_eq!(outcomes, vec![PushOutcome::Rejected]);
    let stats = server.stats();
    assert_eq!(stats.records_accepted, 2);
    assert_eq!(stats.writes_rejected, 2);

    // The two good records serve a cold replayer; the grid point the
    // corrupt frame would have covered recomputes locally.
    let replayer = SimSession::builder()
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    assert_dri_identical(
        &session.policy_run(&cfg),
        &replayer.policy_run(&cfg),
        "served dri",
    );
    assert_conventional_identical(
        &session.conventional(&cfg),
        &replayer.conventional(&cfg),
        "served baseline",
    );
    assert_eq!(replayer.stats().simulations(), 0);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn pushes_to_a_read_only_server_degrade_cleanly() {
    let central = temp_root("read-only-central");
    let mut cfg = RunConfig::quick(Benchmark::Mgrid);
    cfg.instruction_budget = Some(60_000);

    // The server has no token: the write path is disabled outright.
    let server = Server::bind(Arc::new(open_store(&central)), "127.0.0.1:0", 4).expect("bind");
    let worker = pushing_worker(&server.addr().to_string(), TOKEN);
    let _ = worker.policy_run(&cfg);
    let push = worker.push_pending();
    assert_eq!(push.attempted, 1);
    assert_eq!(push.rejected, 1, "405: writes disabled");
    assert_eq!(push.pushed, 0);
    assert_eq!(server.stats().records_accepted, 0);
    assert!(server.stats().writes_rejected >= 1);
    // The worker's results still exist in its own memory tier.
    assert_eq!(worker.stats().dri_hits, 0);
    let _ = worker.policy_run(&cfg);
    assert_eq!(worker.stats().dri_hits, 1);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn oversized_push_batches_split_into_chunks_under_the_server_cap() {
    let central = temp_root("chunked-central");
    let server = serve_writable(&central);
    let remote = RemoteStore::with_token(server.addr().to_string(), Some(TOKEN.to_owned()));

    // 10 tiny records pushed at a chunk size of 3 → 4 round-trips, all
    // accepted, all served back afterwards.
    let schema = 1u32;
    let records: Vec<(u128, Vec<u8>)> = (0..10u128)
        .map(|k| {
            let payload = format!("payload-{k}").into_bytes();
            (k, dri_store::frame_record(schema, k, &payload))
        })
        .collect();
    let entries: Vec<(&str, u32, u128, &[u8])> = records
        .iter()
        .map(|(k, record)| ("dri", schema, *k, record.as_slice()))
        .collect();
    let (outcomes, round_trips) = remote.push_batch_chunked(&entries, 3);
    assert_eq!(round_trips, 4, "ceil(10 / 3) chunks");
    assert!(outcomes.iter().all(|o| *o == PushOutcome::Accepted));
    assert_eq!(server.stats().records_accepted, 10);
    assert_eq!(server.stats().push_round_trips, 4);
    for (k, record) in &records {
        assert_eq!(
            remote.fetch("dri", schema, *k),
            dri_store::validate_record(record, schema, *k).map(<[u8]>::to_vec),
            "record {k} round-trips"
        );
    }

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}
