//! The lease-based work-stealing scheduler, end to end: a fleet drains
//! one campaign through the server's durable lease queue, and the drain
//! is chaos-proof — workers die, connections drop, and the survivors
//! still converge on the complete, bit-identical result set.
//!
//! Two scenarios:
//!
//! * **Healthy fleet** — two workers drain a four-benchmark campaign.
//!   Every unit is claimed exactly once, nothing is reclaimed, and the
//!   combined simulation count equals the unique record count: work
//!   stealing adds *zero* duplicated simulations when nobody crashes.
//! * **Chaos** — a worker claims a unit, pushes half of it, and dies
//!   without completing (simulated by simply abandoning the lease). The
//!   server injects periodic connection drops, and the short TTL lets a
//!   survivor reclaim the dead worker's unit and re-execute it. The
//!   drained store replays bit-identically against an isolated
//!   reference session, and a late claimant sees `drained` — zero
//!   stranded units.
//!
//! Like the other tier tests, every test runs its own ephemeral server
//! over its own temp store and passes tiers explicitly — nothing reads
//! or pollutes `DRI_*` variables.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use dri_experiments::runner::ConventionalRun;
use dri_experiments::search::{grid_configs, SearchSpace};
use dri_experiments::steal::{drain, DrainOutcome};
use dri_experiments::{DriRun, RemoteStore, ResultStore, RunConfig, SimSession};
use dri_serve::{FaultSpec, LeaseClaim, Server};
use synth_workload::suite::Benchmark;

const TOKEN: &str = "steal-campaign-test-secret";

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-steal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn open_store(root: &Path) -> ResultStore {
    ResultStore::open(root).expect("open store")
}

/// A token-authenticated scheduler over `root` with the given lease TTL
/// and optional chaos spec.
fn serve_scheduler(root: &Path, ttl_ms: u64, faults: Option<&str>) -> Server {
    let faults = faults.map(|spec| FaultSpec::parse(spec).expect("valid fault spec"));
    Server::bind_with_options(
        Arc::new(open_store(root)),
        "127.0.0.1:0",
        4,
        Some(TOKEN.to_owned()),
        ttl_ms,
        faults,
    )
    .expect("bind server")
}

fn worker_remote(addr: &str) -> RemoteStore {
    RemoteStore::with_token(addr.to_owned(), Some(TOKEN.to_owned()))
}

/// One benchmark's full quick-space search grid at a test-sized budget —
/// the per-unit workload of a steal campaign (7 records per unit).
fn unit_grid(benchmark: Benchmark) -> Vec<RunConfig> {
    let mut base = RunConfig::quick(benchmark);
    base.instruction_budget = Some(60_000);
    grid_configs(&base, &SearchSpace::quick())
}

fn benchmark_by_name(name: &str) -> Benchmark {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown unit `{name}`"))
}

fn assert_conventional_identical(a: &ConventionalRun, b: &ConventionalRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

fn assert_dri_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

/// Runs one steal worker to completion: its own cold pushing session,
/// draining `campaign` by simulating each claimed unit's grid and
/// pushing the records before completing the lease.
fn run_worker(
    addr: &str,
    campaign: &str,
    units: &[String],
    worker: &str,
    unit_delay: Duration,
) -> (DrainOutcome, u64) {
    let session = SimSession::builder()
        .remote(worker_remote(addr))
        .push(true)
        .build();
    let control = worker_remote(addr);
    let outcome = drain(&control, campaign, units, worker, |unit| {
        for cfg in &unit_grid(benchmark_by_name(unit)) {
            let _ = session.conventional(cfg);
            let _ = session.policy_run(cfg);
        }
        if !unit_delay.is_zero() {
            std::thread::sleep(unit_delay);
        }
        let push = session.push_pending();
        assert_eq!(push.failed, 0, "worker {worker}: pushes landed");
    })
    .unwrap_or_else(|e| panic!("worker {worker}: {e}"));
    (outcome, session.stats().simulations())
}

#[test]
fn two_healthy_workers_drain_the_campaign_with_zero_duplicate_simulations() {
    let central = temp_root("healthy");
    let server = serve_scheduler(&central, 60_000, None);
    let addr = server.addr().to_string();

    let units: Vec<String> = ["compress", "gcc", "li", "mgrid"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let unique_records: u64 = units.len() as u64 * 7;

    let (outcomes, simulated): (Vec<DrainOutcome>, Vec<u64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = ["alpha", "beta"]
            .iter()
            .map(|worker| {
                let (addr, units) = (addr.clone(), units.clone());
                scope.spawn(move || {
                    run_worker(&addr, "steal-healthy", &units, worker, Duration::ZERO)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .unzip()
    });

    // Every unit completed exactly once, fleet-wide; no reclaims, no
    // losses, and the combined simulation count is exactly the unique
    // record count — stealing introduced zero duplicated simulations.
    let total: DrainOutcome =
        outcomes
            .iter()
            .fold(DrainOutcome::default(), |acc, o| DrainOutcome {
                granted: acc.granted + o.granted,
                reclaimed: acc.reclaimed + o.reclaimed,
                completed: acc.completed + o.completed,
                lost: acc.lost + o.lost,
                renewals: acc.renewals + o.renewals,
                waits: acc.waits + o.waits,
            });
    assert_eq!(total.granted, units.len() as u64);
    assert_eq!(total.completed, units.len() as u64);
    assert_eq!(total.reclaimed, 0, "nobody died");
    assert_eq!(total.lost, 0);
    assert_eq!(
        simulated.iter().sum::<u64>(),
        unique_records,
        "no duplicate simulations"
    );
    let stats = server.stats();
    assert_eq!(stats.lease_granted, units.len() as u64);
    assert_eq!(stats.lease_completed, units.len() as u64);
    assert_eq!(stats.lease_reclaimed, 0);
    assert_eq!(stats.records_accepted, unique_records);

    // A late claimant finds the campaign drained.
    let late = worker_remote(&addr);
    assert_eq!(
        late.lease_claim("steal-healthy", "late", &units),
        Ok(LeaseClaim::Drained)
    );

    // A cold replayer gets the whole campaign remotely, bit-identical to
    // an isolated reference session, with zero simulations of its own.
    let reference = SimSession::builder().build();
    let replayer = SimSession::builder().remote(RemoteStore::new(addr)).build();
    let grid: Vec<RunConfig> = units
        .iter()
        .flat_map(|u| unit_grid(benchmark_by_name(u)))
        .collect();
    let report = replayer.prefetch(&grid);
    assert_eq!(report.remote_hits, unique_records);
    assert_eq!(report.misses, 0, "nothing left to simulate");
    for cfg in &grid {
        assert_conventional_identical(
            &reference.conventional(cfg),
            &replayer.conventional(cfg),
            "replay baseline",
        );
        assert_dri_identical(
            &reference.policy_run(cfg),
            &replayer.policy_run(cfg),
            "replay dri",
        );
    }
    assert_eq!(replayer.stats().simulations(), 0);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn a_dead_workers_unit_is_reclaimed_and_the_chaos_drain_stays_bit_identical() {
    let central = temp_root("chaos");
    // Short TTL so the dead worker's lease expires quickly; the server
    // also drops every 6th connection outright, which the client-side
    // retry layer must absorb (drop faults are never consecutive).
    let server = serve_scheduler(&central, 400, Some("drop:6"));
    let addr = server.addr().to_string();

    let campaign = "steal-chaos";
    let units: Vec<String> = ["compress", "gcc", "li"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let unique_records: u64 = units.len() as u64 * 7;

    // A worker claims a unit, pushes a *partial* share of it, and dies:
    // it never renews and never completes, so its lease expires.
    let doomed = worker_remote(&addr);
    let claim = doomed
        .lease_claim(campaign, "doomed", &units)
        .expect("first claim");
    let doomed_unit = match claim {
        LeaseClaim::Granted {
            unit, reclaimed, ..
        } => {
            assert!(!reclaimed, "fresh campaign");
            unit
        }
        other => panic!("expected a grant, got {other:?}"),
    };
    let dying = SimSession::builder()
        .remote(worker_remote(&addr))
        .push(true)
        .build();
    for cfg in unit_grid(benchmark_by_name(&doomed_unit)).iter().take(2) {
        let _ = dying.conventional(cfg);
        let _ = dying.policy_run(cfg);
    }
    let push = dying.push_pending();
    assert!(push.pushed > 0, "the dead worker left partial records");
    drop(dying);
    drop(doomed);
    std::thread::sleep(Duration::from_millis(500));

    // Two survivors drain everything. The per-unit delay outlives a
    // third of the TTL, so finishing a unit requires live heartbeats.
    let (outcomes, _): (Vec<DrainOutcome>, Vec<u64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = ["survivor-a", "survivor-b"]
            .iter()
            .map(|worker| {
                let (addr, units) = (addr.clone(), units.clone());
                scope.spawn(move || {
                    run_worker(&addr, campaign, &units, worker, Duration::from_millis(600))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .unzip()
    });

    let completed: u64 = outcomes.iter().map(|o| o.completed).sum();
    let reclaimed: u64 = outcomes.iter().map(|o| o.reclaimed).sum();
    let renewals: u64 = outcomes.iter().map(|o| o.renewals).sum();
    assert_eq!(completed, units.len() as u64, "the whole campaign drained");
    assert!(reclaimed >= 1, "the dead worker's unit was taken over");
    assert!(renewals >= 1, "long units forced heartbeat renewals");
    let stats = server.stats();
    assert_eq!(stats.lease_completed, units.len() as u64);
    assert!(stats.lease_reclaimed >= 1);
    assert!(stats.faults_injected >= 1, "the chaos layer actually fired");

    // Zero stranded units: a post-drain claim answers `drained`.
    let probe = worker_remote(&addr);
    assert_eq!(
        probe.lease_claim(campaign, "probe", &units),
        Ok(LeaseClaim::Drained)
    );

    // The re-executed unit healed over the dead worker's partial push
    // bit-identically: a cold replay of the full grid needs zero local
    // simulations and matches an isolated reference session.
    let reference = SimSession::builder().build();
    let replayer = SimSession::builder().remote(RemoteStore::new(addr)).build();
    let grid: Vec<RunConfig> = units
        .iter()
        .flat_map(|u| unit_grid(benchmark_by_name(u)))
        .collect();
    let report = replayer.prefetch(&grid);
    assert_eq!(report.remote_hits, unique_records);
    assert_eq!(report.misses, 0);
    for cfg in &grid {
        assert_conventional_identical(
            &reference.conventional(cfg),
            &replayer.conventional(cfg),
            "chaos replay baseline",
        );
        assert_dri_identical(
            &reference.policy_run(cfg),
            &replayer.policy_run(cfg),
            "chaos replay dri",
        );
    }
    assert_eq!(replayer.stats().simulations(), 0);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn reclaim_handoff_is_visible_to_the_original_owner() {
    // The precise failure interleaving the drain loop relies on: a
    // worker that stalls past its TTL loses renew *and* complete, and
    // the reclaimer's grant carries `reclaimed = true` — so the fleet
    // counts the takeover instead of double-counting the unit.
    let central = temp_root("handoff");
    let server = serve_scheduler(&central, 150, None);
    let addr = server.addr().to_string();
    let units = vec!["compress".to_owned()];

    let stalled = worker_remote(&addr);
    let (gen, unit) = match stalled.lease_claim("handoff", "stalled", &units) {
        Ok(LeaseClaim::Granted {
            unit, generation, ..
        }) => (generation, unit),
        other => panic!("expected a grant, got {other:?}"),
    };
    std::thread::sleep(Duration::from_millis(300));

    let reclaimer = worker_remote(&addr);
    match reclaimer.lease_claim("handoff", "reclaimer", &units) {
        Ok(LeaseClaim::Granted {
            unit: taken,
            generation,
            reclaimed,
            ..
        }) => {
            assert_eq!(taken, unit);
            assert!(reclaimed, "takeover grants are flagged");
            assert!(generation > gen, "generations are monotonic");
            reclaimer
                .lease_complete("handoff", &taken, generation, "reclaimer")
                .expect("reclaimer completes");
        }
        other => panic!("expected a reclaim grant, got {other:?}"),
    }
    // The original owner's renew and complete are both dead.
    assert!(stalled
        .lease_renew("handoff", &unit, gen, "stalled")
        .is_err());
    assert!(stalled
        .lease_complete("handoff", &unit, gen, "stalled")
        .is_err());
    assert_eq!(
        stalled.lease_claim("handoff", "stalled", &units),
        Ok(LeaseClaim::Drained),
        "the unit is done regardless of who finished it"
    );
    assert_eq!(server.stats().lease_reclaimed, 1);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}
