//! The session layer's contract: memoized (and parallel-swept) results
//! are *bit-identical* to fresh, uncached, serial runs.
//!
//! `run_conventional`/`run_dri` route through the global
//! [`dri_experiments::SimSession`]; `run_conventional_uncached`/
//! `run_dri_uncached` regenerate the workload and always simulate. Every
//! counter and every derived f64 must match to the last bit.

use dri_experiments::runner::{
    compare_with_baseline, run_conventional, run_conventional_uncached, run_dri, run_dri_uncached,
};
use dri_experiments::sweeps::miss_bound_sweep;
use dri_experiments::{Comparison, RunConfig, SimSession};
use synth_workload::suite::Benchmark;

fn assert_comparisons_bit_identical(a: &Comparison, b: &Comparison, what: &str) {
    assert_eq!(a.benchmark, b.benchmark, "{what}: benchmark");
    assert_eq!(a.miss_bound, b.miss_bound, "{what}: miss_bound");
    assert_eq!(a.size_bound_bytes, b.size_bound_bytes, "{what}: size_bound");
    assert_eq!(
        a.relative_energy_delay.to_bits(),
        b.relative_energy_delay.to_bits(),
        "{what}: relative_energy_delay {} vs {}",
        a.relative_energy_delay,
        b.relative_energy_delay
    );
    assert_eq!(
        a.leakage_component.to_bits(),
        b.leakage_component.to_bits(),
        "{what}: leakage_component"
    );
    assert_eq!(
        a.dynamic_component.to_bits(),
        b.dynamic_component.to_bits(),
        "{what}: dynamic_component"
    );
    assert_eq!(
        a.slowdown.to_bits(),
        b.slowdown.to_bits(),
        "{what}: slowdown"
    );
    assert_eq!(
        a.avg_size_fraction.to_bits(),
        b.avg_size_fraction.to_bits(),
        "{what}: avg_size_fraction"
    );
    assert_eq!(
        a.dri_miss_rate.to_bits(),
        b.dri_miss_rate.to_bits(),
        "{what}: dri_miss_rate"
    );
    assert_eq!(
        a.conventional_miss_rate.to_bits(),
        b.conventional_miss_rate.to_bits(),
        "{what}: conventional_miss_rate"
    );
    assert_eq!(
        a.extra_l2_accesses, b.extra_l2_accesses,
        "{what}: extra_l2_accesses"
    );
    assert_eq!(
        a.energy.effective().value().to_bits(),
        b.energy.effective().value().to_bits(),
        "{what}: effective energy"
    );
}

fn uncached_comparison(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional_uncached(cfg);
    let dri = run_dri_uncached(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

fn cached_comparison(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional(cfg);
    let dri = run_dri(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

#[test]
fn cached_runs_are_bit_identical_to_fresh_uncached_runs() {
    for (benchmark, size_bound) in [
        (Benchmark::Compress, 8 * 1024),
        (Benchmark::Li, 4 * 1024),
        (Benchmark::Gcc, 16 * 1024),
    ] {
        let mut cfg = RunConfig::quick(benchmark);
        cfg.instruction_budget = Some(200_000);
        cfg.dri.size_bound_bytes = size_bound;
        let fresh = uncached_comparison(&cfg);
        // First session pass populates the cache, second hits it; both
        // must equal the uncached reference bit for bit.
        let first = cached_comparison(&cfg);
        let second = cached_comparison(&cfg);
        let name = benchmark.name();
        assert_comparisons_bit_identical(&fresh, &first, &format!("{name} (cold cache)"));
        assert_comparisons_bit_identical(&fresh, &second, &format!("{name} (warm cache)"));
    }
}

#[test]
fn seed_overrides_key_the_cache_correctly() {
    let mut cfg = RunConfig::quick(Benchmark::Perl);
    cfg.instruction_budget = Some(150_000);
    cfg.seed_override = Some(42);
    let fresh = uncached_comparison(&cfg);
    let cached = cached_comparison(&cfg);
    assert_comparisons_bit_identical(&fresh, &cached, "perl seed 42");

    // A different seed must not alias to the cached seed-42 results.
    let mut other = cfg.clone();
    other.seed_override = Some(43);
    let other_fresh = uncached_comparison(&other);
    let other_cached = cached_comparison(&other);
    assert_comparisons_bit_identical(&other_fresh, &other_cached, "perl seed 43");
    assert_ne!(
        cached.relative_energy_delay.to_bits(),
        other_cached.relative_energy_delay.to_bits(),
        "different seeds should produce different runs (sanity check)"
    );
}

#[test]
fn parallel_sweep_matches_serial_uncached_points() {
    let mut base = RunConfig::quick(Benchmark::Mgrid);
    base.instruction_budget = Some(150_000);
    base.dri.size_bound_bytes = 4 * 1024;
    base.dri.miss_bound = 100;

    let sweep = miss_bound_sweep(&base);

    let point = |mb: u64| {
        let mut cfg = base.clone();
        cfg.dri.miss_bound = mb.max(1);
        let baseline = run_conventional_uncached(&base);
        let dri = run_dri_uncached(&cfg);
        compare_with_baseline(&cfg, &baseline, &dri)
    };
    assert_comparisons_bit_identical(&point(50), &sweep.half, "mgrid half");
    assert_comparisons_bit_identical(&point(100), &sweep.base, "mgrid base");
    assert_comparisons_bit_identical(&point(200), &sweep.double, "mgrid double");
}

#[test]
fn global_session_reports_cache_traffic() {
    let mut cfg = RunConfig::quick(Benchmark::Swim);
    cfg.instruction_budget = Some(120_000);
    let before = SimSession::global().stats();
    let _ = cached_comparison(&cfg);
    let _ = cached_comparison(&cfg);
    let after = SimSession::global().stats();
    assert!(
        after.baseline_hits > before.baseline_hits,
        "second pass must hit the baseline cache"
    );
    assert!(
        after.dri_hits > before.dri_hits,
        "second pass must hit the DRI-run cache"
    );
    // The global session honours an ambient `DRI_STORE`: on a warmed
    // store the first pass is a disk hit (no workload generation), so
    // accept either origin — what matters is that the point was produced
    // exactly once outside the memory tier.
    let simulated = after.workload_misses > before.workload_misses;
    let disk_served = after.disk_hits() > before.disk_hits();
    assert!(
        simulated || disk_served,
        "first pass must simulate or warm-start from the disk store"
    );
}
