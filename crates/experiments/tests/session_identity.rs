//! The session layer's contract: memoized (and parallel-swept) results
//! are *bit-identical* to fresh, uncached, serial runs.
//!
//! `run_conventional`/`run_policy` route through the global
//! [`dri_experiments::SimSession`]; `run_conventional_uncached`/
//! `run_policy_uncached` regenerate the workload and always simulate.
//! Every counter and every derived f64 must match to the last bit — for
//! the paper's DRI cache and for every other [`PolicyConfig`] model.
//!
//! The FNV-128 store keys are part of the same contract: a key names a
//! record in every store a fleet has ever written, so the golden-key
//! fixtures below pin one key per record kind forever. A key change is
//! a silent full-store invalidation and must be a deliberate
//! `SCHEMA_VERSION` bump, never a refactor side-effect.

use dri_experiments::persist::{baseline_key, policy_key, policy_kind};
use dri_experiments::runner::{
    compare_with_baseline, run_conventional, run_conventional_uncached, run_dri, run_dri_uncached,
    run_policy, run_policy_uncached, DriRun,
};
use dri_experiments::sweeps::miss_bound_sweep;
use dri_experiments::{Comparison, PolicyConfig, RunConfig, SimSession};
use synth_workload::suite::Benchmark;

fn assert_comparisons_bit_identical(a: &Comparison, b: &Comparison, what: &str) {
    assert_eq!(a.benchmark, b.benchmark, "{what}: benchmark");
    assert_eq!(a.miss_bound, b.miss_bound, "{what}: miss_bound");
    assert_eq!(a.size_bound_bytes, b.size_bound_bytes, "{what}: size_bound");
    assert_eq!(
        a.relative_energy_delay.to_bits(),
        b.relative_energy_delay.to_bits(),
        "{what}: relative_energy_delay {} vs {}",
        a.relative_energy_delay,
        b.relative_energy_delay
    );
    assert_eq!(
        a.leakage_component.to_bits(),
        b.leakage_component.to_bits(),
        "{what}: leakage_component"
    );
    assert_eq!(
        a.dynamic_component.to_bits(),
        b.dynamic_component.to_bits(),
        "{what}: dynamic_component"
    );
    assert_eq!(
        a.slowdown.to_bits(),
        b.slowdown.to_bits(),
        "{what}: slowdown"
    );
    assert_eq!(
        a.avg_size_fraction.to_bits(),
        b.avg_size_fraction.to_bits(),
        "{what}: avg_size_fraction"
    );
    assert_eq!(
        a.dri_miss_rate.to_bits(),
        b.dri_miss_rate.to_bits(),
        "{what}: dri_miss_rate"
    );
    assert_eq!(
        a.conventional_miss_rate.to_bits(),
        b.conventional_miss_rate.to_bits(),
        "{what}: conventional_miss_rate"
    );
    assert_eq!(
        a.extra_l2_accesses, b.extra_l2_accesses,
        "{what}: extra_l2_accesses"
    );
    assert_eq!(
        a.energy.effective().value().to_bits(),
        b.energy.effective().value().to_bits(),
        "{what}: effective energy"
    );
}

fn uncached_comparison(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional_uncached(cfg);
    let dri = run_dri_uncached(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

fn cached_comparison(cfg: &RunConfig) -> Comparison {
    let baseline = run_conventional(cfg);
    let dri = run_dri(cfg);
    compare_with_baseline(cfg, &baseline, &dri)
}

#[test]
fn cached_runs_are_bit_identical_to_fresh_uncached_runs() {
    for (benchmark, size_bound) in [
        (Benchmark::Compress, 8 * 1024),
        (Benchmark::Li, 4 * 1024),
        (Benchmark::Gcc, 16 * 1024),
    ] {
        let mut cfg = RunConfig::quick(benchmark);
        cfg.instruction_budget = Some(200_000);
        cfg.dri.size_bound_bytes = size_bound;
        let fresh = uncached_comparison(&cfg);
        // First session pass populates the cache, second hits it; both
        // must equal the uncached reference bit for bit.
        let first = cached_comparison(&cfg);
        let second = cached_comparison(&cfg);
        let name = benchmark.name();
        assert_comparisons_bit_identical(&fresh, &first, &format!("{name} (cold cache)"));
        assert_comparisons_bit_identical(&fresh, &second, &format!("{name} (warm cache)"));
    }
}

#[test]
fn seed_overrides_key_the_cache_correctly() {
    let mut cfg = RunConfig::quick(Benchmark::Perl);
    cfg.instruction_budget = Some(150_000);
    cfg.seed_override = Some(42);
    let fresh = uncached_comparison(&cfg);
    let cached = cached_comparison(&cfg);
    assert_comparisons_bit_identical(&fresh, &cached, "perl seed 42");

    // A different seed must not alias to the cached seed-42 results.
    let mut other = cfg.clone();
    other.seed_override = Some(43);
    let other_fresh = uncached_comparison(&other);
    let other_cached = cached_comparison(&other);
    assert_comparisons_bit_identical(&other_fresh, &other_cached, "perl seed 43");
    assert_ne!(
        cached.relative_energy_delay.to_bits(),
        other_cached.relative_energy_delay.to_bits(),
        "different seeds should produce different runs (sanity check)"
    );
}

#[test]
fn parallel_sweep_matches_serial_uncached_points() {
    let mut base = RunConfig::quick(Benchmark::Mgrid);
    base.instruction_budget = Some(150_000);
    base.dri.size_bound_bytes = 4 * 1024;
    base.dri.miss_bound = 100;

    let sweep = miss_bound_sweep(&base);

    let point = |mb: u64| {
        let mut cfg = base.clone();
        cfg.dri.miss_bound = mb.max(1);
        let baseline = run_conventional_uncached(&base);
        let dri = run_dri_uncached(&cfg);
        compare_with_baseline(&cfg, &baseline, &dri)
    };
    assert_comparisons_bit_identical(&point(50), &sweep.half, "mgrid half");
    assert_comparisons_bit_identical(&point(100), &sweep.base, "mgrid base");
    assert_comparisons_bit_identical(&point(200), &sweep.double, "mgrid double");
}

/// The four policy variants of one config, keyed off its DRI parameters
/// (the same derivation `figures::policies` sweeps).
fn policy_variants(cfg: &RunConfig) -> Vec<RunConfig> {
    [
        PolicyConfig::Dri(cfg.dri),
        PolicyConfig::Decay(PolicyConfig::decay_from(&cfg.dri)),
        PolicyConfig::WayResize(PolicyConfig::way_resize_from(&cfg.dri)),
        PolicyConfig::WayMemo(PolicyConfig::way_memo_from(&cfg.dri)),
    ]
    .into_iter()
    .map(|p| {
        let mut c = cfg.clone();
        c.policy = Some(p);
        c
    })
    .collect()
}

#[test]
fn golden_store_keys_never_change() {
    // One frozen key per record kind, computed from the unmodified
    // `RunConfig::quick(Compress)` fixture when the policy layer landed.
    // These constants are the on-disk/remote compatibility contract: a
    // mismatch means every store a fleet has ever written silently went
    // cold. If a key derivation must change, bump
    // `persist::SCHEMA_VERSION` and recompute — never just update the
    // constant to make the test pass.
    let cfg = RunConfig::quick(Benchmark::Compress);
    assert_eq!(
        baseline_key(&cfg),
        0x8826_86a6_511d_8176_5b58_9cab_fcf8_daa6,
        "baseline key drifted"
    );
    let golden: [(&str, u128); 4] = [
        ("dri", 0xaaca_7c75_35d3_abfc_2762_5db1_5f00_96db),
        ("decay", 0x1620_3629_2ec6_1b32_e615_7b62_34ca_af95),
        ("way_resize", 0xaec2_6e4b_44a8_0f9d_65bf_8695_78d3_7c0c),
        ("way_memo", 0x5068_1e61_d58e_cb7a_e5f2_d137_e7b4_1d5a),
    ];
    for (cfg, (kind, key)) in policy_variants(&cfg).iter().zip(golden) {
        assert_eq!(policy_kind(cfg), kind);
        assert_eq!(policy_key(cfg), key, "{kind} key drifted");
    }
    // `policy: None` is the original pre-policy-layer DRI path and must
    // still produce the very same bytes-derived key.
    assert_eq!(
        policy_key(&cfg),
        0xaaca_7c75_35d3_abfc_2762_5db1_5f00_96db,
        "default-policy key drifted from the frozen dri key"
    );
}

fn assert_runs_bit_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_active_fraction.to_bits(),
        b.dri.avg_active_fraction.to_bits(),
        "{what}: avg_active_fraction"
    );
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(
        a.dri.final_size_bytes, b.dri.final_size_bytes,
        "{what}: final_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(a.dri.intervals, b.dri.intervals, "{what}: intervals");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

#[test]
fn every_policy_is_bit_identical_cached_and_uncached() {
    let mut base = RunConfig::quick(Benchmark::Li);
    base.instruction_budget = Some(120_000);
    for cfg in policy_variants(&base) {
        let kind = policy_kind(&cfg);
        let fresh = run_policy_uncached(&cfg);
        let first = run_policy(&cfg);
        let second = run_policy(&cfg);
        assert_runs_bit_identical(&fresh, &first, &format!("{kind} (cold cache)"));
        assert_runs_bit_identical(&fresh, &second, &format!("{kind} (warm cache)"));
    }
}

#[test]
fn global_session_reports_cache_traffic() {
    let mut cfg = RunConfig::quick(Benchmark::Swim);
    cfg.instruction_budget = Some(120_000);
    let before = SimSession::global().stats();
    let _ = cached_comparison(&cfg);
    let _ = cached_comparison(&cfg);
    let after = SimSession::global().stats();
    assert!(
        after.baseline_hits > before.baseline_hits,
        "second pass must hit the baseline cache"
    );
    assert!(
        after.dri_hits > before.dri_hits,
        "second pass must hit the DRI-run cache"
    );
    // The global session honours an ambient `DRI_STORE`: on a warmed
    // store the first pass is a disk hit (no workload generation), so
    // accept either origin — what matters is that the point was produced
    // exactly once outside the memory tier.
    let simulated = after.workload_misses > before.workload_misses;
    let disk_served = after.disk_hits() > before.disk_hits();
    assert!(
        simulated || disk_served,
        "first pass must simulate or warm-start from the disk store"
    );
}
