//! Determinism proofs for the fleet's consistent-hash ring: placement
//! is a pure function of the canonical shard *set* (never the listing
//! order), removing a shard remaps only the keys it owned (with the
//! surviving replicas promoted in order), and the placements of the
//! real figure3 record grid are frozen in a golden fixture — a routing
//! change that silently re-homed a campaign's records would turn every
//! warm fleet replay into a re-simulation storm, so it must fail here
//! first, loudly.

use std::collections::BTreeSet;

use dri_experiments::persist::{baseline_key, policy_key, policy_kind, BASELINE_KIND};
use dri_experiments::search::{grid_configs, SearchSpace};
use dri_experiments::RunConfig;
use dri_store::{HashRing, KeyHasher};
use proptest::prelude::*;
use synth_workload::suite::Benchmark;

/// A synthetic shard name from a small index space (collisions across
/// draws are fine — the ring dedups them, which is itself under test).
fn shard_name(index: u8) -> String {
    format!("10.0.{index}.1:7171")
}

/// A distinct, sorted shard set from drawn indices (at least `min`
/// members, padding deterministically when the draw collapses).
fn shard_set(indices: &[u8], min: usize) -> Vec<String> {
    let mut distinct: BTreeSet<u8> = indices.iter().copied().collect();
    let mut pad = 0u8;
    while distinct.len() < min {
        distinct.insert(pad);
        pad += 1;
    }
    distinct.into_iter().map(shard_name).collect()
}

fn arb_shard_indices() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..24, 1..7)
}

/// Widens a drawn `u64` into a well-spread `u128` record key.
fn widen_key(seed: u64) -> u128 {
    let hi = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) as u128;
    (hi << 64) | seed as u128
}

proptest! {
    #[test]
    fn placement_ignores_listing_order_and_duplicates(
        indices in arb_shard_indices(),
        rotate in 0usize..6,
        duplicate in 0usize..6,
        replicas in 1usize..4,
        seeds in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        // A worker's DRI_SHARDS may list the same fleet rotated and
        // with a shard repeated; the ring must not care.
        let shards = shard_set(&indices, 1);
        let keys: Vec<u128> = seeds.iter().map(|&s| widen_key(s)).collect();
        let mut shuffled = shards.clone();
        let pivot = rotate % shuffled.len();
        shuffled.rotate_left(pivot);
        shuffled.push(shuffled[duplicate % shuffled.len()].clone());
        let canonical = HashRing::new(shards, replicas).expect("ring");
        let reordered = HashRing::new(shuffled, replicas).expect("ring");
        prop_assert_eq!(canonical.shards(), reordered.shards());
        for &key in &keys {
            prop_assert_eq!(canonical.owners(key), reordered.owners(key));
        }
    }

    #[test]
    fn removing_one_shard_remaps_only_its_keys(
        indices in arb_shard_indices(),
        removed_index in 0usize..6,
        replicas in 1usize..4,
        seeds in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let shards = shard_set(&indices, 2);
        let keys: Vec<u128> = seeds.iter().map(|&s| widen_key(s)).collect();
        let removed = shards[removed_index % shards.len()].clone();
        let survivors: Vec<String> =
            shards.iter().filter(|&s| *s != removed).cloned().collect();
        let full = HashRing::new(shards, replicas).expect("full ring");
        let reduced = HashRing::new(survivors, replicas).expect("reduced ring");
        for &key in &keys {
            let before = full.owners(key);
            let after = reduced.owners(key);
            let surviving: Vec<&str> = before
                .iter()
                .copied()
                .filter(|&owner| owner != removed)
                .collect();
            // Keys that never touched the dead shard keep their owner
            // list as a prefix of the new one; keys that lost an owner
            // keep the survivors' relative failover order and only
            // *append* promoted replicas. Either way, nothing already
            // placed moves.
            prop_assert_eq!(
                &after[..surviving.len()],
                &surviving[..],
                "key {:032x}", key
            );
        }
    }

    #[test]
    fn every_key_gets_exactly_the_replica_count(
        indices in arb_shard_indices(),
        replicas in 1usize..5,
        seeds in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let shards = shard_set(&indices, 1);
        let keys: Vec<u128> = seeds.iter().map(|&s| widen_key(s)).collect();
        let ring = HashRing::new(shards.clone(), replicas).expect("ring");
        let want = replicas.min(shards.len());
        for &key in &keys {
            let owners = ring.owner_indices(key);
            prop_assert_eq!(owners.len(), want);
            let distinct: BTreeSet<usize> = owners.iter().copied().collect();
            prop_assert_eq!(distinct.len(), want, "owners must be distinct");
        }
    }
}

/// The quick-mode figure3 campaign's full record grid: 15 benchmarks ×
/// (6 policy points + 1 shared baseline) = 105 `(kind, key)` records,
/// enumerated exactly as the prefetch planner does.
fn figure3_record_grid() -> Vec<(&'static str, u128)> {
    let space = SearchSpace::quick();
    let mut records = Vec::new();
    let mut seen = BTreeSet::new();
    for benchmark in Benchmark::all() {
        let mut base = RunConfig::quick(benchmark);
        base.instruction_budget = Some(60_000);
        for cfg in grid_configs(&base, &space) {
            for reference in [
                (BASELINE_KIND, baseline_key(&cfg)),
                (policy_kind(&cfg), policy_key(&cfg)),
            ] {
                if seen.insert(reference) {
                    records.push(reference);
                }
            }
        }
    }
    records
}

/// The canonical 3-shard test fleet the golden placements are frozen
/// against. Deliberately *not* loopback addresses: the fixture must
/// prove placement depends only on these strings, nowhere resolvable.
const GOLDEN_FLEET: [&str; 3] = ["10.1.0.1:7171", "10.1.0.2:7171", "10.1.0.3:7171"];

/// Digest of the full figure3 placement table (every record's kind,
/// key, and owner list, in grid order), frozen at the ring's
/// introduction. If this moves, warm fleet replays stop finding their
/// records — bump it only with a deliberate migration story.
const GOLDEN_PLACEMENT_DIGEST: u128 = 0xa701_7232_0ae4_6cb9_7692_b350_94fc_7406;

#[test]
fn figure3_grid_placements_are_frozen() {
    let records = figure3_record_grid();
    assert_eq!(records.len(), 105, "the quick figure3 record grid");
    let ring = HashRing::new(GOLDEN_FLEET, 2).expect("golden ring");

    let mut digest = KeyHasher::new();
    let mut per_shard = [0usize; 3];
    for &(kind, key) in &records {
        digest.write_str(kind);
        digest.write_u128(key);
        for owner in ring.owners(key) {
            digest.write_str(owner);
        }
        per_shard[ring.primary(key)] += 1;
    }
    // The primary split stays roughly even — no shard owns the
    // campaign, which is the whole point of sharding it.
    assert_eq!(per_shard.iter().sum::<usize>(), 105);
    for (shard, &count) in GOLDEN_FLEET.iter().zip(&per_shard) {
        assert!(
            (15..=60).contains(&count),
            "lopsided figure3 split: {shard} owns {count}/105 ({per_shard:?})"
        );
    }
    assert_eq!(
        digest.finish(),
        GOLDEN_PLACEMENT_DIGEST,
        "figure3 placements moved: every warm fleet replay would re-home \
         (and re-simulate) the records whose owners changed"
    );
}
