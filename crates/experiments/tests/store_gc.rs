//! GC/compaction against *real simulation records*: budgets reclaim
//! space, survivors stay bit-identical to fresh simulations, and a
//! reader racing a compaction pass never sees a torn record — at worst
//! it misses, recomputes, and heals, exactly like the corruption path.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use dri_experiments::runner::run_dri_uncached;
use dri_experiments::{DriRun, ResultStore, RunConfig, SimSession};
use dri_store::GcPolicy;
use synth_workload::suite::Benchmark;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-store-gc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn open_store(root: &Path) -> ResultStore {
    ResultStore::open(root).expect("open store")
}

fn test_config() -> RunConfig {
    let mut cfg = RunConfig::quick(Benchmark::Compress);
    cfg.instruction_budget = Some(120_000);
    cfg.dri.size_bound_bytes = 8 * 1024;
    cfg
}

fn assert_dri_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

/// Simulates several sweep points into `root`, returning the configs.
fn warm_grid(root: &Path, points: u64) -> Vec<RunConfig> {
    let session = SimSession::builder().store(open_store(root)).build();
    let mut cfgs = Vec::new();
    for i in 0..points {
        let mut cfg = test_config();
        cfg.dri.miss_bound = 100 + i * 50;
        let _ = session.policy_run(&cfg);
        cfgs.push(cfg);
    }
    cfgs
}

#[test]
fn over_budget_store_reclaims_and_survivors_stay_bit_identical() {
    let root = temp_root("budget");
    let cfgs = warm_grid(&root, 4);
    let store = open_store(&root);
    let usage = store.disk_usage();
    assert_eq!(usage.records, 4);

    // Touch the last config's record so it is the warmest, then keep
    // only ~half the bytes.
    let warm_session = SimSession::builder().store(open_store(&root)).build();
    store.gc(&GcPolicy::default()); // age everything one generation
    let _ = warm_session.policy_run(&cfgs[3]);
    // warm_session's handle predates the bump, so re-stamp through a
    // fresh handle that carries the new generation.
    let fresh = SimSession::builder().store(open_store(&root)).build();
    let _ = fresh.policy_run(&cfgs[3]);

    let budget = usage.bytes / 2;
    let report = open_store(&root).gc(&GcPolicy {
        max_bytes: Some(budget),
        ..GcPolicy::default()
    });
    assert!(report.evicted_records >= 2, "{report:?}");
    assert!(report.reclaimed_bytes > 0, "{report:?}");
    assert!(report.remaining_bytes <= budget, "{report:?}");
    assert_eq!(
        open_store(&root).disk_usage().bytes,
        report.remaining_bytes,
        "report matches the disk"
    );

    // The warmest record survived and still loads bit-identically to a
    // fresh simulation; evicted points recompute bit-identically too.
    for (i, cfg) in cfgs.iter().enumerate() {
        let session = SimSession::builder().store(open_store(&root)).build();
        let dri = session.policy_run(cfg);
        assert_dri_identical(&run_dri_uncached(cfg), &dri, "post-gc point");
        if i == 3 {
            assert_eq!(session.stats().dri_disk_hits, 1, "warm record survived");
        }
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn dry_run_reports_without_touching_records() {
    let root = temp_root("dry");
    let cfgs = warm_grid(&root, 3);
    let store = open_store(&root);
    let before = store.disk_usage();
    let report = store.gc(&GcPolicy {
        max_bytes: Some(0),
        dry_run: true,
        ..GcPolicy::default()
    });
    assert!(report.dry_run);
    assert_eq!(report.evicted_records, 3);
    assert!(report.reclaimed_bytes >= before.bytes);
    assert_eq!(store.disk_usage(), before, "nothing deleted");
    // Every record still serves from disk.
    let session = SimSession::builder().store(open_store(&root)).build();
    for cfg in &cfgs {
        let _ = session.policy_run(cfg);
    }
    assert_eq!(session.stats().simulations(), 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn age_budget_keeps_records_recent_campaigns_used() {
    let root = temp_root("age");
    let cfgs = warm_grid(&root, 3);
    // Three campaign generations pass; only cfgs[0] stays in use.
    for _ in 0..3 {
        open_store(&root).gc(&GcPolicy::default());
        let session = SimSession::builder().store(open_store(&root)).build();
        let _ = session.policy_run(&cfgs[0]);
        assert_eq!(session.stats().dri_disk_hits, 1);
    }
    let report = open_store(&root).gc(&GcPolicy {
        max_age: Some(2),
        ..GcPolicy::default()
    });
    assert_eq!(report.evicted_records, 2, "{report:?}");
    assert_eq!(report.remaining_records, 1);

    let session = SimSession::builder().store(open_store(&root)).build();
    let _ = session.policy_run(&cfgs[0]);
    assert_eq!(session.stats().dri_disk_hits, 1, "hot record survived");
    let _ = session.policy_run(&cfgs[1]);
    assert_eq!(session.stats().dri_misses, 1, "cold record was evicted");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn gc_spares_undrained_journal_segments_and_sweeps_compacted_debris() {
    use dri_store::{Journal, JournalEntry, JournalOptions};

    let root = temp_root("journal");
    let store = open_store(&root);
    let entry = |i: u64| JournalEntry {
        kind: "dri".to_owned(),
        schema: 1,
        key: 0x0dd0u128.wrapping_add(i as u128),
        payload: (0..4u64).flat_map(|w| (i * 31 + w).to_le_bytes()).collect(),
    };

    // One compacted batch and one still-journaled batch (its `.wal`
    // segment is the only durable copy of those records).
    let journal = Journal::open(&root, JournalOptions::default()).expect("open journal");
    journal
        .append_batch((0..3).map(entry).collect())
        .expect("batch 1");
    assert_eq!(journal.compact(&store).expect("compact"), 3);
    journal
        .append_batch((3..6).map(entry).collect())
        .expect("batch 2");

    let journal_dir = root.join("journal");
    let names = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(dir)
            .expect("journal dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    };
    // Compaction normally removes its `.wal.compacted` tomb right after
    // the rename; a crash between the two steps strands it. Fabricate
    // exactly that debris.
    fs::write(
        journal_dir.join("seg-00000000000000aa.wal.compacted"),
        b"drained segment stranded by a crash mid-sweep",
    )
    .expect("fabricate debris");

    // An aggressive GC pass (evict everything) must sweep the compacted
    // debris but never a live `.wal` segment — those records are not in
    // record files yet.
    let report = store.gc(&GcPolicy {
        max_bytes: Some(0),
        ..GcPolicy::default()
    });
    assert!(report.reclaimed_bytes > 0, "{report:?}");
    let after = names(&journal_dir);
    assert!(
        after.iter().all(|n| !n.ends_with(".wal.compacted")),
        "compacted debris swept: {after:?}"
    );
    assert!(
        after.iter().any(|n| n.ends_with(".wal")),
        "live segment spared: {after:?}"
    );

    // Recovery over the post-GC root still serves the journaled batch,
    // and draining it lands every payload bit-identically.
    let recovered = Journal::open(&root, JournalOptions::default()).expect("reopen");
    assert_eq!(recovered.stats().recovered, 3, "journaled batch survived");
    assert_eq!(recovered.compact(&store).expect("drain"), 3);
    for i in 3..6 {
        let want = entry(i);
        assert_eq!(
            store.load("dri", 1, want.key).as_deref(),
            Some(want.payload.as_slice()),
            "journaled entry {i} after GC + drain"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn readers_racing_compaction_recompute_and_heal_never_tear() {
    let root = temp_root("race");
    let cfg = test_config();
    let reference = run_dri_uncached(&cfg);
    {
        let session = SimSession::builder().store(open_store(&root)).build();
        let _ = session.policy_run(&cfg);
    }

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Readers: fresh sessions (cold memory, like new processes)
        // hammering the record while GC repeatedly tombstones it.
        let reader = |iterations: usize| {
            let done = &done;
            let root = &root;
            let cfg = &cfg;
            let reference = &reference;
            move || {
                for _ in 0..iterations {
                    let session = SimSession::builder().store(open_store(root)).build();
                    let dri = session.policy_run(cfg);
                    assert_dri_identical(reference, &dri, "mid-compaction read");
                    let store = session.store_stats().expect("store attached");
                    // Every lookup is a clean hit or a clean miss —
                    // never a checksum-rejected torn record.
                    assert_eq!(store.corrupt, 0, "GC must never expose a torn read");
                }
                done.store(true, Ordering::SeqCst);
            }
        };
        scope.spawn(reader(6));
        scope.spawn(reader(6));
        // Compactor: evict everything, as fast as possible, until the
        // readers finish. Each eviction forces the next reader into the
        // recompute-and-heal path.
        scope.spawn(|| {
            let store = open_store(&root);
            while !done.load(Ordering::SeqCst) {
                let report = store.gc(&GcPolicy {
                    max_bytes: Some(0),
                    ..GcPolicy::default()
                });
                assert_eq!(report.remaining_records, 0);
                std::thread::yield_now();
            }
        });
    });

    // Post-race: the store is in a consistent state and one more
    // round-trip works (heal, then hit).
    let session = SimSession::builder().store(open_store(&root)).build();
    assert_dri_identical(&reference, &session.policy_run(&cfg), "post-race heal");
    let verify = SimSession::builder().store(open_store(&root)).build();
    assert_dri_identical(&reference, &verify.policy_run(&cfg), "post-race hit");
    assert_eq!(verify.stats().simulations(), 0);
    let _ = fs::remove_dir_all(&root);
}
