//! Tracing must observe, never perturb: with `DRI_TRACE` live (which
//! also switches lookup timing on), memoized results stay bit-identical
//! to fresh uncached runs, and every line the session writes to the
//! trace file parses back under the strict schema with the tier spans
//! the run actually exercised.
//!
//! One `#[test]` on purpose: `DRI_TRACE` is resolved once per process
//! (the sink is a `OnceLock`), so the whole scenario — set the
//! variable, run, inspect the file — must happen in a single order.

use std::collections::HashSet;
use std::path::PathBuf;

use dri_experiments::runner::{run_conventional_uncached, run_dri_uncached};
use dri_experiments::{RunConfig, SimSession};
use dri_telemetry::{trace, TraceEvent};
use synth_workload::suite::Benchmark;

fn temp_trace() -> PathBuf {
    std::env::temp_dir().join(format!("dri-trace-identity-{}.jsonl", std::process::id()))
}

#[test]
fn tracing_never_perturbs_results_and_emits_parsable_tier_spans() {
    let trace_path = temp_trace();
    let _ = std::fs::remove_file(&trace_path);
    std::env::set_var(dri_telemetry::TRACE_ENV, &trace_path);
    assert!(trace::enabled(), "the sink must open the temp file");
    assert!(
        dri_telemetry::timing_enabled(),
        "an open trace switches lookup timing on"
    );

    let mut cfg = RunConfig::quick(Benchmark::Compress);
    cfg.instruction_budget = Some(80_000);

    // Timed + traced session: first lookups simulate, replays hit memory.
    let session = SimSession::builder().build();
    assert!(session.is_timed());
    let baseline = session.conventional(&cfg);
    let dri = session.policy_run(&cfg);
    let baseline_replay = session.conventional(&cfg);
    let dri_replay = session.policy_run(&cfg);

    // Bit-identity, traced vs fresh-and-uncached (which also runs under
    // the live trace — instrumentation is on for both sides).
    let fresh_baseline = run_conventional_uncached(&cfg);
    let fresh_dri = run_dri_uncached(&cfg);
    assert_eq!(baseline.timing.cycles, fresh_baseline.timing.cycles);
    assert_eq!(baseline.icache, fresh_baseline.icache);
    assert_eq!(baseline.timing.cycles, baseline_replay.timing.cycles);
    assert_eq!(dri.timing.cycles, fresh_dri.timing.cycles);
    assert_eq!(dri.timing.cycles, dri_replay.timing.cycles);
    assert_eq!(dri.icache, fresh_dri.icache);
    assert_eq!(dri.dri.final_size_bytes, fresh_dri.dri.final_size_bytes);
    assert_eq!(dri.dri.resizes, fresh_dri.dri.resizes);

    // The timed session attributed every lookup to a tier.
    let tiers = session.tier_latency();
    assert_eq!(tiers.simulate.count(), 2, "baseline + dri simulated once");
    assert_eq!(tiers.memory.count(), 2, "both replays hit memory");
    for (_, hist) in tiers.rows() {
        if hist.count() > 0 {
            let (p50, _, _, max) = hist.percentiles();
            assert!(p50 > 0 && max >= p50);
        }
    }

    // Every emitted line parses back, and the tier spans cover both
    // outcomes this run exercised.
    let text = std::fs::read_to_string(&trace_path).expect("trace file exists");
    let mut outcomes: HashSet<String> = HashSet::new();
    let mut lines = 0;
    for line in text.lines() {
        let event = TraceEvent::parse(line)
            .unwrap_or_else(|err| panic!("unparsable trace line {line:?}: {err}"));
        lines += 1;
        if event.kind == "tier" {
            assert!(event.dur_us.is_some(), "tier events are spans: {line:?}");
            assert!(
                event
                    .labels
                    .iter()
                    .any(|(k, v)| k == "benchmark" && v == "compress"),
                "tier spans carry the benchmark label: {line:?}"
            );
            outcomes.insert(event.outcome.expect("tier spans carry an outcome"));
        }
    }
    assert!(lines >= 4, "at least the four session lookups traced");
    assert!(outcomes.contains("simulate"), "{outcomes:?}");
    assert!(outcomes.contains("memory"), "{outcomes:?}");

    let _ = std::fs::remove_file(&trace_path);
}
