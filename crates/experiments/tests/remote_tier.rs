//! The remote tier's contract, extending `store_persistence.rs` across a
//! (loopback) network hop: a cold, disk-less worker pointed at a warm
//! `dri-serve` instance replays previously simulated grids with **zero
//! local simulations**, every served record is **bit-identical** to a
//! fresh simulation, a remote hit **heals the local disk tier**, and
//! every remote failure mode (miss, corruption, dead server) degrades to
//! an ordinary recompute.
//!
//! Each test runs its own server on an ephemeral port over its own temp
//! store, so nothing depends on (or pollutes) `DRI_REMOTE`/`DRI_STORE`.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dri_experiments::runner::{run_conventional_uncached, run_dri_uncached, ConventionalRun};
use dri_experiments::search::SearchSpace;
use dri_experiments::{DriRun, RemoteStore, ResultStore, RunConfig, SimSession};
use dri_serve::Server;
use synth_workload::suite::Benchmark;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-remote-tier-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn open_store(root: &Path) -> ResultStore {
    ResultStore::open(root).expect("open store")
}

fn test_config() -> RunConfig {
    let mut cfg = RunConfig::quick(Benchmark::Compress);
    cfg.instruction_budget = Some(120_000);
    cfg.dri.size_bound_bytes = 8 * 1024;
    cfg
}

fn assert_conventional_identical(a: &ConventionalRun, b: &ConventionalRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

fn assert_dri_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_active_fraction.to_bits(),
        b.dri.avg_active_fraction.to_bits(),
        "{what}: avg_active_fraction"
    );
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(
        a.dri.final_size_bytes, b.dri.final_size_bytes,
        "{what}: final_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(a.dri.intervals, b.dri.intervals, "{what}: intervals");
    assert_eq!(
        a.dri.resizing_bits, b.dri.resizing_bits,
        "{what}: resizing_bits"
    );
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

/// Serves `root` on an ephemeral loopback port.
fn serve(root: &Path) -> Server {
    Server::bind(Arc::new(open_store(root)), "127.0.0.1:0", 4).expect("bind server")
}

#[test]
fn cold_disk_less_worker_warm_starts_from_the_wire() {
    let central = temp_root("wire-warm");
    let cfg = test_config();

    // The central host simulates once and keeps the records.
    let writer = SimSession::builder().store(open_store(&central)).build();
    let ref_baseline = writer.conventional(&cfg);
    let ref_dri = writer.policy_run(&cfg);
    assert_eq!(writer.stats().simulations(), 2);

    let server = serve(&central);
    // A cold worker with no disk store at all: memory → remote → simulate.
    let worker = SimSession::builder()
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    let baseline = worker.conventional(&cfg);
    let dri = worker.policy_run(&cfg);
    assert_conventional_identical(&ref_baseline, &baseline, "remote baseline");
    assert_dri_identical(&ref_dri, &dri, "remote dri");

    let stats = worker.stats();
    assert_eq!(stats.simulations(), 0, "nothing simulated locally");
    assert_eq!(stats.baseline_remote_hits, 1);
    assert_eq!(stats.dri_remote_hits, 1);
    assert_eq!(
        stats.workload_misses, 0,
        "a remote hit must not even generate the workload"
    );
    let remote = worker.remote_stats().expect("remote attached");
    assert_eq!(remote.hits, 2);
    assert_eq!(remote.errors, 0);

    // Within the session the memory tier absorbs repeats — no new
    // network traffic.
    let again = worker.policy_run(&cfg);
    assert_dri_identical(&ref_dri, &again, "memory re-hit");
    assert_eq!(worker.remote_stats().expect("remote attached").hits, 2);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn remote_replays_the_figure3_grid_with_zero_local_simulations() {
    let central = temp_root("figure3-grid");
    // The exact per-benchmark grid figure3's parameter search visits
    // (quick space), shrunk to a test-sized instruction budget.
    let mut base = test_config();
    base.benchmark = Benchmark::Li;
    let space = SearchSpace::quick();
    let mut grid: Vec<RunConfig> = Vec::new();
    for &size_bound in &space.size_bounds {
        for &miss_bound in &space.miss_bounds {
            let mut cfg = base.clone();
            cfg.dri.size_bound_bytes = size_bound;
            cfg.dri.miss_bound = miss_bound;
            grid.push(cfg);
        }
    }

    // Campaign host: simulate the whole grid into the central store.
    let writer = SimSession::builder().store(open_store(&central)).build();
    let reference: Vec<(ConventionalRun, DriRun)> = grid
        .iter()
        .map(|cfg| (writer.conventional(cfg), writer.policy_run(cfg)))
        .collect();
    assert!(writer.stats().simulations() > 0);

    // Cold worker: replays the same grid purely over the wire.
    let server = serve(&central);
    let worker = SimSession::builder()
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    for (cfg, (ref_baseline, ref_dri)) in grid.iter().zip(&reference) {
        let baseline = worker.conventional(cfg);
        let dri = worker.policy_run(cfg);
        assert_conventional_identical(ref_baseline, &baseline, "grid baseline");
        assert_dri_identical(ref_dri, &dri, "grid dri");
    }
    let stats = worker.stats();
    assert_eq!(
        stats.simulations(),
        0,
        "the full grid must replay without local simulation"
    );
    // The baseline is shared across the grid (one record); every DRI
    // point is distinct.
    assert_eq!(stats.baseline_remote_hits, 1);
    assert_eq!(stats.dri_remote_hits, grid.len() as u64);
    assert_eq!(stats.baseline_hits, grid.len() as u64 - 1);

    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn remote_hits_heal_the_local_disk_tier() {
    let central = temp_root("heal-central");
    let local = temp_root("heal-local");
    let cfg = test_config();

    let writer = SimSession::builder().store(open_store(&central)).build();
    let ref_dri = writer.policy_run(&cfg);
    let ref_baseline = writer.conventional(&cfg);

    let server = serve(&central);
    // Worker with both tiers: remote hits must be written through to
    // the local store.
    let worker = SimSession::builder()
        .store(open_store(&local))
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    assert_dri_identical(&ref_dri, &worker.policy_run(&cfg), "healing fetch");
    assert_eq!(worker.stats().dri_remote_hits, 1);
    assert_eq!(
        worker.store_stats().expect("local store").writes,
        1,
        "the remote hit must be persisted locally"
    );
    server.shutdown();

    // With the server gone, a fresh process on this machine is served
    // entirely by the healed local store.
    let offline = SimSession::builder().store(open_store(&local)).build();
    assert_dri_identical(&ref_dri, &offline.policy_run(&cfg), "healed local record");
    let stats = offline.stats();
    assert_eq!(stats.dri_disk_hits, 1);
    assert_eq!(stats.simulations(), 0);

    // And the record the worker never fetched still simulates cleanly.
    assert_conventional_identical(
        &ref_baseline,
        &offline.conventional(&cfg),
        "unfetched baseline recompute",
    );
    let _ = fs::remove_dir_all(&central);
    let _ = fs::remove_dir_all(&local);
}

#[test]
fn corrupt_served_records_degrade_to_identical_recompute() {
    let central = temp_root("corrupt-remote");
    let cfg = test_config();
    let writer = SimSession::builder().store(open_store(&central)).build();
    let _ = writer.policy_run(&cfg);

    // Flip one payload byte in the stored record. The server validates
    // before serving, so the worker sees a 404 (miss), recomputes, and
    // the result still matches an uncached reference bit for bit.
    let store = open_store(&central);
    let key = dri_experiments::persist::dri_key(&cfg);
    let path = store.entry_path(
        dri_experiments::persist::DRI_KIND,
        dri_experiments::persist::SCHEMA_VERSION,
        key,
    );
    let mut bytes = fs::read(&path).expect("record");
    bytes[40] ^= 0x20;
    fs::write(&path, &bytes).expect("tamper");

    let server = serve(&central);
    let worker = SimSession::builder()
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    let dri = worker.policy_run(&cfg);
    assert_dri_identical(&run_dri_uncached(&cfg), &dri, "recompute after corruption");
    let stats = worker.stats();
    assert_eq!(stats.dri_misses, 1, "corrupt remote record re-simulates");
    assert_eq!(stats.dri_remote_hits, 0);
    let remote = worker.remote_stats().expect("remote attached");
    assert_eq!(remote.hits, 0);
    assert_eq!(
        remote.misses, 1,
        "server refuses to serve the corrupt record"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&central);
}

#[test]
fn dead_server_degrades_to_local_simulation() {
    let cfg = test_config();
    // Nothing listens here; connects fail fast.
    let worker = SimSession::builder()
        .remote(RemoteStore::new("127.0.0.1:1"))
        .build();
    let dri = worker.policy_run(&cfg);
    assert_dri_identical(
        &run_dri_uncached(&cfg),
        &dri,
        "simulated despite dead remote",
    );
    let baseline = worker.conventional(&cfg);
    assert_conventional_identical(
        &run_conventional_uncached(&cfg),
        &baseline,
        "simulated despite dead remote",
    );
    let stats = worker.stats();
    assert_eq!(stats.simulations(), 2);
    assert_eq!(stats.remote_hits(), 0);
    assert!(worker.remote_stats().expect("remote attached").errors >= 1);
}
