//! The batch-prefetch contract, end to end: a sweep-shaped grid resolves
//! through the cache tiers **in bulk** — local disk first, then one
//! chunked `POST /batch` round-trip for the remainder, remote arrivals
//! healed into the local store — with every served record bit-identical
//! to a fresh simulation, and only true misses left to simulate.
//!
//! The headline proof mirrors figure3's parameter search exactly: a cold
//! `DRI_REMOTE`-style worker replays the full 15-benchmark quick-space
//! grid — 105 unique records — with **exactly one** batch round-trip,
//! **zero** local simulations, and **zero** workload generations (CI's
//! `service-smoke` job asserts the same single-round-trip property on
//! the real `suite`-driven figure3, end to end over processes).
//!
//! Like `remote_tier.rs`, every test runs its own ephemeral server over
//! its own temp store — nothing reads or pollutes `DRI_*` variables.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dri_experiments::runner::{run_dri_uncached, ConventionalRun};
use dri_experiments::search::{grid_configs, SearchSpace};
use dri_experiments::{DriRun, RemoteStore, ResultStore, RunConfig, SimSession};
use dri_serve::Server;
use synth_workload::suite::Benchmark;

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("dri-batch-prefetch-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn open_store(root: &Path) -> ResultStore {
    ResultStore::open(root).expect("open store")
}

fn serve(root: &Path) -> Server {
    Server::bind(Arc::new(open_store(root)), "127.0.0.1:0", 4).expect("bind server")
}

/// A figure3-shaped campaign grid: each benchmark's full quick-space
/// (miss-bound × size-bound) search grid, at a test-sized budget.
fn figure3_like_grid(benchmarks: &[Benchmark]) -> Vec<RunConfig> {
    let space = SearchSpace::quick();
    benchmarks
        .iter()
        .flat_map(|&b| {
            let mut base = RunConfig::quick(b);
            base.instruction_budget = Some(60_000);
            grid_configs(&base, &space)
        })
        .collect()
}

fn assert_conventional_identical(a: &ConventionalRun, b: &ConventionalRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

fn assert_dri_identical(a: &DriRun, b: &DriRun, what: &str) {
    assert_eq!(a.timing, b.timing, "{what}: timing");
    assert_eq!(a.icache, b.icache, "{what}: icache");
    assert_eq!(
        a.dri.avg_active_fraction.to_bits(),
        b.dri.avg_active_fraction.to_bits(),
        "{what}: avg_active_fraction"
    );
    assert_eq!(
        a.dri.avg_size_bytes.to_bits(),
        b.dri.avg_size_bytes.to_bits(),
        "{what}: avg_size_bytes"
    );
    assert_eq!(
        a.dri.final_size_bytes, b.dri.final_size_bytes,
        "{what}: final_size_bytes"
    );
    assert_eq!(a.dri.resizes, b.dri.resizes, "{what}: resizes");
    assert_eq!(a.dri.intervals, b.dri.intervals, "{what}: intervals");
    assert_eq!(
        a.l2_inst_accesses, b.l2_inst_accesses,
        "{what}: l2_inst_accesses"
    );
    assert_eq!(
        a.bpred_accuracy.to_bits(),
        b.bpred_accuracy.to_bits(),
        "{what}: bpred_accuracy"
    );
}

#[test]
fn cold_worker_prefetches_a_figure3_grid_in_one_round_trip() {
    let central = temp_root("one-trip-central");
    let local = temp_root("one-trip-local");
    let benchmarks = Benchmark::all();
    let grid = figure3_like_grid(&benchmarks);
    // 6 quick-space points per benchmark, sharing one baseline each.
    assert_eq!(grid.len(), benchmarks.len() * 6);
    let unique_records = benchmarks.len() * (6 + 1);
    assert_eq!(unique_records, 105, "the full quick figure3 record grid");

    // Campaign host: simulate the whole grid into the central store.
    let writer = SimSession::builder().store(open_store(&central)).build();
    let reference: Vec<(ConventionalRun, DriRun)> = grid
        .iter()
        .map(|cfg| (writer.conventional(cfg), writer.policy_run(cfg)))
        .collect();
    assert_eq!(writer.stats().simulations() as usize, unique_records);

    // Cold worker, disk-less memory, empty local store: the whole grid
    // must arrive in one POST /batch.
    let server = serve(&central);
    let worker = SimSession::builder()
        .store(open_store(&local))
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    let report = worker.prefetch(&grid);
    assert_eq!(
        report.planned as usize,
        unique_records,
        "the plan dedups shared baselines ({} refs enumerated)",
        grid.len() * 2
    );
    assert_eq!(report.batch_round_trips, 1, "exactly one POST /batch");
    assert_eq!(report.remote_hits as usize, unique_records);
    assert_eq!(report.memory_hits, 0);
    assert_eq!(report.disk_hits, 0);
    assert_eq!(report.misses, 0);

    // Replaying the grid is now pure memory traffic, bit-identical to
    // the writer's fresh simulations.
    for (cfg, (ref_baseline, ref_dri)) in grid.iter().zip(&reference) {
        assert_conventional_identical(ref_baseline, &worker.conventional(cfg), "grid baseline");
        assert_dri_identical(ref_dri, &worker.policy_run(cfg), "grid dri");
    }
    let stats = worker.stats();
    assert_eq!(stats.simulations(), 0, "nothing simulated locally");
    assert_eq!(
        stats.workload_misses, 0,
        "a prefetched grid never even generates a workload"
    );
    assert_eq!(stats.remote_hits() as usize, unique_records);
    let remote = worker.remote_stats().expect("remote attached");
    assert_eq!(remote.batch_round_trips, 1);
    assert_eq!(remote.requests, 1, "one HTTP exchange for the whole grid");
    assert_eq!(remote.hits as usize, unique_records);
    assert_eq!(server.stats().batch_requests, 1);

    // Every remote arrival was healed into the local store: with the
    // server gone, a fresh process prefetches the same grid from disk
    // alone — zero round trips, zero simulations, same bits.
    assert_eq!(
        worker.store_stats().expect("local store").writes as usize,
        unique_records
    );
    server.shutdown();
    let offline = SimSession::builder().store(open_store(&local)).build();
    let report = offline.prefetch(&grid);
    assert_eq!(report.disk_hits as usize, unique_records);
    assert_eq!(report.batch_round_trips, 0);
    assert_eq!(report.misses, 0);
    for (cfg, (ref_baseline, ref_dri)) in grid.iter().zip(&reference) {
        assert_conventional_identical(ref_baseline, &offline.conventional(cfg), "healed baseline");
        assert_dri_identical(ref_dri, &offline.policy_run(cfg), "healed dri");
    }
    assert_eq!(offline.stats().simulations(), 0);

    let _ = fs::remove_dir_all(&central);
    let _ = fs::remove_dir_all(&local);
}

#[test]
fn empty_and_memory_warm_plans_are_no_ops() {
    let session = SimSession::builder().build();
    let report = session.prefetch(&[]);
    assert_eq!(report.plans, 1);
    assert_eq!(report.planned, 0);
    assert_eq!(report.batch_round_trips, 0);
    assert_eq!(report.misses, 0);

    // With no tiers attached, a plan's records are all left to simulate.
    let mut cfg = RunConfig::quick(Benchmark::Li);
    cfg.instruction_budget = Some(60_000);
    let report = session.prefetch(std::slice::from_ref(&cfg));
    assert_eq!(report.planned, 2, "baseline + dri");
    assert_eq!(report.misses, 2);

    // Once the session is warm, the same plan is pure memory hits —
    // even through a breaker-protected remote that must not be touched.
    let _ = session.conventional(&cfg);
    let _ = session.policy_run(&cfg);
    let warm = SimSession::builder()
        .remote(RemoteStore::new("127.0.0.1:1"))
        .build();
    let _ = warm.prefetch(std::slice::from_ref(&cfg)); // cold: all misses
    let sims = warm.stats();
    assert_eq!(sims.simulations(), 0, "prefetch never simulates");
    let report = session.prefetch(std::slice::from_ref(&cfg));
    assert_eq!(report.memory_hits, 2);
    assert_eq!(report.misses, 0);
    assert_eq!(report.batch_round_trips, 0);
    // Aggregated totals accumulate across the three passes.
    let totals = session.prefetch_stats();
    assert_eq!(totals.plans, 3);
    assert_eq!(totals.planned, 4);
    assert_eq!(totals.memory_hits, 2);
}

#[test]
fn partial_miss_prefetch_recomputes_and_heals_only_the_misses() {
    let central = temp_root("partial-central");
    let local = temp_root("partial-local");
    let mut base = RunConfig::quick(Benchmark::Compress);
    base.instruction_budget = Some(60_000);
    let grid = grid_configs(&base, &SearchSpace::quick());
    assert_eq!(grid.len(), 6);

    // The central store only ever saw half the grid.
    let writer = SimSession::builder().store(open_store(&central)).build();
    for cfg in &grid[..3] {
        let _ = writer.conventional(cfg);
        let _ = writer.policy_run(cfg);
    }

    let server = serve(&central);
    let worker = SimSession::builder()
        .store(open_store(&local))
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    let report = worker.prefetch(&grid);
    assert_eq!(report.planned, 7, "6 DRI points + 1 shared baseline");
    assert_eq!(report.batch_round_trips, 1);
    assert_eq!(report.remote_hits, 4, "baseline + 3 stored DRI points");
    assert_eq!(report.misses, 3, "the unseeded half");

    // A nested grid re-planning the same points (a per-benchmark search
    // inside an already-planned campaign) must not re-ask the server
    // for the definitive misses: zero further round-trips.
    let nested = worker.prefetch(&grid);
    assert_eq!(nested.memory_hits, 4);
    assert_eq!(nested.misses, 3, "known-missing records skip the wire");
    assert_eq!(nested.batch_round_trips, 0);

    // The sweep replays: only the misses simulate, and they match an
    // uncached reference bit for bit.
    for cfg in &grid {
        assert_dri_identical(
            &run_dri_uncached(cfg),
            &worker.policy_run(cfg),
            "partial grid",
        );
    }
    assert_eq!(worker.stats().simulations(), 3);
    // Neither the nested plan nor the per-point lookups that preceded
    // the three simulations touched the network again: the whole
    // campaign cost one HTTP exchange.
    let remote = worker.remote_stats().expect("remote attached");
    assert_eq!(remote.requests, 1, "one batch exchange, no per-point GETs");
    assert_eq!(remote.batch_round_trips, 1);
    // Healed fetches + recomputed misses both landed in the local store:
    // the same grid now prefetches entirely from disk.
    server.shutdown();
    let offline = SimSession::builder().store(open_store(&local)).build();
    let report = offline.prefetch(&grid);
    assert_eq!(report.disk_hits, 7);
    assert_eq!(report.misses, 0);

    let _ = fs::remove_dir_all(&central);
    let _ = fs::remove_dir_all(&local);
}

#[test]
fn corrupt_central_record_degrades_to_recompute_and_heal() {
    let central = temp_root("corrupt-central");
    let local = temp_root("corrupt-local");
    let mut cfg = RunConfig::quick(Benchmark::Li);
    cfg.instruction_budget = Some(60_000);

    let writer = SimSession::builder().store(open_store(&central)).build();
    let ref_dri = writer.policy_run(&cfg);
    let _ = writer.conventional(&cfg);

    // Damage the stored DRI record. The server validates before it
    // serves, so the batch answer carries a miss frame for this entry
    // and a genuine record for the baseline.
    let store = open_store(&central);
    let key = dri_experiments::persist::dri_key(&cfg);
    let path = store.entry_path(
        dri_experiments::persist::DRI_KIND,
        dri_experiments::persist::SCHEMA_VERSION,
        key,
    );
    let mut bytes = fs::read(&path).expect("record");
    bytes[40] ^= 0x08;
    fs::write(&path, &bytes).expect("tamper");

    let server = serve(&central);
    let worker = SimSession::builder()
        .store(open_store(&local))
        .remote(RemoteStore::new(server.addr().to_string()))
        .build();
    let report = worker.prefetch(std::slice::from_ref(&cfg));
    assert_eq!(report.batch_round_trips, 1);
    assert_eq!(report.remote_hits, 1, "the baseline still arrives");
    assert_eq!(report.misses, 1, "the corrupt record is a clean miss");

    let recomputed = worker.policy_run(&cfg);
    assert_dri_identical(&ref_dri, &recomputed, "recompute after corruption");
    assert_eq!(worker.stats().dri_misses, 1);
    // The recompute healed the local tier; the grid is whole again here.
    server.shutdown();
    let offline = SimSession::builder().store(open_store(&local)).build();
    let report = offline.prefetch(std::slice::from_ref(&cfg));
    assert_eq!(report.disk_hits, 2);
    assert_eq!(report.misses, 0);

    let _ = fs::remove_dir_all(&central);
    let _ = fs::remove_dir_all(&local);
}
