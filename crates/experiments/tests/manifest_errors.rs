//! Manifest parse-error coverage: every diagnostic carries the 1-based
//! line it happened on (a typo in a campaign plan must fail in seconds,
//! pointing at the line, not silently skip a figure), and the error
//! renders that line number for humans.

use dri_experiments::manifest::{parse, Job};

/// Asserts `text` fails on `line` with a message containing `needle`.
fn assert_fails_at(text: &str, line: usize, needle: &str) {
    let err = match parse(text) {
        Err(err) => err,
        Ok(_) => panic!("`{text}` should not parse"),
    };
    assert_eq!(err.line, line, "wrong line for `{text}`: {err}");
    assert!(
        err.message.contains(needle),
        "diagnostic for `{text}` should mention `{needle}`: {err}"
    );
    // Display renders the location the way editors expect it.
    assert!(
        format!("{err}").starts_with(&format!("manifest line {line}:")),
        "{err}"
    );
}

#[test]
fn unknown_jobs_point_at_their_line() {
    assert_fails_at("figure3\nfigure9\n", 2, "figure9");
    assert_fails_at("\n\n\nnot_a_job\n", 4, "not_a_job");
    // The diagnostic teaches the valid vocabulary.
    let err = parse("bogus\n").expect_err("unknown job");
    for job in Job::all() {
        assert!(err.message.contains(job.name()), "{err}");
    }
    assert!(err.message.contains("`all`"), "{err}");
}

#[test]
fn unknown_options_point_at_their_line() {
    assert_fails_at("quick = on\nworkers = 4\nfigure3\n", 2, "workers");
    let err = parse("workers = 4\n").expect_err("unknown option");
    for known in ["quick", "threads", "store", "remote"] {
        assert!(err.message.contains(known), "{err}");
    }
}

#[test]
fn malformed_values_point_at_their_line() {
    assert_fails_at("quick = maybe\n", 1, "maybe");
    assert_fails_at("# header\nthreads = -2\n", 2, "-2");
    assert_fails_at("threads = 0\n", 1, "positive");
    assert_fails_at("store =\n", 1, "directory");
    assert_fails_at("remote =   # trailing comment\n", 1, "host:port");
}

#[test]
fn options_after_jobs_point_at_the_offending_option() {
    assert_fails_at("figure3\nquick = on\n", 2, "before the first job");
    assert_fails_at(
        "quick = on\nfigure4\nstore = /tmp/x\n",
        3,
        "before the first job",
    );
}

#[test]
fn comments_and_blanks_do_not_shift_line_numbers() {
    let text = "\
# campaign plan
quick = on          # smoke scale

# jobs
figure3
figure7
";
    assert_fails_at(text, 6, "figure7");
}

#[test]
fn line_zero_renders_without_a_location() {
    // Line 0 is reserved for whole-file errors; the Display contract
    // matters for tools that prefix file names.
    let err = dri_experiments::manifest::ManifestError {
        line: 0,
        message: "empty plan".to_owned(),
    };
    assert_eq!(format!("{err}"), "manifest: empty plan");
}

#[test]
fn first_error_wins() {
    // Parsing is strict and sequential: the earliest broken line is the
    // one reported, even when later lines are also broken.
    let err = parse("threads = zero\nbogus_job\n").expect_err("two errors");
    assert_eq!(err.line, 1);
    assert!(err.message.contains("zero"), "{err}");
}

#[test]
fn valid_plans_still_parse_after_error_paths() {
    // Guard against over-eager strictness: a representative valid plan
    // with every option, comments, and duplicate jobs.
    let plan =
        parse("quick = off\nthreads = 2\nstore = /tmp/s\nremote = h:1\n\nfigure5\nall\nfigure5\n")
            .expect("valid plan");
    assert_eq!(plan.jobs.len(), Job::all().len());
    assert_eq!(plan.options.remote.as_deref(), Some("h:1"));
}
