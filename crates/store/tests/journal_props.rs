//! Property tests over the group-commit journal's segment codec — the
//! durability contract the serve tier acks against:
//!
//! * arbitrary batch sequences round-trip through append → recover,
//!   last write winning per key;
//! * any single truncation or bit flip makes recovery stop cleanly at
//!   the last valid frame: the surviving index is exactly the replay of
//!   some *prefix* of the appended batches — never a torn record, never
//!   garbage bytes, never a partially applied batch.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dri_store::{compress, Journal, JournalEntry, JournalOptions, ResultStore};
use proptest::prelude::*;

/// A fresh scratch root per proptest case (cases run sequentially but
/// must not see each other's segments).
fn temp_root(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!(
        "dri-journal-props-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).expect("scratch root");
    root
}

const KINDS: [&str; 3] = ["dri", "decay", "way_memo"];

/// One journal entry from plain scalars (kind picked from the fixture
/// set the real push path uses).
fn entry(kind_pick: u8, schema: u32, key: u64, payload: Vec<u8>) -> JournalEntry {
    JournalEntry {
        kind: KINDS[kind_pick as usize % KINDS.len()].to_owned(),
        schema,
        key: key as u128,
        payload,
    }
}

/// Strategy: a batch of 1–4 entries.
fn batch() -> impl Strategy<Value = Vec<JournalEntry>> {
    prop::collection::vec(
        (
            any::<u8>(),
            1u32..3,
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..48),
        )
            .prop_map(|(k, s, key, p)| entry(k, s, key, p)),
        1..4,
    )
}

/// The last-write-wins index after replaying `batches[..upto]`.
fn expected_index(
    batches: &[Vec<JournalEntry>],
    upto: usize,
) -> HashMap<(String, u32, u128), Vec<u8>> {
    let mut index = HashMap::new();
    for batch in &batches[..upto] {
        for e in batch {
            index.insert((e.kind.clone(), e.schema, e.key), e.payload.clone());
        }
    }
    index
}

/// Does `journal` hold exactly `expected` (same keys, bit-identical
/// payloads)?
fn journal_matches(journal: &Journal, expected: &HashMap<(String, u32, u128), Vec<u8>>) -> bool {
    journal.depth() as usize == expected.len()
        && expected.iter().all(|((kind, schema, key), payload)| {
            journal
                .lookup(kind, *schema, *key)
                .is_some_and(|held| held[..] == payload[..])
        })
}

/// The single `.wal` segment under `root` (these tests disable rotation
/// so every frame lands in one file).
fn the_segment(root: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(root.join("journal"))
        .expect("journal dir")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    assert_eq!(segments.len(), 1, "one unrotated segment");
    segments.pop().expect("segment")
}

/// Journal options with rotation off (tests corrupt one known file) and
/// both codec paths exercised by the `compressed` flag.
fn options(compressed: bool) -> JournalOptions {
    JournalOptions {
        max_segment_bytes: u64::MAX,
        compress: compressed,
    }
}

proptest! {
    #[test]
    fn batch_sequences_roundtrip_through_recovery_and_compaction(
        batches in prop::collection::vec(batch(), 1..6),
        compressed in any::<bool>(),
    ) {
        let root = temp_root("roundtrip");
        let expected = expected_index(&batches, batches.len());

        let journal = Journal::open(&root, options(compressed)).expect("open");
        for batch in &batches {
            journal.append_batch(batch.clone()).expect("append");
        }
        // Visible the moment the append returned.
        prop_assert!(journal_matches(&journal, &expected), "pre-recovery index");
        drop(journal);

        // A clean restart replays everything.
        let recovered = Journal::open(&root, options(compressed)).expect("recover");
        prop_assert!(journal_matches(&recovered, &expected), "post-recovery index");

        // Compaction lands every record bit-identically in the store.
        let store = ResultStore::open(&root).expect("store");
        recovered.compact(&store).expect("compact");
        prop_assert_eq!(recovered.depth(), 0);
        for ((kind, schema, key), payload) in &expected {
            let served = store.load(kind, *schema, *key);
            prop_assert_eq!(
                served.as_deref(),
                Some(&payload[..]),
                "store serves {} {} {:x}", kind, schema, key
            );
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn any_single_truncation_recovers_a_clean_batch_prefix(
        batches in prop::collection::vec(batch(), 1..6),
        compressed in any::<bool>(),
        cut_seed in any::<u64>(),
    ) {
        let root = temp_root("truncate");
        let journal = Journal::open(&root, options(compressed)).expect("open");
        for batch in &batches {
            journal.append_batch(batch.clone()).expect("append");
        }
        drop(journal);

        let segment = the_segment(&root);
        let full = fs::read(&segment).expect("segment bytes");
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
        fs::write(&segment, &full[..cut]).expect("truncate");

        let recovered = Journal::open(&root, options(compressed)).expect("recover");
        let matched = (0..=batches.len()).any(|upto| {
            journal_matches(&recovered, &expected_index(&batches, upto))
        });
        prop_assert!(
            matched,
            "cut at {cut}/{} must leave an exact batch prefix, got depth {}",
            full.len(),
            recovered.depth()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn any_single_bit_flip_recovers_a_clean_batch_prefix(
        batches in prop::collection::vec(batch(), 1..6),
        compressed in any::<bool>(),
        flip_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let root = temp_root("bitflip");
        let journal = Journal::open(&root, options(compressed)).expect("open");
        for batch in &batches {
            journal.append_batch(batch.clone()).expect("append");
        }
        drop(journal);

        let segment = the_segment(&root);
        let mut bytes = fs::read(&segment).expect("segment bytes");
        let at = (flip_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        fs::write(&segment, &bytes).expect("corrupt");

        let recovered = Journal::open(&root, options(compressed)).expect("recover");
        let matched = (0..=batches.len()).any(|upto| {
            journal_matches(&recovered, &expected_index(&batches, upto))
        });
        prop_assert!(
            matched,
            "bit {bit} of byte {at}/{} flipped: recovery must stop at the \
             last valid frame, got depth {}",
            bytes.len(),
            recovered.depth()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn delta_codec_roundtrips_arbitrary_payloads(
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let packed = compress::compress(&payload);
        prop_assert_eq!(
            compress::decompress(&packed, payload.len()),
            Some(payload.clone())
        );
        // A tighter bound than the real length is refused, not overrun.
        if !payload.is_empty() {
            prop_assert_eq!(compress::decompress(&packed, payload.len() - 1), None);
        }
    }
}
