//! # dri-store — the persistent simulation-result store
//!
//! PR 1's `SimSession` made repeated sweep points free *within* a process;
//! this crate makes them free *across* processes. It is a content-addressed,
//! versioned, on-disk cache of small binary records, designed around three
//! invariants:
//!
//! 1. **Stable keys.** Entries are addressed by a [`hash::KeyHasher`]
//!    digest (FNV-1a over a canonical little-endian field encoding) of
//!    everything that can influence a result's counters. The hash is a
//!    fixed algorithm with fixed constants — never `std`'s `Hasher`, whose
//!    output may change between compiler releases — so two processes (or
//!    two machines sharing a network mount) compute identical addresses
//!    for identical configurations.
//! 2. **Never trust the disk.** Every record carries a magic number, a
//!    schema version, its own key, its payload length, and a checksum
//!    ([`store::ResultStore::load`] verifies all five). A truncated,
//!    corrupted, or stale-schema file is treated as a miss — counted in
//!    [`store::StoreStats::corrupt`] — and the caller recomputes and
//!    overwrites it. A load can therefore *never* poison a result.
//! 3. **Concurrent writers are safe.** Writes go to a unique temp file in
//!    the entry's own directory and are published with an atomic
//!    `rename`, so readers observe either the old complete record or the
//!    new complete record, and racing writers of the same (deterministic)
//!    entry simply overwrite each other with identical bytes.
//!
//! The store knows nothing about simulations: callers bring their own key
//! schema and payload codec (see [`codec::Encoder`]/[`codec::Decoder`]).
//! `dri-experiments` layers its run-result schema on top and wires the
//! store into `SimSession` as the tier between the in-memory maps and a
//! fresh simulation.
//!
//! ## Layout on disk
//!
//! ```text
//! <root>/<kind>/v<schema>/<hh>/<032-hex-key>.bin
//! ```
//!
//! where `kind` names the record type (`"baseline"`, `"dri"`, …),
//! `v<schema>` isolates incompatible encodings from each other, and `hh`
//! (the top byte of the key, in hex) shards entries across 256
//! subdirectories so no single directory grows unboundedly.

//! ## GC and compaction
//!
//! Stores that absorb whole campaign sweeps are bounded by
//! [`store::ResultStore::gc`] ([`gc`]): age and size budgets, last-access
//! generation stamps in `.gen` sidecars, and tombstone-then-unlink
//! eviction that concurrent readers observe as an ordinary miss (they
//! recompute and heal — a torn read is impossible). See the [`gc`] module
//! docs.
//!
//! ## Serving a store over the wire
//!
//! [`store::validate_record`] and
//! [`store::ResultStore::load_record_bytes`] expose the raw-record
//! serving path used by the `dri-serve` crate: the full checksummed
//! record travels to the remote reader, which re-validates it end-to-end
//! before trusting a byte. The reverse direction — a worker *pushing* a
//! locally computed result to a central host — uses
//! [`store::frame_record`] to build the identical self-validating record
//! for the wire; the receiving server re-runs [`store::validate_record`]
//! and lands the payload through the same atomic temp+rename write path.
//!
//! ## Planning lookups in bulk
//!
//! [`plan::KeyPlan`] enumerates — ordered and deduplicated — the record
//! grid a campaign is about to need, so a bulk resolver (the prefetch
//! pass in `dri-experiments`) can sweep the disk once and fetch every
//! remote remainder in a single chunked `POST /batch` round-trip instead
//! of paying one round-trip per grid point.
//!
//! ## Scheduling a campaign across a fleet
//!
//! [`lease::LeaseBroker`] keeps a durable table of expiring, generation-
//! stamped work-unit leases under `<root>/leases/`, published with the
//! same atomic temp+rename idiom as records. `dri-serve` brokers it over
//! authenticated `/lease/*` endpoints so any number of workers can
//! claim → simulate → push → complete a campaign's units, with a dead
//! worker's expired leases reclaimed (and re-executed bit-identically)
//! by the survivors. Lease files are invisible to the GC walker, so
//! `suite gc` never disturbs a live campaign.
//!
//! ## Group-commit journal
//!
//! [`journal::Journal`] is the server-side write path's fast lane: a
//! whole `batch-put` lands as **one** checksummed frame appended to
//! `<root>/journal/seg-*.wal` with **one** fsync, is acked only after
//! that fsync, and is readable from the journal index immediately; a
//! background compaction pass drains sealed segments into the ordinary
//! record files. Torn or corrupted frames are dropped whole at
//! recovery — an unacked batch can never surface a partial record.
//! Live `.wal` segments are invisible to the GC walker; drained
//! `.wal.compacted` debris is swept.
//!
//! ## Compression
//!
//! [`compress`] is a dependency-free zigzag-varint delta codec over the
//! little-endian `u64` words of a payload — simulation records are
//! regular counter structs, so it routinely shrinks them several fold.
//! It is applied inside journal frames, optionally at rest (the `DRIZ`
//! record shape, [`store::STORE_COMPRESS_ENV`]), and on the push/batch
//! wire when client and server negotiate it by header; every use keeps
//! the raw form whenever compression would inflate.

#![warn(missing_docs)]

pub mod codec;
pub mod compress;
pub mod gc;
pub mod hash;
pub mod journal;
pub mod lease;
pub mod plan;
pub mod ring;
pub mod store;

pub use codec::{Decoder, Encoder};
pub use gc::{DiskUsage, GcPolicy, GcReport};
pub use hash::KeyHasher;
pub use journal::{Journal, JournalEntry, JournalOptions, JournalStats};
pub use lease::{
    ClaimOutcome, Lease, LeaseBroker, LeaseCounts, LeaseGrant, LeaseRefusal, LeaseState,
};
pub use plan::{KeyPlan, KeyRef};
pub use ring::HashRing;
pub use store::{
    decode_record, frame_record, frame_record_compressed, validate_record, ResultStore, StoreStats,
};
