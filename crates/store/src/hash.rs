//! Stable content hashing for store keys.
//!
//! Keys must be identical across processes, compiler versions, and
//! machines, so they are computed by a fixed algorithm (128-bit FNV-1a)
//! over a canonical encoding: integers little-endian at full width,
//! strings length-prefixed, `Option`s tag-prefixed. `std::hash::Hasher`
//! implementations are deliberately *not* used — their output is only
//! guaranteed stable within one build.

/// FNV-1a offset basis for the 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a prime for the 128-bit variant.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a over a canonical field encoding.
///
/// ```
/// use dri_store::KeyHasher;
///
/// let mut a = KeyHasher::new();
/// a.write_u64(64 * 1024);
/// a.write_str("compress");
/// let mut b = KeyHasher::new();
/// b.write_u64(64 * 1024);
/// b.write_str("compress");
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u128,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        KeyHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes (the FNV-1a core loop).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u128`, little-endian (e.g. a digest being folded into
    /// another hash, as the keyed request-tag construction does).
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Absorbs a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs an optional `u64`: a presence tag, then the value.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
        }
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// 64-bit FNV-1a over a byte slice (record checksums).
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut state = OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        // 128-bit empty input = offset basis.
        assert_eq!(KeyHasher::new().finish(), FNV128_OFFSET);
    }

    #[test]
    fn field_boundaries_matter() {
        let mut a = KeyHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn option_tags_disambiguate() {
        let mut none_then_zero = KeyHasher::new();
        none_then_zero.write_opt_u64(None);
        none_then_zero.write_u64(0);
        let mut some_zero = KeyHasher::new();
        some_zero.write_opt_u64(Some(0));
        // `None` followed by an unrelated 0 must not alias `Some(0)`
        // followed by nothing... (different lengths), nor `Some(0)` itself.
        assert_ne!(none_then_zero.finish(), some_zero.finish());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = KeyHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = KeyHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
