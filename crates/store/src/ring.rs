//! Deterministic consistent-hash ring for sharding the record keyspace
//! across a serve fleet.
//!
//! The ring maps a 128-bit record key (a [`crate::hash::KeyHasher`]
//! digest) to an ordered list of *owning shards* — the first is the
//! primary, the rest are the replicas a client fails over to when the
//! primary dies. Placement must be a pure function of the shard *set*
//! and the key, never of incidental input details, because every worker
//! in a fleet computes it independently from its own `DRI_SHARDS`
//! value:
//!
//! - **Canonical membership.** The shard list is sorted and deduplicated
//!   at construction, so `a,b,c` and `c,b,a,b` build bit-identical
//!   rings and two workers with reordered env vars route every key to
//!   the same servers.
//! - **Virtual nodes.** Each shard projects [`VNODES`] points onto the
//!   ring (hashing `("dri-ring", shard, vnode)`), which evens out the
//!   keyspace split across small fleets — with one point per shard, a
//!   3-shard ring routinely gives one shard over half the keys.
//! - **Minimal remapping.** Removing a shard removes only *its* points;
//!   every key whose clockwise walk never met those points keeps its
//!   owner list, and a key that lost its primary promotes its next
//!   replica (the property proptests in `dri-experiments` pin down).
//!
//! Key positions are re-hashed through the same FNV-128 construction
//! (`("dri-key", key)`) rather than used raw: store keys are themselves
//! FNV digests of structured fields, and nearby configurations can
//! produce digests that are close together; the extra round decorrelates
//! ring position from key structure.

use crate::hash::KeyHasher;

/// Virtual nodes (ring points) per shard. 64 keeps the largest/smallest
/// keyspace share within ~2× for small fleets while the whole ring for
/// a dozen shards still fits in a few kilobytes.
pub const VNODES: usize = 64;

/// A deterministic consistent-hash ring over named shards.
///
/// ```
/// use dri_store::HashRing;
///
/// let ring = HashRing::new(["127.0.0.1:7171", "127.0.0.1:7172"], 2).unwrap();
/// let owners = ring.owners(42);
/// assert_eq!(owners.len(), 2); // primary + one replica
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Canonical membership: sorted, deduplicated shard names.
    shards: Vec<String>,
    /// How many distinct shards own each key (clamped to the fleet size).
    replicas: usize,
    /// Ring points: `(position, shard index)`, sorted by position.
    points: Vec<(u128, usize)>,
}

/// Ring position of one shard's vnode.
fn vnode_point(shard: &str, vnode: usize) -> u128 {
    let mut h = KeyHasher::new();
    h.write_str("dri-ring");
    h.write_str(shard);
    h.write_u64(vnode as u64);
    h.finish()
}

/// Ring position of a record key (decorrelated from the key's own
/// FNV structure — see the module docs).
fn key_point(key: u128) -> u128 {
    let mut h = KeyHasher::new();
    h.write_str("dri-key");
    h.write_u128(key);
    h.finish()
}

impl HashRing {
    /// Builds a ring over `shards` with `replicas` owners per key.
    ///
    /// The shard list is canonicalized (trimmed, sorted, deduplicated);
    /// `replicas` is clamped to `1..=shards.len()`. `Err` when no
    /// non-empty shard name survives — an empty fleet cannot own keys.
    pub fn new<I, S>(shards: I, replicas: usize) -> Result<HashRing, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut shards: Vec<String> = shards
            .into_iter()
            .map(|s| s.into().trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        shards.sort();
        shards.dedup();
        if shards.is_empty() {
            return Err("hash ring needs at least one shard".to_owned());
        }
        let replicas = replicas.clamp(1, shards.len());
        let mut points = Vec::with_capacity(shards.len() * VNODES);
        for (idx, shard) in shards.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((vnode_point(shard, vnode), idx));
            }
        }
        // Position ties broken by shard index so placement stays a pure
        // function of the canonical membership even in the (vanishingly
        // unlikely) event of a 128-bit collision.
        points.sort_unstable();
        Ok(HashRing {
            shards,
            replicas,
            points,
        })
    }

    /// The canonical (sorted, deduplicated) shard names. Callers that
    /// keep per-shard state index it in this order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// The effective replication factor (post-clamping).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Indices (into [`Self::shards`]) of the shards owning `key`, in
    /// failover order: primary first, then each successive replica met
    /// walking the ring clockwise.
    pub fn owner_indices(&self, key: u128) -> Vec<usize> {
        let want = self.replicas.min(self.shards.len());
        let mut owners = Vec::with_capacity(want);
        let point = key_point(key);
        // First ring point at or after the key's position, wrapping.
        let start = self.points.partition_point(|&(p, _)| p < point);
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !owners.contains(&idx) {
                owners.push(idx);
                if owners.len() == want {
                    break;
                }
            }
        }
        owners
    }

    /// Shard names owning `key`, in failover order.
    pub fn owners(&self, key: u128) -> Vec<&str> {
        self.owner_indices(key)
            .into_iter()
            .map(|i| self.shards[i].as_str())
            .collect()
    }

    /// Index of the primary owner of `key`.
    pub fn primary(&self, key: u128) -> usize {
        self.owner_indices(key)[0]
    }

    /// Routes an arbitrary string (e.g. a campaign id, for lease
    /// control-plane affinity) by hashing it onto the ring.
    pub fn owner_indices_for_str(&self, name: &str) -> Vec<usize> {
        let mut h = KeyHasher::new();
        h.write_str(name);
        self.owner_indices(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_membership() {
        let a = HashRing::new(["b:1", "a:1", "c:1"], 2).unwrap();
        let b = HashRing::new(["c:1", " a:1 ", "b:1", "b:1", ""], 2).unwrap();
        assert_eq!(a.shards(), b.shards());
        assert_eq!(a.shards(), &["a:1", "b:1", "c:1"]);
        for key in 0..512u128 {
            assert_eq!(a.owner_indices(key), b.owner_indices(key));
        }
    }

    #[test]
    fn rejects_empty_and_clamps_replicas() {
        assert!(HashRing::new(Vec::<String>::new(), 2).is_err());
        assert!(HashRing::new([" ", ""], 1).is_err());
        let ring = HashRing::new(["a:1", "b:1"], 9).unwrap();
        assert_eq!(ring.replicas(), 2);
        let ring = HashRing::new(["a:1"], 0).unwrap();
        assert_eq!(ring.replicas(), 1);
    }

    #[test]
    fn owners_are_distinct_and_ordered_by_the_walk() {
        let ring = HashRing::new(["a:1", "b:1", "c:1", "d:1"], 3).unwrap();
        for key in 0..256u128 {
            let owners = ring.owner_indices(key);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct shards");
            assert_eq!(ring.primary(key), owners[0]);
        }
    }

    #[test]
    fn keyspace_split_is_roughly_even() {
        let ring = HashRing::new(["a:1", "b:1", "c:1"], 1).unwrap();
        let mut counts = [0usize; 3];
        for key in 0..3000u128 {
            counts[ring.primary(key * 0x9e37_79b9_7f4a_7c15)] += 1;
        }
        for &c in &counts {
            // A fair split is 1000; vnodes should keep every shard
            // within a factor of two of fair.
            assert!((500..=2000).contains(&c), "lopsided split: {counts:?}");
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_keys() {
        let full = HashRing::new(["a:1", "b:1", "c:1", "d:1"], 2).unwrap();
        let removed = "c:1";
        let reduced = HashRing::new(["a:1", "b:1", "d:1"], 2).unwrap();
        for key in 0..512u128 {
            let before: Vec<&str> = full.owners(key);
            let after: Vec<&str> = reduced.owners(key);
            let surviving: Vec<&str> = before.iter().copied().filter(|&s| s != removed).collect();
            // Survivors keep their relative failover order, as a prefix
            // of the new owner list (replica promotion fills the tail).
            assert_eq!(&after[..surviving.len()], &surviving[..], "key {key}");
        }
    }

    #[test]
    fn string_routing_is_stable() {
        let ring = HashRing::new(["a:1", "b:1", "c:1"], 2).unwrap();
        assert_eq!(
            ring.owner_indices_for_str("campaign-x"),
            ring.owner_indices_for_str("campaign-x")
        );
    }
}
