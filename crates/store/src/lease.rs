//! Durable, expiring work-unit leases: the store-side state of the
//! work-stealing campaign scheduler.
//!
//! A campaign (one `suite` run plan) is split into named **work units**
//! (one per benchmark). Workers *claim* a unit, simulate and push its
//! grid, and *complete* it, renewing a heartbeat mid-sweep; a worker
//! that dies simply stops renewing, its lease expires after the TTL,
//! and any other worker *reclaims* the unit — simulations are
//! deterministic, so re-execution is bit-identical and the only cost of
//! a crash is the wasted work, never a wrong or stranded result.
//!
//! The state machine per unit:
//!
//! ```text
//!             claim                complete
//! available ─────────▶ claimed ─────────────▶ completed
//!                      ▲  │  ▲╲
//!                renew │  │  │ ╲ TTL elapses without a renewal
//!                      └──┘  │  ▼
//!                            │ expired ──▶ (claim = reclaim, gen+1)
//!                            └───────────────┘
//! ```
//!
//! Leases are durable: one small text file per unit under
//! `<store-root>/leases/<campaign>/<unit>.lease`, published with the
//! store's atomic temp+`rename` idiom, so a restarted server resumes
//! the campaign exactly where the fleet left it. Every transition into
//! `claimed` bumps the unit's **monotonic generation**; renew and
//! complete must present the generation they were granted, so a worker
//! whose lease was reclaimed can never renew or complete over the new
//! owner (its late `complete` is refused with [`LeaseRefusal::NotOwner`]
//! — harmless, because its results were already pushed and are
//! bit-identical to the reclaimer's).
//!
//! Time is an explicit `now_ms` argument throughout (the server passes
//! wall-clock milliseconds via [`wall_now_ms`]), so every expiry edge is
//! unit-testable without sleeping. Mutations are serialized by an
//! in-process lock: the broker is designed to live inside the single
//! `dri-serve` process that owns the store root (concurrent *workers*
//! race through the HTTP endpoints, not through this struct).
//!
//! GC interplay: `.lease` files are neither records nor debris to
//! [`crate::gc`]'s walker, so `suite gc` never touches live lease state;
//! a crashed lease *write* leaves a `.tmp-` file that the ordinary
//! stale-temp sweep reclaims.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use dri_telemetry::{trace, TraceEvent};

/// Directory under the store root holding all campaigns' lease state.
pub const LEASES_DIR: &str = "leases";

/// Lifecycle state of one work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Never claimed, or returned to the pool (not currently used: a
    /// reclaim goes straight to `Claimed` for the new owner).
    Available,
    /// Leased to `owner` until `deadline_ms`; expired once the deadline
    /// passes without a renewal.
    Claimed,
    /// Done: the unit's records were simulated and pushed.
    Completed,
}

/// One unit's durable lease record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Unit name (a benchmark name in the `suite --steal` scheduler).
    pub unit: String,
    /// Monotonic claim generation: bumped on every transition into
    /// `Claimed`. Renew/complete must present the granted generation.
    pub generation: u64,
    /// Current lifecycle state.
    pub state: LeaseState,
    /// Worker holding the claim (empty unless `Claimed`/`Completed`).
    pub owner: String,
    /// Expiry instant in milliseconds (0 unless `Claimed`).
    pub deadline_ms: u64,
}

impl Lease {
    fn available(unit: &str) -> Lease {
        Lease {
            unit: unit.to_owned(),
            generation: 0,
            state: LeaseState::Available,
            owner: String::new(),
            deadline_ms: 0,
        }
    }

    /// Whether a claimed lease's deadline has passed.
    pub fn expired(&self, now_ms: u64) -> bool {
        self.state == LeaseState::Claimed && now_ms > self.deadline_ms
    }
}

/// A granted claim: what the worker needs to run, renew, and complete
/// the unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseGrant {
    /// The unit to execute.
    pub unit: String,
    /// Generation of this claim — quote it in renew/complete.
    pub generation: u64,
    /// When the claim expires unless renewed.
    pub deadline_ms: u64,
    /// Whether this grant took over an expired claim (a dead worker's
    /// unit being re-executed).
    pub reclaimed: bool,
}

/// Outcome of one [`LeaseBroker::claim`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// A unit was granted.
    Granted(LeaseGrant),
    /// Every remaining unit is claimed and live — back off and re-ask
    /// (one of them may expire).
    Wait {
        /// Units currently claimed and unexpired.
        claimed: u64,
    },
    /// Every unit is completed: the campaign is drained.
    Drained,
}

/// Why a renew or complete was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseRefusal {
    /// The unit has no lease file (never seeded, or a foreign name).
    UnknownUnit,
    /// The unit is not in the `Claimed` state.
    NotClaimed,
    /// Generation or owner mismatch: the lease was reclaimed by (or
    /// belongs to) another worker.
    NotOwner,
    /// The deadline passed before the renewal arrived; the unit is up
    /// for reclaim and the caller must stop assuming ownership.
    Expired,
}

impl std::fmt::Display for LeaseRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LeaseRefusal::UnknownUnit => "unknown unit",
            LeaseRefusal::NotClaimed => "not claimed",
            LeaseRefusal::NotOwner => "not the lease owner",
            LeaseRefusal::Expired => "lease expired",
        })
    }
}

/// Per-campaign unit tallies (see [`LeaseBroker::counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseCounts {
    /// Units never claimed / up for first claim.
    pub available: u64,
    /// Units claimed and still live.
    pub claimed: u64,
    /// Units claimed but past their deadline (reclaimable).
    pub expired: u64,
    /// Units completed.
    pub completed: u64,
}

/// The durable lease table for every campaign under one store root.
#[derive(Debug)]
pub struct LeaseBroker {
    root: PathBuf,
    /// Serializes mutations: the broker lives in the one server process
    /// that owns the root, so an in-process lock is the whole story.
    lock: Mutex<()>,
}

impl LeaseBroker {
    /// Opens (creating if needed) the lease table under
    /// `<store_root>/leases`.
    pub fn open(store_root: &Path) -> io::Result<LeaseBroker> {
        let root = store_root.join(LEASES_DIR);
        fs::create_dir_all(&root)?;
        Ok(LeaseBroker {
            root,
            lock: Mutex::new(()),
        })
    }

    /// Seeds `units` into `campaign` idempotently: units without a lease
    /// file get one in the `Available` state; existing files (whatever
    /// their state) are left alone, so any number of workers can seed
    /// the same campaign concurrently with the same deterministic list.
    /// Returns how many units were newly created. Unsafe names are
    /// rejected wholesale — a crafted unit must never escape the root.
    pub fn seed(&self, campaign: &str, units: &[String]) -> io::Result<usize> {
        if !name_is_safe(campaign) || !units.iter().all(|u| name_is_safe(u)) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unsafe campaign or unit name",
            ));
        }
        let _guard = self.lock.lock().expect("lease lock");
        let mut created = 0;
        for unit in units {
            if !self.lease_path(campaign, unit).exists() {
                self.write_lease(campaign, &Lease::available(unit))?;
                created += 1;
            }
        }
        Ok(created)
    }

    /// Claims one unit of `campaign` for `worker`: the first available
    /// unit in name order, else the first **expired** claim (a reclaim —
    /// the previous owner stopped renewing). Every grant bumps the
    /// unit's generation and sets its deadline to `now_ms + ttl_ms`.
    pub fn claim(
        &self,
        campaign: &str,
        worker: &str,
        ttl_ms: u64,
        now_ms: u64,
    ) -> io::Result<ClaimOutcome> {
        if !name_is_safe(campaign) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unsafe campaign name",
            ));
        }
        let _guard = self.lock.lock().expect("lease lock");
        let units = self.read_campaign(campaign)?;
        let pick = units
            .values()
            .find(|l| l.state == LeaseState::Available)
            .or_else(|| units.values().find(|l| l.expired(now_ms)));
        let Some(previous) = pick else {
            let claimed = units
                .values()
                .filter(|l| !l.expired(now_ms))
                .filter(|l| l.state == LeaseState::Claimed)
                .count() as u64;
            return Ok(if claimed > 0 || units.is_empty() {
                // An unseeded campaign has nothing to drain *yet*; tell
                // the worker to re-ask rather than to go home.
                ClaimOutcome::Wait { claimed }
            } else {
                ClaimOutcome::Drained
            });
        };
        let reclaimed = previous.state == LeaseState::Claimed;
        let previous_owner = previous.owner.clone();
        let lease = Lease {
            unit: previous.unit.clone(),
            generation: previous.generation + 1,
            state: LeaseState::Claimed,
            owner: worker.to_owned(),
            deadline_ms: now_ms.saturating_add(ttl_ms),
        };
        self.write_lease(campaign, &lease)?;
        if trace::enabled() {
            // The reclaim handoff is the one edge a chaos post-mortem
            // must see: which unit moved from whom to whom, and under
            // which generation.
            let mut event = TraceEvent::new("lease", "claim")
                .outcome(if reclaimed { "reclaimed" } else { "granted" })
                .label("campaign", campaign)
                .label("unit", &lease.unit)
                .label("worker", worker)
                .label("gen", &lease.generation.to_string());
            if reclaimed {
                event = event.label("previous_owner", &previous_owner);
            }
            event.emit();
        }
        Ok(ClaimOutcome::Granted(LeaseGrant {
            unit: lease.unit,
            generation: lease.generation,
            deadline_ms: lease.deadline_ms,
            reclaimed,
        }))
    }

    /// Renews `worker`'s claim on `unit`: the new deadline is `now_ms +
    /// ttl_ms`. Refused when the unit is unknown, not claimed, claimed
    /// under a different generation/owner (reclaimed), or **already
    /// expired** — an expired lease is up for reclaim, and a renewal
    /// racing a reclaim must lose deterministically.
    pub fn renew(
        &self,
        campaign: &str,
        unit: &str,
        generation: u64,
        worker: &str,
        ttl_ms: u64,
        now_ms: u64,
    ) -> io::Result<Result<u64, LeaseRefusal>> {
        let _guard = self.lock.lock().expect("lease lock");
        let Some(lease) = self.read_lease(campaign, unit)? else {
            return Ok(Err(LeaseRefusal::UnknownUnit));
        };
        if let Err(refusal) = check_ownership(&lease, generation, worker) {
            return Ok(Err(refusal));
        }
        if lease.expired(now_ms) {
            return Ok(Err(LeaseRefusal::Expired));
        }
        let renewed = Lease {
            deadline_ms: now_ms.saturating_add(ttl_ms),
            ..lease
        };
        self.write_lease(campaign, &renewed)?;
        Ok(Ok(renewed.deadline_ms))
    }

    /// Marks `unit` completed. Unlike renew, completion is honoured even
    /// past the deadline as long as nobody has reclaimed the unit (the
    /// generation still matches): the slow worker *did* finish and push,
    /// and accepting saves the fleet a redundant re-execution. After a
    /// reclaim the generation differs and the late completion is refused
    /// — also harmless, since results are bit-identical. A *duplicate*
    /// completion from the same (generation, owner) succeeds idempotently:
    /// a completion whose response was lost in transit gets retried, and
    /// the retry must not read as a refusal.
    pub fn complete(
        &self,
        campaign: &str,
        unit: &str,
        generation: u64,
        worker: &str,
    ) -> io::Result<Result<(), LeaseRefusal>> {
        let _guard = self.lock.lock().expect("lease lock");
        let Some(lease) = self.read_lease(campaign, unit)? else {
            return Ok(Err(LeaseRefusal::UnknownUnit));
        };
        if lease.state == LeaseState::Completed
            && lease.generation == generation
            && lease.owner == worker
        {
            return Ok(Ok(()));
        }
        if let Err(refusal) = check_ownership(&lease, generation, worker) {
            return Ok(Err(refusal));
        }
        let completed = Lease {
            state: LeaseState::Completed,
            deadline_ms: 0,
            ..lease
        };
        self.write_lease(campaign, &completed)?;
        if trace::enabled() {
            TraceEvent::new("lease", "complete")
                .outcome("completed")
                .label("campaign", campaign)
                .label("unit", unit)
                .label("worker", worker)
                .label("gen", &generation.to_string())
                .emit();
        }
        Ok(Ok(()))
    }

    /// Reads one unit's lease (`None` when it has no file).
    pub fn lease(&self, campaign: &str, unit: &str) -> io::Result<Option<Lease>> {
        let _guard = self.lock.lock().expect("lease lock");
        self.read_lease(campaign, unit)
    }

    /// Tallies `campaign`'s units by state at `now_ms`.
    pub fn counts(&self, campaign: &str, now_ms: u64) -> io::Result<LeaseCounts> {
        let _guard = self.lock.lock().expect("lease lock");
        let mut counts = LeaseCounts::default();
        for lease in self.read_campaign(campaign)?.values() {
            match lease.state {
                LeaseState::Available => counts.available += 1,
                LeaseState::Claimed if lease.expired(now_ms) => counts.expired += 1,
                LeaseState::Claimed => counts.claimed += 1,
                LeaseState::Completed => counts.completed += 1,
            }
        }
        Ok(counts)
    }

    fn lease_path(&self, campaign: &str, unit: &str) -> PathBuf {
        self.root.join(campaign).join(format!("{unit}.lease"))
    }

    fn read_lease(&self, campaign: &str, unit: &str) -> io::Result<Option<Lease>> {
        if !name_is_safe(campaign) || !name_is_safe(unit) {
            return Ok(None);
        }
        let path = self.lease_path(campaign, unit);
        match fs::read(&path) {
            // A torn or corrupt file (impossible under the atomic write,
            // but the disk is never trusted) degrades to "available":
            // the unit merely gets re-executed, bit-identically.
            Ok(bytes) => Ok(Some(parse_lease(unit, &String::from_utf8_lossy(&bytes)))),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// All of a campaign's leases, keyed (and therefore ordered) by unit
    /// name — claim order is deterministic.
    fn read_campaign(&self, campaign: &str) -> io::Result<BTreeMap<String, Lease>> {
        let mut units = BTreeMap::new();
        let dir = self.root.join(campaign);
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(units),
            Err(err) => return Err(err),
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(unit) = name.strip_suffix(".lease") else {
                continue;
            };
            let Ok(bytes) = fs::read(&path) else {
                continue;
            };
            units.insert(
                unit.to_owned(),
                parse_lease(unit, &String::from_utf8_lossy(&bytes)),
            );
        }
        Ok(units)
    }

    /// Publishes one lease durably: temp file + `sync_data` + atomic
    /// rename, the store's record-write idiom. The temp name's `.tmp-`
    /// prefix puts a crashed write under GC's stale-temp sweep.
    fn write_lease(&self, campaign: &str, lease: &Lease) -> io::Result<()> {
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = self.root.join(campaign);
        fs::create_dir_all(&dir)?;
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            seq,
            lease.unit
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(encode_lease(lease).as_bytes())?;
            file.sync_data()?;
            fs::rename(&tmp, self.lease_path(campaign, &lease.unit))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// Generation + owner gate shared by renew and complete.
fn check_ownership(lease: &Lease, generation: u64, worker: &str) -> Result<(), LeaseRefusal> {
    if lease.state != LeaseState::Claimed {
        return Err(LeaseRefusal::NotClaimed);
    }
    if lease.generation != generation || lease.owner != worker {
        return Err(LeaseRefusal::NotOwner);
    }
    Ok(())
}

/// Whether a campaign/unit name is safe as a path component: the same
/// alphabet record kinds use on the wire (`[A-Za-z0-9._-]`, at least one
/// alphanumeric, not `.`/`..`), so a crafted name can never escape the
/// store root.
pub fn name_is_safe(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.chars().any(|c| c.is_ascii_alphanumeric())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && name != "."
        && name != ".."
}

/// Wall-clock milliseconds since the Unix epoch — what the server passes
/// as `now_ms`. Lease state must survive server restarts, so deadlines
/// are wall-clock, not process-relative.
pub fn wall_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn encode_lease(lease: &Lease) -> String {
    let state = match lease.state {
        LeaseState::Available => "available",
        LeaseState::Claimed => "claimed",
        LeaseState::Completed => "completed",
    };
    format!(
        "gen={}\nstate={state}\nowner={}\ndeadline={}\n",
        lease.generation, lease.owner, lease.deadline_ms
    )
}

/// Best-effort parse: unknown fields are ignored, missing ones default,
/// and an unrecognizable state degrades to `Available` (re-execution is
/// bit-identical, so lost lease state can cost work, never correctness).
fn parse_lease(unit: &str, text: &str) -> Lease {
    let mut lease = Lease::available(unit);
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key {
            "gen" => lease.generation = value.parse().unwrap_or(lease.generation),
            "state" => {
                lease.state = match value {
                    "claimed" => LeaseState::Claimed,
                    "completed" => LeaseState::Completed,
                    _ => LeaseState::Available,
                }
            }
            "owner" => lease.owner = value.to_owned(),
            "deadline" => lease.deadline_ms = value.parse().unwrap_or(lease.deadline_ms),
            _ => {}
        }
    }
    lease
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_broker(tag: &str) -> (PathBuf, LeaseBroker) {
        let root =
            std::env::temp_dir().join(format!("dri-lease-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        let broker = LeaseBroker::open(&root).expect("broker");
        (root, broker)
    }

    fn units(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    fn grant(outcome: ClaimOutcome) -> LeaseGrant {
        match outcome {
            ClaimOutcome::Granted(grant) => grant,
            other => panic!("expected a grant, got {other:?}"),
        }
    }

    #[test]
    fn claim_complete_drain_lifecycle() {
        let (root, broker) = temp_broker("lifecycle");
        assert_eq!(broker.seed("fig3", &units(&["a", "b"])).unwrap(), 2);
        assert_eq!(
            broker.seed("fig3", &units(&["a", "b"])).unwrap(),
            0,
            "idempotent"
        );

        let g1 = grant(broker.claim("fig3", "w1", 100, 1_000).unwrap());
        assert_eq!(
            (g1.unit.as_str(), g1.generation, g1.reclaimed),
            ("a", 1, false)
        );
        assert_eq!(g1.deadline_ms, 1_100);
        let g2 = grant(broker.claim("fig3", "w2", 100, 1_000).unwrap());
        assert_eq!(g2.unit, "b");

        // Everything claimed and live: wait.
        assert_eq!(
            broker.claim("fig3", "w3", 100, 1_050).unwrap(),
            ClaimOutcome::Wait { claimed: 2 }
        );

        broker
            .complete("fig3", "a", g1.generation, "w1")
            .unwrap()
            .unwrap();
        broker
            .complete("fig3", "b", g2.generation, "w2")
            .unwrap()
            .unwrap();
        assert_eq!(
            broker.claim("fig3", "w3", 100, 1_060).unwrap(),
            ClaimOutcome::Drained
        );

        let counts = broker.counts("fig3", 1_060).unwrap();
        assert_eq!(counts.completed, 2);
        assert_eq!(counts.available + counts.claimed + counts.expired, 0);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn expired_lease_is_reclaimed_with_a_new_generation() {
        let (root, broker) = temp_broker("reclaim");
        broker.seed("fig3", &units(&["a"])).unwrap();
        let g1 = grant(broker.claim("fig3", "w1", 100, 1_000).unwrap());

        // Still live at the deadline itself; expired one tick later.
        assert_eq!(
            broker.claim("fig3", "w2", 100, g1.deadline_ms).unwrap(),
            ClaimOutcome::Wait { claimed: 1 }
        );
        let g2 = grant(broker.claim("fig3", "w2", 100, g1.deadline_ms + 1).unwrap());
        assert_eq!(g2.unit, "a");
        assert!(g2.reclaimed, "took over a dead worker's claim");
        assert_eq!(g2.generation, g1.generation + 1, "generation is monotonic");

        // The dead worker's stale handle is powerless now.
        assert_eq!(
            broker
                .renew("fig3", "a", g1.generation, "w1", 100, g2.deadline_ms - 1)
                .unwrap(),
            Err(LeaseRefusal::NotOwner)
        );
        assert_eq!(
            broker.complete("fig3", "a", g1.generation, "w1").unwrap(),
            Err(LeaseRefusal::NotOwner)
        );
        // The reclaimer's handle works.
        broker
            .complete("fig3", "a", g2.generation, "w2")
            .unwrap()
            .unwrap();
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn renew_extends_and_is_refused_after_expiry() {
        let (root, broker) = temp_broker("renew");
        broker.seed("c", &units(&["u"])).unwrap();
        let g = grant(broker.claim("c", "w1", 100, 1_000).unwrap());

        // A live renewal pushes the deadline out from *now*.
        let renewed = broker
            .renew("c", "u", g.generation, "w1", 100, 1_050)
            .unwrap()
            .unwrap();
        assert_eq!(renewed, 1_150);

        // Past the (renewed) deadline the renewal is refused, even though
        // nobody reclaimed the unit yet: a renewal racing a reclaim must
        // lose deterministically.
        assert_eq!(
            broker
                .renew("c", "u", g.generation, "w1", 100, 1_151)
                .unwrap(),
            Err(LeaseRefusal::Expired)
        );

        // ... but a late *completion* with the still-unclaimed generation
        // is honoured: the work was done and pushed.
        broker
            .complete("c", "u", g.generation, "w1")
            .unwrap()
            .unwrap();
        assert_eq!(
            broker
                .renew("c", "u", g.generation, "w1", 100, 1_200)
                .unwrap(),
            Err(LeaseRefusal::NotClaimed)
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn refusals_name_unknown_units_and_wrong_workers() {
        let (root, broker) = temp_broker("refusals");
        broker.seed("c", &units(&["u"])).unwrap();
        assert_eq!(
            broker.renew("c", "nope", 1, "w1", 100, 0).unwrap(),
            Err(LeaseRefusal::UnknownUnit)
        );
        assert_eq!(
            broker.renew("c", "u", 1, "w1", 100, 0).unwrap(),
            Err(LeaseRefusal::NotClaimed)
        );
        let g = grant(broker.claim("c", "w1", 100, 0).unwrap());
        assert_eq!(
            broker
                .renew("c", "u", g.generation, "imposter", 100, 50)
                .unwrap(),
            Err(LeaseRefusal::NotOwner)
        );
        assert_eq!(
            broker.complete("c", "u", g.generation + 7, "w1").unwrap(),
            Err(LeaseRefusal::NotOwner)
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn lease_state_survives_reopening_the_broker() {
        let (root, broker) = temp_broker("durable");
        broker.seed("c", &units(&["u", "v"])).unwrap();
        let g = grant(broker.claim("c", "w1", 1_000, 5_000).unwrap());
        broker
            .complete(
                "c",
                "v",
                grant(broker.claim("c", "w2", 1_000, 5_000).unwrap()).generation,
                "w2",
            )
            .unwrap()
            .unwrap();
        drop(broker);

        // A restarted server sees the identical table.
        let broker = LeaseBroker::open(&root).unwrap();
        let lease = broker.lease("c", "u").unwrap().expect("persisted");
        assert_eq!(lease.state, LeaseState::Claimed);
        assert_eq!(lease.owner, "w1");
        assert_eq!(lease.generation, g.generation);
        assert_eq!(lease.deadline_ms, g.deadline_ms);
        assert_eq!(
            broker.lease("c", "v").unwrap().unwrap().state,
            LeaseState::Completed
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn concurrent_claims_hand_out_distinct_units() {
        let (root, broker) = temp_broker("race");
        let names: Vec<String> = (0..16).map(|i| format!("u{i:02}")).collect();
        broker.seed("c", &names).unwrap();
        let broker = std::sync::Arc::new(broker);
        let mut handles = Vec::new();
        for t in 0..4 {
            let broker = std::sync::Arc::clone(&broker);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let ClaimOutcome::Granted(g) =
                    broker.claim("c", &format!("w{t}"), 60_000, 1).unwrap()
                {
                    mine.push(g.unit);
                }
                mine
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, names, "every unit granted exactly once");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn unsafe_names_are_rejected() {
        let (root, broker) = temp_broker("names");
        assert!(broker.seed("../escape", &units(&["u"])).is_err());
        assert!(broker.seed("c", &units(&["../../etc"])).is_err());
        assert!(broker.claim("..", "w", 1, 0).is_err());
        for bad in ["", ".", "..", "a/b", "a\\b", "---", "a b"] {
            assert!(!name_is_safe(bad), "{bad:?}");
        }
        for good in ["compress", "figure3-quick", "m88ksim", "a.b_c-d"] {
            assert!(name_is_safe(good), "{good:?}");
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_lease_files_degrade_to_available() {
        let (root, broker) = temp_broker("corrupt");
        broker.seed("c", &units(&["u"])).unwrap();
        grant(broker.claim("c", "w1", 60_000, 1_000).unwrap());
        fs::write(
            root.join(LEASES_DIR).join("c").join("u.lease"),
            b"\xff\xfe garbage",
        )
        .unwrap();
        // Unreadable state = available: the unit is simply re-executed.
        let g = grant(broker.claim("c", "w2", 100, 2_000).unwrap());
        assert_eq!(g.unit, "u");
        assert!(!g.reclaimed);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn empty_campaign_waits_rather_than_draining() {
        let (_root, broker) = temp_broker("empty");
        assert_eq!(
            broker.claim("never-seeded", "w", 100, 0).unwrap(),
            ClaimOutcome::Wait { claimed: 0 }
        );
    }
}
