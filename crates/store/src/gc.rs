//! Garbage collection and compaction for multi-gigabyte campaign roots.
//!
//! A store that absorbs every sweep point of every campaign grows without
//! bound; this module bounds it. Eviction is driven by two independent
//! budgets — an **age budget** in GC generations and a **size budget** in
//! bytes — and is always safe to run concurrently with readers:
//!
//! * Every successful load (and every save) stamps the record's `.gen`
//!   sidecar with the store's current generation
//!   ([`ResultStore::generation`]); each GC run bumps the generation, so
//!   a stamp is "how recently was this record useful" in campaign-run
//!   units, not wall-clock units (a store can sit idle for a month
//!   without aging at all).
//! * Eviction is **tombstone-then-unlink**: the record is atomically
//!   renamed to a `.tomb` name first, then both the tombstone and the
//!   `.gen` sidecar are unlinked. A racing reader therefore observes
//!   either the complete record (its `open` won the race — POSIX keeps
//!   the data alive until the descriptor closes) or no file at all, which
//!   is an ordinary miss: it recomputes and heals, exactly the corruption
//!   path. A **torn read is impossible**.
//! * A `dry_run` pass reports what a real pass would do without renaming,
//!   unlinking, or bumping the generation.
//!
//! Leftover `.tomb` files (a GC process killed between rename and
//! unlink), orphaned `.gen` sidecars (their record was evicted while a
//! reader re-stamped it), stale `.tmp-` files (a writer killed
//! between create and rename; "stale" = older than [`STALE_TMP_AGE`],
//! so an in-flight publication — a matter of milliseconds — is never
//! touched), and drained `.wal.compacted` journal segments (a compactor
//! killed between its rename and unlink; every record inside already
//! lives in an ordinary `.bin` file) are swept opportunistically by
//! every pass, including dry runs' accounting.
//!
//! Campaign lease state ([`crate::lease`]) lives under the same root but
//! is **not** the GC's to manage: `.lease` files match none of the
//! walker's classes, so a pass never counts, evicts, or sweeps a live
//! lease — `suite gc` can run mid-campaign. A lease *write* crashed
//! between create and rename leaves ordinary `.tmp-` debris, which the
//! stale-temp sweep reclaims like any other.
//!
//! Group-commit journal segments ([`crate::journal`]) get the same
//! treatment as leases: a live `seg-*.wal` file may hold the only
//! durable copy of an acked-but-uncompacted record, matches none of the
//! walker's classes, and is never counted, evicted, or swept — `suite
//! gc` can run while a journaling server is mid-campaign.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, SystemTime};

use crate::store::ResultStore;

/// A `.tmp-` file this old is a leak from a crashed writer, not an
/// in-flight publication (publications complete in milliseconds).
pub const STALE_TMP_AGE: Duration = Duration::from_secs(10 * 60);

/// What a GC pass is allowed to evict. With both budgets `None` a pass
/// only sweeps tombstone/sidecar debris and reports usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Evict least-recently-stamped records until the store's record
    /// bytes fit this budget.
    pub max_bytes: Option<u64>,
    /// Evict records whose stamp is more than this many generations
    /// behind the post-bump generation (0 = everything not stamped in
    /// the generation being created now, i.e. everything).
    pub max_age: Option<u64>,
    /// Report what would be evicted without deleting anything (the
    /// generation is not bumped either).
    pub dry_run: bool,
}

/// Outcome of one GC pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// The generation the pass ran as (current + 1; persisted unless
    /// `dry_run`).
    pub generation: u64,
    /// Records examined.
    pub scanned_records: u64,
    /// Their total size in bytes.
    pub scanned_bytes: u64,
    /// Records evicted (or that would be, under `dry_run`).
    pub evicted_records: u64,
    /// Bytes reclaimed, counting records, sidecars, and swept debris.
    pub reclaimed_bytes: u64,
    /// Records surviving the pass.
    pub remaining_records: u64,
    /// Their total size in bytes.
    pub remaining_bytes: u64,
    /// Whether this was a report-only pass.
    pub dry_run: bool,
}

/// Size of the store's record files on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskUsage {
    /// Number of `.bin` record files.
    pub records: u64,
    /// Their total size in bytes (sidecars and debris excluded — this is
    /// the number GC size budgets are checked against).
    pub bytes: u64,
}

/// One record file found by the walker.
struct RecordEntry {
    path: PathBuf,
    bytes: u64,
    /// Last-access generation from the `.gen` sidecar (0 when missing or
    /// torn — the record then merely looks maximally old).
    stamp: u64,
}

/// Everything a walk of the store tree finds.
struct Walk {
    records: Vec<RecordEntry>,
    /// Leftover `.tomb` files and orphaned `.gen` sidecars: (path, bytes).
    debris: Vec<(PathBuf, u64)>,
}

impl ResultStore {
    /// Counts the record files under the store root (the figure
    /// `suite --store-stats` reports, and the one GC size budgets bound).
    pub fn disk_usage(&self) -> DiskUsage {
        let walk = self.walk();
        DiskUsage {
            records: walk.records.len() as u64,
            bytes: walk.records.iter().map(|r| r.bytes).sum(),
        }
    }

    /// Runs one GC pass under `policy` (see the module docs for the
    /// eviction and concurrency rules).
    pub fn gc(&self, policy: &GcPolicy) -> GcReport {
        let span = dri_telemetry::Span::begin("gc", "pass");
        let report = self.gc_inner(policy);
        let span = span
            .label("scanned", &report.scanned_records.to_string())
            .label("evicted", &report.evicted_records.to_string())
            .label("reclaimed_bytes", &report.reclaimed_bytes.to_string());
        span.finish(if report.dry_run { "dry-run" } else { "swept" });
        report
    }

    fn gc_inner(&self, policy: &GcPolicy) -> GcReport {
        let generation = self.generation() + 1;
        if !policy.dry_run {
            self.set_generation(generation);
        }

        let mut walk = self.walk();
        // Deterministic eviction order: least-recently-stamped first,
        // path as the tie-break.
        walk.records
            .sort_by(|a, b| a.stamp.cmp(&b.stamp).then_with(|| a.path.cmp(&b.path)));
        let scanned_records = walk.records.len() as u64;
        let scanned_bytes: u64 = walk.records.iter().map(|r| r.bytes).sum();

        let mut report = GcReport {
            generation,
            scanned_records,
            scanned_bytes,
            remaining_records: scanned_records,
            remaining_bytes: scanned_bytes,
            dry_run: policy.dry_run,
            ..GcReport::default()
        };

        // Debris costs nothing to sweep and never races anyone: a .tomb
        // is already dead and an orphaned .gen has no record left.
        for (path, bytes) in &walk.debris {
            if !policy.dry_run {
                let _ = fs::remove_file(path);
            }
            report.reclaimed_bytes += bytes;
        }

        let over_age = |stamp: u64| -> bool {
            policy
                .max_age
                .is_some_and(|max| generation.saturating_sub(stamp) > max)
        };
        for record in &walk.records {
            let over_budget = policy
                .max_bytes
                .is_some_and(|max| report.remaining_bytes > max);
            if !over_age(record.stamp) && !over_budget {
                continue;
            }
            report.evicted_records += 1;
            report.remaining_records -= 1;
            report.remaining_bytes -= record.bytes;
            report.reclaimed_bytes += record.bytes + self.evict(record, policy.dry_run);
        }
        report
    }

    /// Tombstone-then-unlink eviction of one record; returns the sidecar
    /// bytes additionally reclaimed. Under `dry_run`, touches nothing.
    fn evict(&self, record: &RecordEntry, dry_run: bool) -> u64 {
        let sidecar = record.path.with_extension("gen");
        let sidecar_bytes = fs::metadata(&sidecar).map(|m| m.len()).unwrap_or(0);
        if dry_run {
            return sidecar_bytes;
        }
        // Unique tombstone name per (process, eviction): two GC passes
        // racing over the same record must not rename onto each other.
        static TOMB_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TOMB_SEQ.fetch_add(1, Ordering::Relaxed);
        let tomb = record
            .path
            .with_extension(format!("tomb-{}-{}", std::process::id(), seq));
        if fs::rename(&record.path, &tomb).is_ok() {
            let _ = fs::remove_file(&tomb);
        }
        let _ = fs::remove_file(&sidecar);
        sidecar_bytes
    }

    /// Walks `<root>/<kind>/v<schema>/<shard>/` collecting records and
    /// debris. Unreadable directories are skipped: GC is best-effort,
    /// like every other store operation.
    fn walk(&self) -> Walk {
        let mut walk = Walk {
            records: Vec::new(),
            debris: Vec::new(),
        };
        let mut stack = vec![self.root().to_path_buf()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.filter_map(Result::ok) {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                let size = || entry.metadata().map(|m| m.len()).unwrap_or(0);
                if name.ends_with(".bin") {
                    walk.records.push(RecordEntry {
                        stamp: read_stamp(&path.with_extension("gen")),
                        bytes: size(),
                        path,
                    });
                } else if name.contains(".tomb")
                    || (name.ends_with(".gen") && !path.with_extension("bin").exists())
                    || name.ends_with(crate::journal::COMPACTED_SUFFIX)
                    || (name.starts_with(".tmp-")
                        && tmp_is_stale(
                            entry.metadata().ok().and_then(|m| m.modified().ok()),
                            SystemTime::now(),
                        ))
                {
                    // Journal note: a live `seg-*.wal` segment matches
                    // *none* of these classes and is spared — it may hold
                    // the only durable copy of an acked record. Only the
                    // `.wal.compacted` rename left by a compactor crash
                    // (its records already live in ordinary `.bin` files)
                    // is debris.
                    walk.debris.push((path, size()));
                }
            }
        }
        walk
    }
}

/// Whether a `.tmp-` file's age marks it as leaked by a crashed writer.
/// Unreadable or future timestamps are treated as fresh — never delete
/// what cannot be assessed (a racing writer is about to rename it away
/// anyway).
fn tmp_is_stale(modified: Option<SystemTime>, now: SystemTime) -> bool {
    modified.is_some_and(|m| {
        now.duration_since(m)
            .map(|age| age > STALE_TMP_AGE)
            .unwrap_or(false)
    })
}

/// Reads a `.gen` sidecar; 0 on anything unexpected.
fn read_stamp(sidecar: &std::path::Path) -> u64 {
    fs::read(sidecar)
        .ok()
        .and_then(|bytes| <[u8; 8]>::try_from(bytes.as_slice()).ok())
        .map(u64::from_le_bytes)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("dri-store-gc-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("temp store")
    }

    fn fill(store: &ResultStore, n: u128) {
        for key in 0..n {
            store.save("dri", 1, key, &[0xab; 100]);
        }
    }

    #[test]
    fn unbounded_pass_only_reports() {
        let store = temp_store("report");
        fill(&store, 5);
        let usage = store.disk_usage();
        assert_eq!(usage.records, 5);
        let report = store.gc(&GcPolicy::default());
        assert_eq!(report.scanned_records, 5);
        assert_eq!(report.evicted_records, 0);
        assert_eq!(report.remaining_bytes, usage.bytes);
        assert_eq!(store.disk_usage().records, 5);
        assert_eq!(report.generation, 1, "each pass is a new generation");
        assert_eq!(store.gc(&GcPolicy::default()).generation, 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn size_budget_evicts_cold_records_first() {
        let store = temp_store("size-budget");
        fill(&store, 4);
        // Age the store one generation, then touch two records: they are
        // now warmer than the untouched pair.
        store.gc(&GcPolicy::default());
        assert!(store.load("dri", 1, 2).is_some());
        assert!(store.load("dri", 1, 3).is_some());
        let per_record = store.disk_usage().bytes / 4;
        let report = store.gc(&GcPolicy {
            max_bytes: Some(per_record * 2),
            ..GcPolicy::default()
        });
        assert_eq!(report.evicted_records, 2);
        assert!(report.reclaimed_bytes >= per_record * 2);
        assert!(report.remaining_bytes <= per_record * 2);
        // The warm pair survived; the cold pair is an ordinary miss now.
        assert!(store.load("dri", 1, 2).is_some());
        assert!(store.load("dri", 1, 3).is_some());
        assert_eq!(store.load("dri", 1, 0), None);
        assert_eq!(store.load("dri", 1, 1), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn age_budget_evicts_only_stale_generations() {
        let store = temp_store("age-budget");
        fill(&store, 2);
        // Three campaign runs pass; only record 0 stays in use.
        for _ in 0..3 {
            store.gc(&GcPolicy::default());
            assert!(store.load("dri", 1, 0).is_some());
        }
        let report = store.gc(&GcPolicy {
            max_age: Some(2),
            ..GcPolicy::default()
        });
        assert_eq!(report.evicted_records, 1);
        assert!(store.load("dri", 1, 0).is_some());
        assert_eq!(store.load("dri", 1, 1), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn dry_run_deletes_nothing_and_keeps_the_generation() {
        let store = temp_store("dry-run");
        fill(&store, 3);
        let report = store.gc(&GcPolicy {
            max_bytes: Some(0),
            dry_run: true,
            ..GcPolicy::default()
        });
        assert!(report.dry_run);
        assert_eq!(report.evicted_records, 3);
        assert!(report.reclaimed_bytes > 0);
        assert_eq!(store.disk_usage().records, 3, "nothing actually deleted");
        assert_eq!(store.generation(), 0, "dry run must not age the store");
        for key in 0..3 {
            assert!(store.load("dri", 1, key).is_some());
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_tmp_files_are_swept_and_fresh_ones_spared() {
        let store = temp_store("tmp-leak");
        fill(&store, 1);
        let shard = store
            .entry_path("dri", 1, 0)
            .parent()
            .unwrap()
            .to_path_buf();
        let fresh = shard.join(".tmp-1-0-00");
        let leaked = shard.join(".tmp-2-0-01");
        fs::write(&fresh, b"in flight").unwrap();
        fs::write(&leaked, b"crashed writer").unwrap();
        // Age the leaked temp past the staleness threshold.
        fs::File::options()
            .write(true)
            .open(&leaked)
            .unwrap()
            .set_modified(SystemTime::now() - STALE_TMP_AGE - Duration::from_secs(60))
            .unwrap();
        let report = store.gc(&GcPolicy::default());
        assert!(report.reclaimed_bytes >= 14, "leaked temp counted");
        assert!(!leaked.exists(), "stale temp swept");
        assert!(fresh.exists(), "in-flight temp untouched");
        assert!(store.load("dri", 1, 0).is_some());

        // The pure classifier, over synthetic clocks.
        let now = SystemTime::now();
        assert!(!tmp_is_stale(None, now), "unreadable metadata is spared");
        assert!(!tmp_is_stale(Some(now + Duration::from_secs(60)), now));
        assert!(!tmp_is_stale(Some(now - STALE_TMP_AGE / 2), now));
        assert!(tmp_is_stale(
            Some(now - STALE_TMP_AGE - Duration::from_secs(1)),
            now
        ));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_spares_live_lease_state_and_sweeps_lease_debris() {
        use crate::lease::{ClaimOutcome, LeaseBroker, LeaseState};

        let store = temp_store("lease-coexist");
        fill(&store, 3);
        let broker = LeaseBroker::open(store.root()).unwrap();
        broker
            .seed("figure3-quick", &["compress".to_owned(), "gcc".to_owned()])
            .unwrap();
        let ClaimOutcome::Granted(grant) =
            broker.claim("figure3-quick", "w1", 60_000, 1_000).unwrap()
        else {
            panic!("expected a grant");
        };
        // A lease writer crashed mid-publication, long enough ago to be
        // classified as a leak.
        let campaign_dir = store.root().join("leases").join("figure3-quick");
        let leaked = campaign_dir.join(".tmp-9-9-compress");
        fs::write(&leaked, b"crashed lease write").unwrap();
        fs::File::options()
            .write(true)
            .open(&leaked)
            .unwrap()
            .set_modified(SystemTime::now() - STALE_TMP_AGE - Duration::from_secs(60))
            .unwrap();

        // The most aggressive possible pass: evict every record.
        let report = store.gc(&GcPolicy {
            max_bytes: Some(0),
            ..GcPolicy::default()
        });
        assert_eq!(report.evicted_records, 3, "records all evicted");
        assert!(!leaked.exists(), "orphaned lease temp swept");
        // Live lease state is untouched mid-campaign: the claim is still
        // held and the unclaimed unit is still available.
        let lease = broker.lease("figure3-quick", grant.unit.as_str()).unwrap();
        let lease = lease.expect("claimed lease survived gc");
        assert_eq!(lease.state, LeaseState::Claimed);
        assert_eq!(lease.generation, grant.generation);
        assert_eq!(
            broker
                .lease(
                    "figure3-quick",
                    if grant.unit == "compress" {
                        "gcc"
                    } else {
                        "compress"
                    }
                )
                .unwrap()
                .expect("available lease survived gc")
                .state,
            LeaseState::Available
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_spares_live_journal_segments_and_sweeps_compacted_ones() {
        use crate::journal::{Journal, JournalEntry, JournalOptions};

        let store = temp_store("journal-coexist");
        fill(&store, 2);
        let journal = Journal::open(store.root(), JournalOptions::default()).unwrap();
        journal
            .append_batch(vec![JournalEntry {
                kind: "dri".to_owned(),
                schema: 1,
                key: 0xacc,
                payload: b"acked, not yet compacted".to_vec(),
            }])
            .unwrap();
        // A compactor crashed between its rename and unlink.
        let leftover = store
            .root()
            .join(crate::journal::JOURNAL_DIR)
            .join("seg-00000000000000aa.wal.compacted");
        fs::write(&leftover, b"already drained into .bin files").unwrap();

        // The most aggressive possible pass: evict every record.
        let report = store.gc(&GcPolicy {
            max_bytes: Some(0),
            ..GcPolicy::default()
        });
        assert_eq!(report.evicted_records, 2, "records all evicted");
        assert!(!leftover.exists(), "compacted segment debris swept");
        // The unsealed segment — the only durable copy of the acked
        // record — is untouched: a reopen still recovers the batch.
        drop(journal);
        let reopened = Journal::open(store.root(), JournalOptions::default()).unwrap();
        assert_eq!(
            reopened.lookup("dri", 1, 0xacc).as_deref().map(|p| &p[..]),
            Some(&b"acked, not yet compacted"[..]),
            "gc never disturbs a live journal segment"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn debris_is_swept() {
        let store = temp_store("debris");
        fill(&store, 1);
        let record = store.entry_path("dri", 1, 0);
        // A crashed GC left a tombstone; an evicted record left a sidecar.
        fs::write(record.with_extension("tomb-99-0"), b"dead").unwrap();
        // Key 77 shares key 0's shard directory, so the path exists.
        fs::write(
            store.entry_path("dri", 1, 77).with_extension("gen"),
            0u64.to_le_bytes(),
        )
        .unwrap();
        let report = store.gc(&GcPolicy::default());
        assert_eq!(report.evicted_records, 0);
        assert!(report.reclaimed_bytes >= 4 + 8, "tomb + orphan sidecar");
        assert!(store.load("dri", 1, 0).is_some(), "live record untouched");
        let _ = fs::remove_dir_all(store.root());
    }
}
