//! Dependency-free record compression: zigzag varint deltas over the
//! little-endian `u64` words of a payload.
//!
//! Simulation records are overwhelmingly fixed-width counter structs
//! (see `dri-experiments`' `persist` module): long runs of small
//! integers and floats whose neighbouring words differ by little. The
//! codec here exploits exactly that shape, the same regularity that
//! compression-based cache designs exploit in silicon, with nothing but
//! `std`:
//!
//! 1. the payload is split into little-endian `u64` words plus a raw
//!    tail of `len % 8` bytes;
//! 2. each word is replaced by its delta from the previous word (the
//!    first word deltas against zero);
//! 3. deltas are zigzag-mapped (so small negative deltas stay small)
//!    and written as LEB128 varints;
//! 4. the output is `[original_len varint][delta varints][raw tail]`.
//!
//! Decoding derives the word and tail counts from the leading length,
//! so the format needs no framing of its own. The codec is used in
//! three places, always *inside* an integrity boundary that was
//! computed over the compressed bytes (journal frame checksums, the
//! `DRIZ` at-rest record checksum, request auth tags), so a corrupted
//! stream is caught before [`decompress`] ever runs — but decoding is
//! still defensive and returns `None` rather than panicking or
//! over-allocating on malformed input.
//!
//! Worst case (high-entropy words) a varint delta costs 10 bytes per
//! 8-byte word; every caller keeps the raw form when compression does
//! not pay, so the codec never inflates data at rest or on the wire.

/// The encoding name negotiated on the wire via the `X-DRI-Encoding` /
/// `X-DRI-Accept-Encoding` headers. Old clients never send either
/// header and keep speaking raw records.
pub const WIRE_ENCODING: &str = "delta64";

/// Append `value` as an LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint starting at `*at`, advancing `*at` past it.
fn take_varint(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*at)?;
        *at += 1;
        if shift == 63 && byte > 1 {
            return None; // overflows u64
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Map a signed delta onto the unsigned varint space so that small
/// magnitudes of either sign encode in few bytes.
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

/// The inverse of [`zigzag`].
fn unzigzag(encoded: u64) -> i64 {
    ((encoded >> 1) as i64) ^ -((encoded & 1) as i64)
}

/// Compress `payload` with the delta-varint codec. Always succeeds; the
/// output may be larger than the input for high-entropy payloads, so
/// callers compare lengths and keep the raw form when that happens.
pub fn compress(payload: &[u8]) -> Vec<u8> {
    let words = payload.len() / 8;
    let mut out = Vec::with_capacity(payload.len() / 2 + 16);
    put_varint(&mut out, payload.len() as u64);
    let mut previous = 0u64;
    for word in 0..words {
        let raw = u64::from_le_bytes(payload[word * 8..word * 8 + 8].try_into().expect("8 bytes"));
        put_varint(&mut out, zigzag(raw.wrapping_sub(previous) as i64));
        previous = raw;
    }
    out.extend_from_slice(&payload[words * 8..]);
    out
}

/// Decompress a [`compress`] stream. Returns `None` when the stream is
/// malformed, truncated, carries trailing garbage, or declares an
/// original length above `max_len` (the allocation guard — pass the
/// same bound the surrounding frame enforces on raw payloads).
pub fn decompress(bytes: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let mut at = 0usize;
    let len = take_varint(bytes, &mut at)?;
    if len > max_len as u64 {
        return None;
    }
    let len = len as usize;
    let words = len / 8;
    let tail = len % 8;
    let mut out = Vec::with_capacity(len);
    let mut previous = 0u64;
    for _ in 0..words {
        let delta = unzigzag(take_varint(bytes, &mut at)?);
        previous = previous.wrapping_add(delta as u64);
        out.extend_from_slice(&previous.to_le_bytes());
    }
    if bytes.len() - at != tail {
        return None;
    }
    out.extend_from_slice(&bytes[at..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8]) {
        let packed = compress(payload);
        assert_eq!(
            decompress(&packed, payload.len()).as_deref(),
            Some(payload),
            "roundtrip of {} bytes",
            payload.len()
        );
    }

    #[test]
    fn roundtrips_representative_shapes() {
        roundtrip(b"");
        roundtrip(b"short");
        roundtrip(&[0u8; 64]);
        // A counter-struct shape: slowly growing u64s.
        let mut counters = Vec::new();
        for i in 0u64..64 {
            counters.extend_from_slice(&(1_000_000 + i * 37).to_le_bytes());
        }
        counters.extend_from_slice(&[0xab, 0xcd, 0xef]); // ragged tail
        roundtrip(&counters);
        // High-entropy words still roundtrip (even if they inflate).
        let noisy: Vec<u8> = (0..333u64)
            .map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15) >> 3) as u8)
            .collect();
        roundtrip(&noisy);
    }

    #[test]
    fn counter_structs_shrink() {
        let mut counters = Vec::new();
        for i in 0u64..512 {
            counters.extend_from_slice(&(40_000 + i * 3).to_le_bytes());
        }
        let packed = compress(&counters);
        assert!(
            packed.len() * 3 < counters.len(),
            "regular counters compress at least 3x: {} -> {}",
            counters.len(),
            packed.len()
        );
    }

    #[test]
    fn malformed_streams_are_rejected_not_trusted() {
        // Truncated varint.
        assert_eq!(decompress(&[0x80], 1024), None);
        // Declared length above the caller's bound.
        let big = compress(&[7u8; 128]);
        assert_eq!(decompress(&big, 64), None);
        // Trailing garbage after the declared payload.
        let mut padded = compress(b"exact");
        padded.push(0);
        assert_eq!(decompress(&padded, 1024), None);
        // Missing delta words.
        let mut short = compress(&[9u8; 64]);
        short.truncate(short.len() - 1);
        assert_eq!(decompress(&short, 1024), None);
        // A 64-bit-overflow varint.
        assert_eq!(decompress(&[0xff; 11], usize::MAX), None);
    }

    #[test]
    fn wire_name_is_stable() {
        // The header value is a published protocol constant.
        assert_eq!(WIRE_ENCODING, "delta64");
    }
}
