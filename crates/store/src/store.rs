//! The on-disk store proper: sharded record files with validated headers,
//! atomic publication, and best-effort semantics (I/O failures degrade to
//! cache misses, never to errors the simulation pipeline must handle).

use std::borrow::Cow;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dri_telemetry::{Histogram, Registry};

use crate::compress;
use crate::hash::fnv64;

/// First bytes of every record file.
const MAGIC: [u8; 4] = *b"DRIS";
/// magic + schema(u32) + key(u128) + payload length(u64).
const HEADER_LEN: usize = 4 + 4 + 16 + 8;
/// FNV-1a 64 over header + payload, appended after the payload.
const CHECKSUM_LEN: usize = 8;

/// First bytes of a *compressed* record file (the `DRIZ` variant).
/// Schema, key, and original payload length sit at the same offsets as
/// in a raw `DRIS` record, so every header-tamper test and forensic
/// tool reads both shapes identically.
const MAGIC_Z: [u8; 4] = *b"DRIZ";
/// `DRIZ` header: the `DRIS` header plus a compressed-length `u64`.
const HEADER_LEN_Z: usize = HEADER_LEN + 8;

/// Environment variable that opts record files into at-rest compression
/// (`DRIZ` records). Off by default: raw `DRIS` bytes on disk equal the
/// wire frame exactly, which existing stores and tests rely on. Loads
/// accept both shapes regardless of the flag, so flipping it (either
/// way) on a populated store is always safe.
pub const STORE_COMPRESS_ENV: &str = "DRI_STORE_COMPRESS";

/// Environment variable naming the store root. Unset (or empty) disables
/// the disk tier entirely, which keeps tests hermetic by default.
pub const STORE_ENV: &str = "DRI_STORE";

/// File at the store root holding the current GC generation (ASCII u64).
pub(crate) const GENERATION_FILE: &str = "generation";

/// Validates one raw record (as read from disk or received over the
/// wire) against the expected `schema` and `key`, returning the payload
/// slice on success.
///
/// This is the exact check [`ResultStore::load`] applies: magic, schema,
/// embedded key, declared payload length, and the trailing FNV-1a 64
/// checksum all have to match. It is exposed so a *remote* reader (the
/// `dri-serve` client) can apply the same end-to-end validation to bytes
/// that crossed a network instead of a filesystem.
pub fn validate_record(bytes: &[u8], schema: u32, key: u128) -> Option<&[u8]> {
    let body = bytes.len().checked_sub(CHECKSUM_LEN)?;
    let payload_len = body.checked_sub(HEADER_LEN)?;
    if bytes[0..4] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(bytes[4..8].try_into().ok()?) != schema {
        return None;
    }
    if u128::from_le_bytes(bytes[8..24].try_into().ok()?) != key {
        return None;
    }
    if u64::from_le_bytes(bytes[24..32].try_into().ok()?) != payload_len as u64 {
        return None;
    }
    let declared = u64::from_le_bytes(bytes[body..].try_into().ok()?);
    if fnv64(&bytes[..body]) != declared {
        return None;
    }
    Some(&bytes[HEADER_LEN..body])
}

/// Builds the complete on-disk/wire record for `(schema, key, payload)`:
/// magic, schema, key, payload length, payload, trailing FNV-1a 64
/// checksum — exactly the bytes [`ResultStore::save`] persists and
/// [`validate_record`] accepts.
///
/// Exposed so a *pushing* client (the `dri-serve` write path) can frame a
/// locally computed payload into the same self-validating record the
/// serving host would have written itself; the receiver re-validates
/// before a byte lands on its disk.
///
/// ```
/// use dri_store::{frame_record, validate_record};
///
/// let record = frame_record(1, 0xabcd, b"counters");
/// assert_eq!(validate_record(&record, 1, 0xabcd), Some(&b"counters"[..]));
/// assert_eq!(validate_record(&record, 2, 0xabcd), None, "wrong schema");
/// ```
pub fn frame_record(schema: u32, key: u128, payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    record.extend_from_slice(&MAGIC);
    record.extend_from_slice(&schema.to_le_bytes());
    record.extend_from_slice(&key.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    record.extend_from_slice(payload);
    let checksum = fnv64(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Builds the compressed (`DRIZ`) on-disk record for
/// `(schema, key, payload)`: the [`frame_record`] header plus a
/// compressed-length field, the [`compress`] stream of the payload, and
/// the trailing FNV-1a 64 checksum over everything before it. The
/// checksum covers the *compressed* bytes, so corruption is caught
/// before the decoder runs.
pub fn frame_record_compressed(schema: u32, key: u128, payload: &[u8]) -> Vec<u8> {
    let packed = compress::compress(payload);
    let mut record = Vec::with_capacity(HEADER_LEN_Z + packed.len() + CHECKSUM_LEN);
    record.extend_from_slice(&MAGIC_Z);
    record.extend_from_slice(&schema.to_le_bytes());
    record.extend_from_slice(&key.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    record.extend_from_slice(&(packed.len() as u64).to_le_bytes());
    record.extend_from_slice(&packed);
    let checksum = fnv64(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Validates one raw `DRIZ` record and returns the *decompressed*
/// payload. The same five checks as [`validate_record`] plus the
/// compressed-length field and a post-decode length cross-check.
fn validate_compressed_record(bytes: &[u8], schema: u32, key: u128) -> Option<Vec<u8>> {
    let body = bytes.len().checked_sub(CHECKSUM_LEN)?;
    let packed_len = body.checked_sub(HEADER_LEN_Z)?;
    if bytes[0..4] != MAGIC_Z {
        return None;
    }
    if u32::from_le_bytes(bytes[4..8].try_into().ok()?) != schema {
        return None;
    }
    if u128::from_le_bytes(bytes[8..24].try_into().ok()?) != key {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
    if u64::from_le_bytes(bytes[32..40].try_into().ok()?) != packed_len as u64 {
        return None;
    }
    let declared = u64::from_le_bytes(bytes[body..].try_into().ok()?);
    if fnv64(&bytes[..body]) != declared {
        return None;
    }
    let payload = compress::decompress(&bytes[HEADER_LEN_Z..body], payload_len as usize)?;
    (payload.len() as u64 == payload_len).then_some(payload)
}

/// Validates a record of *either* shape — raw `DRIS` or compressed
/// `DRIZ` — returning the payload: borrowed straight out of a raw
/// record, owned (decompressed) out of a compressed one.
pub fn decode_record(bytes: &[u8], schema: u32, key: u128) -> Option<Cow<'_, [u8]>> {
    if bytes.get(0..4) == Some(&MAGIC_Z) {
        return validate_compressed_record(bytes, schema, key).map(Cow::Owned);
    }
    validate_record(bytes, schema, key).map(Cow::Borrowed)
}

/// Monotonic counters describing one store's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records loaded and validated successfully.
    pub hits: u64,
    /// Lookups that found no file.
    pub misses: u64,
    /// Lookups that found a file but rejected it (bad magic, wrong
    /// schema, key mismatch, truncation, or checksum failure).
    pub corrupt: u64,
    /// Records written (published via rename).
    pub writes: u64,
    /// Writes abandoned due to I/O errors (disk full, permissions, …).
    pub write_errors: u64,
    /// Payload bytes returned by successful loads.
    pub bytes_read: u64,
    /// Total file bytes written by successful saves.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A content-addressed store rooted at one directory (see the crate docs
/// for the layout and durability rules).
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    stats: AtomicStats,
    /// GC generation read from `<root>/generation` at open (0 when the
    /// file is missing). Access stamps use this value; a GC running in
    /// another process may bump the file without this handle noticing,
    /// which only makes this handle's stamps look slightly older —
    /// stamps are advisory eviction hints, never correctness inputs.
    generation: AtomicU64,
    /// Disk-tier load latency (read + validate + decode), process-wide:
    /// every handle shares the global-registry histogram, so a server's
    /// `/metrics` scrape sees its store's disk behaviour.
    load_latency: Histogram,
    /// Disk-tier save latency (frame + temp write + fsync + rename).
    save_latency: Histogram,
    /// When set, saves prefer the compressed `DRIZ` record shape (and
    /// fall back to raw `DRIS` whenever compression does not shrink the
    /// file). Loads accept both shapes unconditionally.
    compress_at_rest: AtomicBool,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let generation = read_generation(&root);
        let registry = Registry::global();
        Ok(ResultStore {
            root,
            stats: AtomicStats::default(),
            generation: AtomicU64::new(generation),
            load_latency: registry.histogram(
                "dri_store_load_ns",
                "disk-tier record load latency (read + validate + decode)",
            ),
            save_latency: registry.histogram(
                "dri_store_save_ns",
                "disk-tier record save latency (frame + write + fsync + rename)",
            ),
            compress_at_rest: AtomicBool::new(
                std::env::var(STORE_COMPRESS_ENV).is_ok_and(|v| !v.is_empty() && v != "0"),
            ),
        })
    }

    /// Overrides the [`STORE_COMPRESS_ENV`] at-rest compression choice
    /// for this handle (tests flip it per-store instead of racing on
    /// process-wide environment variables).
    pub fn set_compress_at_rest(&self, on: bool) {
        self.compress_at_rest.store(on, Ordering::Relaxed);
    }

    /// Opens the store named by the `DRI_STORE` environment variable, or
    /// `None` when the variable is unset/empty or the root is unusable
    /// (an unusable root warns once rather than failing the run — the
    /// store is an accelerator, not a dependency).
    pub fn from_env() -> Option<Self> {
        let root = std::env::var_os(STORE_ENV)?;
        if root.is_empty() {
            return None;
        }
        match Self::open(PathBuf::from(&root)) {
            Ok(store) => Some(store),
            Err(err) => {
                eprintln!(
                    "warning: {STORE_ENV}={} is not usable as a result store ({err}); \
                     continuing without the disk cache",
                    root.to_string_lossy()
                );
                None
            }
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The GC generation this handle stamps accesses with (the value of
    /// `<root>/generation` when the store was opened, later bumped by
    /// [`ResultStore::gc`] runs through this same handle).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Persists `generation` to `<root>/generation` (best-effort) and
    /// adopts it for subsequent access stamps.
    pub(crate) fn set_generation(&self, generation: u64) {
        self.generation.store(generation, Ordering::Relaxed);
        let _ = fs::write(self.root.join(GENERATION_FILE), generation.to_string());
    }

    /// Best-effort last-access stamp: writes the current generation into
    /// the record's `.gen` sidecar (skipped when already current, so warm
    /// traffic within one generation costs a single 8-byte read). A torn
    /// or missing sidecar only makes the record *look* old to GC — the
    /// worst outcome is an early eviction and a recompute.
    fn stamp(&self, record_path: &Path) {
        let generation = self.generation();
        let sidecar = record_path.with_extension("gen");
        if let Ok(bytes) = fs::read(&sidecar) {
            if let Ok(current) = <[u8; 8]>::try_from(bytes.as_slice()) {
                if u64::from_le_bytes(current) == generation {
                    return;
                }
            }
        }
        let _ = fs::write(&sidecar, generation.to_le_bytes());
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            write_errors: self.stats.write_errors.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The file a record lives at: `<root>/<kind>/v<schema>/<hh>/<key>.bin`.
    pub fn entry_path(&self, kind: &str, schema: u32, key: u128) -> PathBuf {
        let shard = (key >> 120) as u8;
        self.root
            .join(kind)
            .join(format!("v{schema}"))
            .join(format!("{shard:02x}"))
            .join(format!("{key:032x}.bin"))
    }

    /// Loads and validates the payload stored for `(kind, schema, key)`.
    ///
    /// Returns `None` — counting a miss or a corruption, never erroring —
    /// unless the file exists, carries the expected magic/schema/key,
    /// declares exactly the payload length present, and checksums clean.
    pub fn load(&self, kind: &str, schema: u32, key: u128) -> Option<Vec<u8>> {
        self.load_decoded(kind, schema, key, |payload| Some(payload.to_vec()))
    }

    /// [`Self::load`] with the caller's payload decoder inside the
    /// accounting boundary: a record is a `hit` only if the *decoded*
    /// value is served. A payload that passes the file-level checks but
    /// fails `decode` (a layout change shipped without a schema bump)
    /// counts as `corrupt` — never as a hit — so `--store-stats` cannot
    /// report a store as warm while every point re-simulates.
    pub fn load_decoded<T>(
        &self,
        kind: &str,
        schema: u32,
        key: u128,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let started = std::time::Instant::now();
        let path = self.entry_path(kind, schema, key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_record(&bytes, schema, key).and_then(|payload| {
            let len = payload.len() as u64;
            decode(&payload).map(|value| (value, len))
        }) {
            Some((value, payload_len)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(payload_len, Ordering::Relaxed);
                self.stamp(&path);
                self.load_latency.record_duration(started.elapsed());
                Some(value)
            }
            None => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Loads the **raw record bytes** (header + payload + checksum) for
    /// `(kind, schema, key)`, validating them exactly like [`Self::load`]
    /// and with the same accounting. This is the serving path of the
    /// `dri-serve` result service: the full record travels over the wire
    /// so the remote reader can re-run [`validate_record`] end-to-end.
    pub fn load_record_bytes(&self, kind: &str, schema: u32, key: u128) -> Option<Vec<u8>> {
        let started = std::time::Instant::now();
        let path = self.entry_path(kind, schema, key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_record(&bytes, schema, key) {
            Some(payload) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                self.stamp(&path);
                self.load_latency.record_duration(started.elapsed());
                // The wire speaks raw `DRIS` records regardless of the
                // at-rest shape: a compressed file is re-framed so the
                // remote reader's end-to-end validation never changes.
                Some(match payload {
                    Cow::Borrowed(_) => bytes,
                    Cow::Owned(payload) => frame_record(schema, key, &payload),
                })
            }
            None => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes `payload` for `(kind, schema, key)`, atomically replacing
    /// any existing record. Failures are absorbed into `write_errors`:
    /// the store is best-effort and a failed save only costs a future
    /// recompute.
    pub fn save(&self, kind: &str, schema: u32, key: u128, payload: &[u8]) {
        let started = std::time::Instant::now();
        match self.try_save(kind, schema, key, payload) {
            Ok(total) => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_written.fetch_add(total, Ordering::Relaxed);
                self.save_latency.record_duration(started.elapsed());
            }
            Err(_) => {
                self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn try_save(
        &self,
        kind: &str,
        schema: u32,
        key: u128,
        payload: &[u8],
    ) -> io::Result<u64> {
        let path = self.entry_path(kind, schema, key);
        let dir = path.parent().expect("entry path has a shard directory");
        fs::create_dir_all(dir)?;

        let mut record = frame_record(schema, key, payload);
        if self.compress_at_rest.load(Ordering::Relaxed) {
            let packed = frame_record_compressed(schema, key, payload);
            // Keep whichever shape is smaller: compression must never
            // inflate a record at rest.
            if packed.len() < record.len() {
                record = packed;
            }
        }

        // Unique temp name per (process, write): concurrent writers never
        // share a temp file, and the final rename is atomic on POSIX.
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".tmp-{}-{}-{:032x}", std::process::id(), seq, key));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&record)?;
            file.sync_data()?;
            fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        } else {
            // A fresh record starts life stamped with the current
            // generation, so an age-budget GC never evicts what a running
            // campaign just computed.
            self.stamp(&path);
        }
        result.map(|()| record.len() as u64)
    }
}

/// Reads `<root>/generation`, defaulting to 0 on a missing or mangled
/// file (a mangled counter restarts aging from scratch — safe, since
/// stamps only ever influence eviction order).
fn read_generation(root: &Path) -> u64 {
    fs::read_to_string(root.join(GENERATION_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!(
            "dri-store-test-{tag}-{}-{:p}",
            std::process::id(),
            &MAGIC
        ));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("temp store")
    }

    #[test]
    fn roundtrip_hits_and_counts() {
        let store = temp_store("roundtrip");
        let key = 0xfeed_face_u128;
        assert_eq!(store.load("baseline", 1, key), None);
        assert_eq!(store.stats().misses, 1);
        store.save("baseline", 1, key, b"payload bytes");
        assert_eq!(
            store.load("baseline", 1, key).as_deref(),
            Some(b"payload bytes".as_slice())
        );
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.bytes_read, 13);
        assert!(stats.bytes_written > 13, "header + checksum overhead");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn kinds_schemas_and_keys_are_disjoint() {
        let store = temp_store("disjoint");
        store.save("baseline", 1, 1, b"a");
        assert_eq!(store.load("dri", 1, 1), None, "other kind");
        assert_eq!(store.load("baseline", 2, 1), None, "other schema");
        assert_eq!(store.load("baseline", 1, 2), None, "other key");
        assert_eq!(store.load("baseline", 1, 1).as_deref(), Some(&b"a"[..]));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_record_is_corrupt_not_a_hit() {
        let store = temp_store("truncate");
        let key = 7u128;
        store.save("dri", 1, key, b"0123456789");
        let path = store.entry_path("dri", 1, key);
        let full = fs::read(&path).expect("written record");
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN + 3, full.len() - 1] {
            fs::write(&path, &full[..cut]).expect("truncate");
            assert_eq!(store.load("dri", 1, key), None, "cut at {cut}");
        }
        assert_eq!(store.stats().corrupt, 5);
        assert_eq!(store.stats().hits, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn bitflips_anywhere_are_rejected() {
        let store = temp_store("bitflip");
        let key = 0xabcd_u128;
        store.save("dri", 3, key, b"counter payload");
        let path = store.entry_path("dri", 3, key);
        let full = fs::read(&path).expect("written record");
        for pos in 0..full.len() {
            let mut bad = full.clone();
            bad[pos] ^= 0x40;
            fs::write(&path, &bad).expect("tamper");
            assert_eq!(store.load("dri", 3, key), None, "flip at byte {pos}");
        }
        // Restoring the original bytes restores the hit.
        fs::write(&path, &full).expect("restore");
        assert!(store.load("dri", 3, key).is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn caller_decode_failure_is_corrupt_not_a_hit() {
        let store = temp_store("decode-reject");
        store.save("dri", 1, 5, b"well-formed but wrong layout");
        let decoded: Option<()> =
            store.load_decoded("dri", 1, 5, |payload| (payload.len() == 3).then_some(()));
        assert_eq!(decoded, None);
        let stats = store.stats();
        assert_eq!(stats.hits, 0, "a rejected payload is not a served hit");
        assert_eq!(stats.bytes_read, 0);
        assert_eq!(stats.corrupt, 1);
        // The same record decodes fine for a compatible reader.
        assert!(store.load("dri", 1, 5).is_some());
        assert_eq!(store.stats().hits, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let store = temp_store("overwrite");
        store.save("baseline", 1, 9, b"old");
        store.save("baseline", 1, 9, b"new");
        assert_eq!(store.load("baseline", 1, 9).as_deref(), Some(&b"new"[..]));
        // No temp files left behind.
        let shard = store
            .entry_path("baseline", 1, 9)
            .parent()
            .expect("shard dir")
            .to_path_buf();
        let leftovers: Vec<_> = fs::read_dir(shard)
            .expect("shard dir listing")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_writers_leave_a_valid_record() {
        let store = temp_store("concurrent");
        let key = 0x1234_5678_u128;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.save("dri", 1, key, b"deterministic identical payload");
                    }
                });
            }
        });
        assert_eq!(
            store.load("dri", 1, key).as_deref(),
            Some(b"deterministic identical payload".as_slice())
        );
        assert_eq!(store.stats().write_errors, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn raw_record_bytes_roundtrip_and_validate() {
        let store = temp_store("raw-bytes");
        let key = 0xc0ffee_u128;
        assert_eq!(store.load_record_bytes("dri", 2, key), None);
        assert_eq!(store.stats().misses, 1);
        store.save("dri", 2, key, b"wire payload");
        let raw = store.load_record_bytes("dri", 2, key).expect("raw record");
        assert_eq!(raw, fs::read(store.entry_path("dri", 2, key)).unwrap());
        assert_eq!(
            raw,
            frame_record(2, key, b"wire payload"),
            "a client-framed record is byte-identical to what save() persists"
        );
        // The exported validator accepts the exact on-disk bytes and
        // rejects any other (schema, key) claim about them.
        assert_eq!(validate_record(&raw, 2, key), Some(&b"wire payload"[..]));
        assert_eq!(validate_record(&raw, 3, key), None);
        assert_eq!(validate_record(&raw, 2, key + 1), None);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.bytes_read, 12, "payload bytes, not file bytes");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn accesses_are_generation_stamped() {
        let store = temp_store("stamps");
        assert_eq!(store.generation(), 0);
        store.save("dri", 1, 11, b"x");
        let sidecar = store.entry_path("dri", 1, 11).with_extension("gen");
        assert_eq!(fs::read(&sidecar).unwrap(), 0u64.to_le_bytes());
        store.set_generation(5);
        assert!(store.load("dri", 1, 11).is_some());
        assert_eq!(fs::read(&sidecar).unwrap(), 5u64.to_le_bytes());
        // A re-opened handle adopts the persisted generation.
        let reopened = ResultStore::open(store.root()).expect("reopen");
        assert_eq!(reopened.generation(), 5);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn compressed_records_roundtrip_and_reframe_for_the_wire() {
        let store = temp_store("compressed");
        store.set_compress_at_rest(true);
        let key = 0xbeef_u128;
        // A counter-struct payload that compresses well.
        let mut payload = Vec::new();
        for i in 0u64..128 {
            payload.extend_from_slice(&(9_000 + i * 5).to_le_bytes());
        }
        store.save("dri", 1, key, &payload);
        let on_disk = fs::read(store.entry_path("dri", 1, key)).unwrap();
        assert_eq!(&on_disk[0..4], b"DRIZ", "the DRIZ shape landed");
        assert!(
            on_disk.len() < frame_record(1, key, &payload).len(),
            "compression shrank the file or save() would have kept DRIS"
        );
        // Schema and key live at the DRIS offsets in both shapes.
        assert_eq!(u32::from_le_bytes(on_disk[4..8].try_into().unwrap()), 1);
        assert_eq!(u128::from_le_bytes(on_disk[8..24].try_into().unwrap()), key);
        assert_eq!(store.load("dri", 1, key).as_deref(), Some(&payload[..]));
        // The wire shape is re-framed to a raw DRIS record.
        let wire = store.load_record_bytes("dri", 1, key).expect("wire record");
        assert_eq!(validate_record(&wire, 1, key), Some(&payload[..]));
        // Tampering anywhere in the compressed file is caught, not decoded.
        for at in [0, 5, 17, HEADER_LEN_Z + 1, on_disk.len() - 1] {
            let mut bent = on_disk.clone();
            bent[at] ^= 0x10;
            assert_eq!(decode_record(&bent, 1, key), None, "flip at {at}");
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn incompressible_payloads_stay_raw_even_when_compression_is_on() {
        let store = temp_store("incompressible");
        store.set_compress_at_rest(true);
        let noise: Vec<u8> = (0..256u32)
            .map(|i| (i.wrapping_mul(0x9e37_79b9) >> 13) as u8)
            .collect();
        store.save("dri", 1, 3, &noise);
        let on_disk = fs::read(store.entry_path("dri", 1, 3)).unwrap();
        assert_eq!(
            &on_disk[0..4],
            b"DRIS",
            "inflating payloads keep the raw shape"
        );
        assert_eq!(store.load("dri", 1, 3).as_deref(), Some(&noise[..]));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn empty_env_disables_the_store() {
        // `from_env` reads the ambient environment; only assert on the
        // cases this test can see without mutating global state.
        if std::env::var_os(STORE_ENV).is_none() {
            assert!(ResultStore::from_env().is_none());
        }
    }
}
