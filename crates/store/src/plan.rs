//! Key-plan enumeration: the record grid a campaign is *about* to need.
//!
//! A sweep or a manifest-driven suite knows its entire configuration grid
//! before it runs a single point, and every grid point's store address is
//! computable up front from the same stable [`crate::hash::KeyHasher`]
//! keys the store files are named by. A [`KeyPlan`] captures that
//! enumeration: an ordered, **deduplicated** list of `(kind, schema,
//! key)` references that a bulk resolver (the local disk pass and the
//! remote `POST /batch` client in `dri-experiments`/`dri-serve`) can
//! walk in one pass instead of one round-trip per point.
//!
//! Deduplication matters because grids share records heavily — every
//! miss-bound × size-bound point of a parameter search reuses the same
//! baseline run — and a batch request that repeats a key pays wire and
//! disk cost for bytes it already has. Order is preserved (first push
//! wins) so batch responses can be zipped back to their requesters
//! deterministically.

use std::collections::HashSet;

/// One planned record reference: the triple that addresses a record in a
/// [`crate::ResultStore`] and over the `dri-serve` wire protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyRef {
    /// Record kind (`"baseline"`, `"dri"`, …).
    pub kind: String,
    /// Schema version the payload layout is valid under.
    pub schema: u32,
    /// The 128-bit stable content key.
    pub key: u128,
}

/// An ordered, deduplicated enumeration of the records a campaign is
/// about to look up (see the module docs).
///
/// ```
/// use dri_store::KeyPlan;
///
/// let mut plan = KeyPlan::new();
/// assert!(plan.push("baseline", 1, 7));
/// assert!(plan.push("dri", 1, 7), "same key, different kind: distinct");
/// assert!(!plan.push("baseline", 1, 7), "duplicates are dropped");
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyPlan {
    entries: Vec<KeyRef>,
    seen: HashSet<KeyRef>,
}

impl KeyPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one record reference, keeping the first occurrence of a
    /// duplicate. Returns whether the reference was newly planned.
    pub fn push(&mut self, kind: &str, schema: u32, key: u128) -> bool {
        let entry = KeyRef {
            kind: kind.to_owned(),
            schema,
            key,
        };
        if !self.seen.insert(entry.clone()) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Whether `(kind, schema, key)` is already planned.
    pub fn contains(&self, kind: &str, schema: u32, key: u128) -> bool {
        self.seen.contains(&KeyRef {
            kind: kind.to_owned(),
            schema,
            key,
        })
    }

    /// Unique records planned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is planned (a fully memory-warm grid).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The planned references, in first-push order.
    pub fn iter(&self) -> impl Iterator<Item = &KeyRef> {
        self.entries.iter()
    }

    /// The plan as borrowed `(kind, schema, key)` tuples — the exact
    /// shape the batch client consumes.
    pub fn entries(&self) -> Vec<(&str, u32, u128)> {
        self.entries
            .iter()
            .map(|e| (e.kind.as_str(), e.schema, e.key))
            .collect()
    }
}

impl<'a> IntoIterator for &'a KeyPlan {
    type Item = &'a KeyRef;
    type IntoIter = std::slice::Iter<'a, KeyRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_preserves_first_push_order() {
        let mut plan = KeyPlan::new();
        assert!(plan.push("dri", 1, 2));
        assert!(plan.push("baseline", 1, 1));
        assert!(!plan.push("dri", 1, 2), "duplicate dropped");
        assert!(plan.push("dri", 2, 2), "schema distinguishes");
        let got: Vec<(&str, u32, u128)> = plan.entries();
        assert_eq!(got, vec![("dri", 1, 2), ("baseline", 1, 1), ("dri", 2, 2)]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert!(plan.contains("baseline", 1, 1));
        assert!(!plan.contains("baseline", 1, 2));
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = KeyPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.entries().is_empty());
        assert_eq!(plan.iter().count(), 0);
    }
}
