//! Fixed-width little-endian record encoding.
//!
//! Records are tiny (a few hundred bytes of counters), so the codec
//! optimizes for being *obviously correct* rather than compact: every
//! integer is full-width little-endian, floats travel as their IEEE-754
//! bit patterns (so a decoded `f64` is bit-identical to the encoded one,
//! including negative zero and NaN payloads), and every read is
//! bounds-checked — a truncated buffer yields `None`, never garbage.

/// Append-only binary writer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked reader over an encoded record.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, rest) = self.buf.split_at_checked(n)?;
        self.buf = rest;
        Some(head)
    }

    /// Reads a `u8`, or `None` if the buffer is exhausted.
    pub fn take_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn take_f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.take_u64()?))
    }

    /// Bytes not yet consumed. A well-formed record decodes to exactly
    /// zero remaining bytes; callers should treat a surplus as corruption.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_primitive() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 1);
        e.put_f64(-0.0);
        e.put_f64(f64::NAN);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8(), Some(7));
        assert_eq!(d.take_u32(), Some(0xdead_beef));
        assert_eq!(d.take_u64(), Some(u64::MAX - 1));
        assert_eq!(d.take_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(d.take_f64().map(f64::to_bits), Some(f64::NAN.to_bits()));
        assert_eq!(d.remaining(), 0);
        assert_eq!(d.take_u8(), None, "exhausted reads fail cleanly");
    }

    #[test]
    fn truncation_yields_none_not_garbage() {
        let mut e = Encoder::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert_eq!(d.take_u64(), None);
        // The failed read consumes nothing.
        assert_eq!(d.remaining(), 5);
    }
}
