//! The group-commit write journal: batches of pushed records land as
//! **one checksummed segment append with one fsync**, become readable
//! the instant that fsync returns, and drain into the content-addressed
//! record files asynchronously.
//!
//! ## Why
//!
//! The store's own write path ([`ResultStore::save`]) is per-record
//! durable: temp file, `sync_data`, rename — one fsync *per record*.
//! That is the right trade for a worker healing its local cache, but it
//! caps a central server absorbing whole campaign sweeps: a 7-record
//! `batch-put` pays 7 fsyncs. The journal flips the cost model: the
//! entire batch is encoded into a single frame, appended to the active
//! segment, and fsynced **once**; the caller acks only after that fsync
//! returns, so *acked implies durable* with one disk barrier per batch
//! no matter how many records it carries.
//!
//! ## Layout and frame format
//!
//! Segments live under `<store_root>/journal/` as
//! `seg-<seq:016x>.wal`, strictly ordered by `seq`. Each frame is one
//! committed batch:
//!
//! ```text
//! [magic "DRIJ"][entry count u32][flags u8][body len u64][body][fnv64]
//! ```
//!
//! with the body a concatenation of
//! `[kind len u8][kind][schema u32][key u128][payload len u32][payload]`
//! entries (all little-endian), optionally compressed as a whole with
//! the [`crate::compress`] codec (flag bit 0 — kept only when it
//! shrinks the frame). The checksum covers everything before it, so a
//! torn append — the crash case — invalidates the *entire* batch: a
//! frame is all-or-nothing, and an unacked batch can never surface a
//! subset of its records after recovery.
//!
//! ## Recovery
//!
//! [`Journal::open`] replays every segment in sequence order into an
//! in-memory index, stopping a segment's scan at the first invalid
//! frame (torn tail, bit flip, short header — anything the checksum or
//! bounds checks reject). Recovered segments are immediately eligible
//! for compaction, so a crashed server's journal drains into ordinary
//! record files shortly after restart.
//!
//! ## Compaction
//!
//! [`Journal::compact`] seals the active segment, snapshots the index,
//! writes every entry through the store's atomic per-record path (off
//! the ack path, where per-record fsyncs are harmless), then removes
//! exactly the entries whose payload `Arc` is still the snapshotted one
//! — a record re-pushed with different bytes *during* compaction keeps
//! its newer journal entry. Drained segments are renamed to
//! `seg-<seq>.wal.compacted` and unlinked; a crash between the two
//! leaves debris the GC walker classifies and sweeps ([`crate::gc`]),
//! while a crash *before* the rename merely re-compacts identical bytes
//! on the next pass — every step is idempotent.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dri_telemetry::{Histogram, Registry, Span};

use crate::compress;
use crate::hash::fnv64;
use crate::store::ResultStore;

/// Directory under the store root holding journal segments.
pub const JOURNAL_DIR: &str = "journal";
/// Suffix of a live (unsealed or sealed-but-undrained) segment. The GC
/// walker spares these: they may hold the only durable copy of an
/// acked record.
pub const SEGMENT_SUFFIX: &str = ".wal";
/// Suffix of a drained segment awaiting unlink. A crash between the
/// compactor's rename and unlink leaves one behind; the GC walker
/// sweeps it as debris.
pub const COMPACTED_SUFFIX: &str = ".wal.compacted";

/// First bytes of every journal frame.
const FRAME_MAGIC: [u8; 4] = *b"DRIJ";
/// Frame flag bit 0: the body is a [`crate::compress`] stream.
const FLAG_COMPRESSED: u8 = 1;
/// magic + entry count(u32) + flags(u8) + body length(u64).
const FRAME_HEAD: usize = 4 + 4 + 1 + 8;
/// FNV-1a 64 over head + body, appended after the body.
const FRAME_CHECKSUM: usize = 8;
/// Hard ceiling on a frame body (matches the HTTP layer's body cap):
/// recovery refuses to decompress anything claiming to be larger.
const MAX_FRAME_BODY: usize = 64 * 1024 * 1024;

/// One record bound for the journal: the same (kind, schema, key,
/// payload) tuple [`ResultStore::save`] takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Record kind (`"dri"`, `"baseline"`, …).
    pub kind: String,
    /// Payload schema version.
    pub schema: u32,
    /// Content-address key.
    pub key: u128,
    /// The record payload (the store re-frames and checksums it).
    pub payload: Vec<u8>,
}

/// Tuning for a [`Journal`].
#[derive(Debug, Clone, Copy)]
pub struct JournalOptions {
    /// Rotate to a fresh segment once the active one exceeds this.
    pub max_segment_bytes: u64,
    /// Compress frame bodies (kept only when it shrinks the frame).
    pub compress: bool,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            max_segment_bytes: 4 * 1024 * 1024,
            compress: true,
        }
    }
}

/// Monotonic counters plus point-in-time depth for one journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records currently readable from the journal index (not yet
    /// compacted into the store).
    pub depth: u64,
    /// Live `.wal` segments on disk (active + sealed).
    pub segments: u64,
    /// Batches appended (each one fsync).
    pub batches: u64,
    /// Records appended across all batches.
    pub appended: u64,
    /// fsyncs issued by appends (== `batches` + torn-write simulations).
    pub fsyncs: u64,
    /// Compaction passes that drained at least one record or segment.
    pub compactions: u64,
    /// Records drained into the store by compaction.
    pub compacted: u64,
    /// Records replayed from segments at open.
    pub recovered: u64,
}

#[derive(Debug, Default)]
struct AtomicJournalStats {
    batches: AtomicU64,
    appended: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
    compacted: AtomicU64,
    recovered: AtomicU64,
}

/// The segment currently receiving appends.
#[derive(Debug)]
struct ActiveSegment {
    path: PathBuf,
    file: File,
    bytes: u64,
}

/// One indexed record: its `(kind, schema, key)` identity plus payload
/// (the shape compaction snapshots out of the index).
type IndexedRecord = ((String, u32, u128), Arc<Vec<u8>>);

#[derive(Debug, Default)]
struct Inner {
    /// Every record acked-but-not-compacted, newest payload per key.
    /// `Arc` so compaction can snapshot without copying payloads and
    /// later prove (by pointer identity) an entry was not re-pushed
    /// while it drained.
    index: HashMap<(String, u32, u128), Arc<Vec<u8>>>,
    active: Option<ActiveSegment>,
    /// Sealed segments (rotation, append errors, recovery) awaiting
    /// compaction, oldest first.
    sealed: Vec<PathBuf>,
    next_seq: u64,
}

/// A group-commit write journal over one store root. See the module
/// docs for the format and the durability argument.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    options: JournalOptions,
    inner: Mutex<Inner>,
    stats: AtomicJournalStats,
    fsync_latency: Histogram,
    compact_latency: Histogram,
}

impl Journal {
    /// Opens the journal under `store_root`, replaying every existing
    /// segment (in sequence order, stopping each at its first invalid
    /// frame) into the read index.
    pub fn open(store_root: &Path, options: JournalOptions) -> io::Result<Journal> {
        let dir = store_root.join(JOURNAL_DIR);
        fs::create_dir_all(&dir)?;
        let registry = Registry::global();
        let journal = Journal {
            dir,
            options,
            inner: Mutex::new(Inner::default()),
            stats: AtomicJournalStats::default(),
            fsync_latency: registry.histogram(
                "dri_journal_fsync_ns",
                "group-commit journal append latency (encode + write + fsync)",
            ),
            compact_latency: registry.histogram(
                "dri_journal_compact_ns",
                "journal compaction pass latency (seal + drain + unlink)",
            ),
        };
        journal.recover()?;
        Ok(journal)
    }

    /// Replays existing segments into the index. Only called from
    /// [`Journal::open`], before the journal is shared.
    fn recover(&self) -> io::Result<()> {
        let mut segments = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(name) => name,
                None => continue,
            };
            if let Some(seq) = segment_seq(name) {
                segments.push((seq, path));
            }
        }
        if segments.is_empty() {
            return Ok(());
        }
        segments.sort();
        let span = Span::begin("journal", "recover");
        let mut inner = self.inner.lock().expect("journal lock");
        let mut recovered = 0u64;
        for (seq, path) in segments {
            let bytes = fs::read(&path)?;
            let mut at = 0usize;
            while let Some((entries, frame_len)) = decode_frame(&bytes, at) {
                for entry in entries {
                    inner.index.insert(
                        (entry.kind, entry.schema, entry.key),
                        Arc::new(entry.payload),
                    );
                    recovered += 1;
                }
                at += frame_len;
            }
            // A valid prefix was replayed; anything after `at` is a torn
            // or corrupt tail and is dropped when compaction drains the
            // segment. Never append after a torn tail: the segment is
            // sealed as-is and a fresh one takes the writes.
            inner.sealed.push(path);
            inner.next_seq = inner.next_seq.max(seq + 1);
        }
        self.stats.recovered.store(recovered, Ordering::Relaxed);
        let segments = inner.sealed.len();
        drop(inner);
        span.label("records", &recovered.to_string())
            .label("segments", &segments.to_string())
            .finish("replayed");
        Ok(())
    }

    /// Appends `entries` as one frame with **one fsync**, then indexes
    /// them. When this returns `Ok`, every entry is durable and
    /// immediately readable via [`Journal::lookup`] — the caller may
    /// ack. On an error the frame may be torn on disk; the segment is
    /// sealed (recovery and compaction drop torn tails) and nothing is
    /// indexed, so a failed append never surfaces a partial batch.
    pub fn append_batch(&self, entries: Vec<JournalEntry>) -> io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(&entries, self.options.compress);
        let started = Instant::now();
        let mut inner = self.inner.lock().expect("journal lock");
        let result: io::Result<()> = (|| {
            let active = self.active_segment(&mut inner, frame.len() as u64)?;
            active.file.write_all(&frame)?;
            active.file.sync_data()?;
            active.bytes += frame.len() as u64;
            Ok(())
        })();
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let Err(err) = result {
            if let Some(active) = inner.active.take() {
                inner.sealed.push(active.path);
            }
            return Err(err);
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .appended
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        for entry in entries {
            inner.index.insert(
                (entry.kind, entry.schema, entry.key),
                Arc::new(entry.payload),
            );
        }
        drop(inner);
        self.fsync_latency.record_duration(started.elapsed());
        Ok(())
    }

    /// Writes only the first `keep` bytes of the frame `entries` would
    /// produce — a deterministic torn write, exactly what a crash
    /// mid-append leaves behind — then seals the segment. Nothing is
    /// indexed and no ack should follow; the `DRI_FAULT` crash clause
    /// and the torn-write tests use this to prove recovery drops the
    /// whole batch.
    pub fn simulate_torn_append(&self, entries: &[JournalEntry], keep: usize) -> io::Result<()> {
        let frame = encode_frame(entries, self.options.compress);
        let keep = keep.min(frame.len().saturating_sub(1)).max(1);
        let mut inner = self.inner.lock().expect("journal lock");
        let active = self.active_segment(&mut inner, frame.len() as u64)?;
        active.file.write_all(&frame[..keep])?;
        active.file.sync_data()?;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let Some(active) = inner.active.take() {
            inner.sealed.push(active.path);
        }
        Ok(())
    }

    /// The active segment, rotating (seal + create) when the incoming
    /// frame would push it past the size budget.
    fn active_segment<'a>(
        &self,
        inner: &'a mut Inner,
        incoming: u64,
    ) -> io::Result<&'a mut ActiveSegment> {
        let rotate = match &inner.active {
            Some(active) => {
                active.bytes > 0 && active.bytes + incoming > self.options.max_segment_bytes
            }
            None => true,
        };
        if rotate {
            if let Some(active) = inner.active.take() {
                inner.sealed.push(active.path);
            }
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let path = self.dir.join(format!("seg-{seq:016x}{SEGMENT_SUFFIX}"));
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            inner.active = Some(ActiveSegment {
                path,
                file,
                bytes: 0,
            });
        }
        Ok(inner.active.as_mut().expect("active segment after rotate"))
    }

    /// The payload for `(kind, schema, key)` if the journal still holds
    /// it — the read tier in front of the store: a record is visible
    /// here from the moment its batch's fsync returned until compaction
    /// lands it in a record file.
    pub fn lookup(&self, kind: &str, schema: u32, key: u128) -> Option<Arc<Vec<u8>>> {
        let inner = self.inner.lock().expect("journal lock");
        // A borrowed-tuple probe would need `Borrow` gymnastics; the
        // index is small (it drains every compaction interval), so an
        // owned key probe is fine on this path.
        inner.index.get(&(kind.to_owned(), schema, key)).cloned()
    }

    /// Records currently readable from the journal (acked, not yet
    /// compacted).
    pub fn depth(&self) -> u64 {
        self.inner.lock().expect("journal lock").index.len() as u64
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> JournalStats {
        let inner = self.inner.lock().expect("journal lock");
        let segments = inner.sealed.len() as u64 + u64::from(inner.active.is_some());
        JournalStats {
            depth: inner.index.len() as u64,
            segments,
            batches: self.stats.batches.load(Ordering::Relaxed),
            appended: self.stats.appended.load(Ordering::Relaxed),
            fsyncs: self.stats.fsyncs.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            compacted: self.stats.compacted.load(Ordering::Relaxed),
            recovered: self.stats.recovered.load(Ordering::Relaxed),
        }
    }

    /// Drains the journal into `store`: seals the active segment,
    /// writes every indexed record through the store's atomic
    /// per-record path, removes the entries that were not re-pushed
    /// meanwhile, and unlinks the drained segments (via a `.compacted`
    /// rename, so a crash mid-sweep leaves classifiable debris).
    /// Returns the number of records drained. On a store write error
    /// nothing is forgotten: index and segments stay put and the next
    /// pass retries idempotently.
    pub fn compact(&self, store: &ResultStore) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("journal lock");
        if inner.active.is_none() && inner.sealed.is_empty() {
            return Ok(0);
        }
        let started = Instant::now();
        let span = Span::begin("journal", "compact");
        if let Some(active) = inner.active.take() {
            inner.sealed.push(active.path);
        }
        let snapshot: Vec<IndexedRecord> = inner
            .index
            .iter()
            .map(|(key, payload)| (key.clone(), Arc::clone(payload)))
            .collect();
        let segments: Vec<PathBuf> = inner.sealed.clone();
        drop(inner);

        // Per-record fsyncs happen here, off the ack path, one writer.
        for ((kind, schema, key), payload) in &snapshot {
            store.try_save(kind, *schema, *key, payload)?;
        }

        let mut inner = self.inner.lock().expect("journal lock");
        for (key, payload) in &snapshot {
            // Pointer identity proves the indexed value is the one we
            // just persisted; a concurrent re-push swapped the Arc and
            // must stay visible until the *next* compaction.
            if inner
                .index
                .get(key)
                .is_some_and(|held| Arc::ptr_eq(held, payload))
            {
                inner.index.remove(key);
            }
        }
        inner.sealed.retain(|path| !segments.contains(path));
        drop(inner);

        for path in &segments {
            let tomb = path.with_extension("wal.compacted");
            // Best-effort: a failure at either step leaves a file the
            // GC walker classifies (live `.wal` or `.compacted` debris).
            if fs::rename(path, &tomb).is_ok() {
                let _ = fs::remove_file(&tomb);
            }
        }

        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats
            .compacted
            .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
        self.compact_latency.record_duration(started.elapsed());
        span.label("records", &snapshot.len().to_string())
            .label("segments", &segments.len().to_string())
            .finish("drained");
        Ok(snapshot.len() as u64)
    }
}

/// Parses `seg-<seq:016x>.wal` names, ignoring everything else (in
/// particular `.wal.compacted` debris, which is dead by definition).
fn segment_seq(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(SEGMENT_SUFFIX)?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

/// Encodes one batch as a self-validating frame (see the module docs).
fn encode_frame(entries: &[JournalEntry], compress: bool) -> Vec<u8> {
    let mut body = Vec::new();
    for entry in entries {
        debug_assert!(entry.kind.len() <= u8::MAX as usize, "kind fits u8 length");
        body.push(entry.kind.len() as u8);
        body.extend_from_slice(entry.kind.as_bytes());
        body.extend_from_slice(&entry.schema.to_le_bytes());
        body.extend_from_slice(&entry.key.to_le_bytes());
        body.extend_from_slice(&(entry.payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&entry.payload);
    }
    let mut flags = 0u8;
    if compress {
        let packed = compress::compress(&body);
        if packed.len() < body.len() {
            body = packed;
            flags |= FLAG_COMPRESSED;
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEAD + body.len() + FRAME_CHECKSUM);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    frame.push(flags);
    frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
    frame.extend_from_slice(&body);
    let checksum = fnv64(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

/// Decodes the frame starting at `bytes[at..]`, returning its entries
/// and its total length. `None` means torn, corrupt, or absent —
/// recovery stops the segment scan there.
fn decode_frame(bytes: &[u8], at: usize) -> Option<(Vec<JournalEntry>, usize)> {
    let head = bytes.get(at..at + FRAME_HEAD)?;
    if head[0..4] != FRAME_MAGIC {
        return None;
    }
    let count = u32::from_le_bytes(head[4..8].try_into().ok()?) as usize;
    let flags = head[8];
    if flags & !FLAG_COMPRESSED != 0 {
        return None;
    }
    let body_len = u64::from_le_bytes(head[9..17].try_into().ok()?);
    if body_len > MAX_FRAME_BODY as u64 {
        return None;
    }
    let body_start = at + FRAME_HEAD;
    let body_end = body_start.checked_add(body_len as usize)?;
    let frame_end = body_end.checked_add(FRAME_CHECKSUM)?;
    if frame_end > bytes.len() {
        return None;
    }
    let declared = u64::from_le_bytes(bytes[body_end..frame_end].try_into().ok()?);
    if fnv64(&bytes[at..body_end]) != declared {
        return None;
    }
    let unpacked;
    let body: &[u8] = if flags & FLAG_COMPRESSED != 0 {
        unpacked = compress::decompress(&bytes[body_start..body_end], MAX_FRAME_BODY)?;
        &unpacked
    } else {
        &bytes[body_start..body_end]
    };
    let entries = decode_body(body, count)?;
    Some((entries, frame_end - at))
}

/// Decodes exactly `count` entries consuming the whole `body`.
fn decode_body(body: &[u8], count: usize) -> Option<Vec<JournalEntry>> {
    let mut entries = Vec::with_capacity(count.min(1024));
    let mut at = 0usize;
    for _ in 0..count {
        let kind_len = *body.get(at)? as usize;
        at += 1;
        let kind = std::str::from_utf8(body.get(at..at + kind_len)?).ok()?;
        at += kind_len;
        let schema = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?);
        at += 4;
        let key = u128::from_le_bytes(body.get(at..at + 16)?.try_into().ok()?);
        at += 16;
        let payload_len = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        let payload = body.get(at..at + payload_len)?.to_vec();
        at += payload_len;
        entries.push(JournalEntry {
            kind: kind.to_owned(),
            schema,
            key,
            payload,
        });
    }
    (at == body.len()).then_some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("dri-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("temp root");
        root
    }

    fn entry(kind: &str, key: u128, payload: &[u8]) -> JournalEntry {
        JournalEntry {
            kind: kind.to_owned(),
            schema: 1,
            key,
            payload: payload.to_vec(),
        }
    }

    fn segment_files(root: &Path) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(root.join(JOURNAL_DIR))
            .map(|dir| {
                dir.filter_map(|e| e.ok()?.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    #[test]
    fn appended_batches_are_readable_and_survive_reopen() {
        let root = temp_root("reopen");
        let journal = Journal::open(&root, JournalOptions::default()).expect("open");
        journal
            .append_batch(vec![entry("dri", 1, b"one"), entry("dri", 2, b"two")])
            .expect("append");
        journal
            .append_batch(vec![entry("decay", 1, b"other kind")])
            .expect("append");
        assert_eq!(
            journal.lookup("dri", 1, 1).as_deref().map(|p| &p[..]),
            Some(&b"one"[..])
        );
        assert_eq!(journal.lookup("dri", 1, 9), None);
        assert_eq!(journal.depth(), 3);
        let stats = journal.stats();
        assert_eq!((stats.batches, stats.appended, stats.fsyncs), (2, 3, 2));
        drop(journal);

        let reopened = Journal::open(&root, JournalOptions::default()).expect("reopen");
        assert_eq!(reopened.depth(), 3);
        assert_eq!(reopened.stats().recovered, 3);
        assert_eq!(
            reopened.lookup("decay", 1, 1).as_deref().map(|p| &p[..]),
            Some(&b"other kind"[..])
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn a_rewrite_of_the_same_key_serves_the_newest_payload() {
        let root = temp_root("rewrite");
        let journal = Journal::open(&root, JournalOptions::default()).expect("open");
        journal.append_batch(vec![entry("dri", 5, b"old")]).unwrap();
        journal.append_batch(vec![entry("dri", 5, b"new")]).unwrap();
        assert_eq!(journal.depth(), 1, "one key, one entry");
        assert_eq!(
            journal.lookup("dri", 1, 5).as_deref().map(|p| &p[..]),
            Some(&b"new"[..])
        );
        // Recovery replays in order, so the newest payload still wins.
        drop(journal);
        let reopened = Journal::open(&root, JournalOptions::default()).expect("reopen");
        assert_eq!(
            reopened.lookup("dri", 1, 5).as_deref().map(|p| &p[..]),
            Some(&b"new"[..])
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn segments_rotate_at_the_size_budget() {
        let root = temp_root("rotate");
        let options = JournalOptions {
            max_segment_bytes: 256,
            compress: false,
        };
        let journal = Journal::open(&root, options).expect("open");
        for key in 0..6u128 {
            journal
                .append_batch(vec![entry("dri", key, &[key as u8; 100])])
                .expect("append");
        }
        let segments = segment_files(&root);
        assert!(
            segments.len() >= 3,
            "6 x ~130-byte frames under a 256-byte budget rotate: {segments:?}"
        );
        assert_eq!(journal.stats().segments, segments.len() as u64);
        // Rotation loses nothing.
        drop(journal);
        let reopened = Journal::open(&root, options).expect("reopen");
        assert_eq!(reopened.depth(), 6);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn compaction_drains_into_the_store_and_unlinks_segments() {
        let root = temp_root("compact");
        let store = ResultStore::open(&root).expect("store");
        let journal = Journal::open(&root, JournalOptions::default()).expect("open");
        journal
            .append_batch(vec![
                entry("dri", 7, b"drained payload"),
                entry("dri", 8, b"second"),
            ])
            .expect("append");
        assert_eq!(store.load("dri", 1, 7), None, "not in the store yet");
        let drained = journal.compact(&store).expect("compact");
        assert_eq!(drained, 2);
        assert_eq!(journal.depth(), 0);
        assert_eq!(
            store.load("dri", 1, 7).as_deref(),
            Some(&b"drained payload"[..]),
            "the store serves the drained record"
        );
        assert_eq!(
            segment_files(&root),
            Vec::<String>::new(),
            "segments unlinked"
        );
        assert_eq!(journal.compact(&store).expect("idle compact"), 0);
        let stats = journal.stats();
        assert_eq!((stats.compactions, stats.compacted), (1, 2));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn a_torn_tail_recovers_the_acked_prefix_and_only_that() {
        let root = temp_root("torn");
        let journal = Journal::open(&root, JournalOptions::default()).expect("open");
        journal
            .append_batch(vec![entry("dri", 1, b"acked one")])
            .unwrap();
        journal
            .append_batch(vec![entry("dri", 2, b"acked two")])
            .unwrap();
        journal
            .simulate_torn_append(
                &[
                    entry("dri", 3, b"never acked"),
                    entry("dri", 4, b"also lost"),
                ],
                21,
            )
            .expect("torn append");
        assert_eq!(
            journal.lookup("dri", 1, 3),
            None,
            "torn batch never indexed"
        );
        drop(journal);

        let reopened = Journal::open(&root, JournalOptions::default()).expect("recover");
        assert_eq!(
            reopened.stats().recovered,
            2,
            "both acked records, nothing else"
        );
        assert_eq!(
            reopened.lookup("dri", 1, 2).as_deref().map(|p| &p[..]),
            Some(&b"acked two"[..])
        );
        assert_eq!(reopened.lookup("dri", 1, 3), None);
        assert_eq!(reopened.lookup("dri", 1, 4), None);
        // Appends after recovery go to a fresh segment, never after the
        // torn tail, and compaction then discards the garbage.
        reopened
            .append_batch(vec![entry("dri", 5, b"post crash")])
            .unwrap();
        drop(reopened);
        let again = Journal::open(&root, JournalOptions::default()).expect("recover again");
        assert_eq!(again.stats().recovered, 3);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn compaction_persists_the_newest_payload_for_a_rewritten_key() {
        let root = temp_root("repush");
        let store = ResultStore::open(&root).expect("store");
        let journal = Journal::open(&root, JournalOptions::default()).expect("open");
        journal
            .append_batch(vec![entry("dri", 9, b"first")])
            .unwrap();
        // A rewrite swaps the indexed Arc — the identity the compaction
        // sweep uses to decide whether an entry may be dropped.
        let held = journal.lookup("dri", 1, 9).expect("indexed");
        journal
            .append_batch(vec![entry("dri", 9, b"second")])
            .unwrap();
        assert!(!Arc::ptr_eq(&held, &journal.lookup("dri", 1, 9).unwrap()));
        journal.compact(&store).expect("compact");
        assert_eq!(journal.lookup("dri", 1, 9), None, "drained");
        assert_eq!(store.load("dri", 1, 9).as_deref(), Some(&b"second"[..]));
        let _ = fs::remove_dir_all(root);
    }
}
