//! The service's wire contract, exercised over real loopback sockets:
//! every endpoint, the end-to-end validation chain (disk → server →
//! wire → client), the read-only default, and the authenticated write
//! path (token edge cases, per-entry batch-put failure, caps).

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use dri_serve::{auth, PushOutcome, RemoteStore, Server};
use dri_store::{frame_record, validate_record, ResultStore};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-serve-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// A server over a fresh store seeded with `records`, on an ephemeral
/// loopback port.
fn serve(tag: &str, records: &[(&str, u32, u128, &[u8])]) -> (Server, Arc<ResultStore>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    for &(kind, schema, key, payload) in records {
        store.save(kind, schema, key, payload);
    }
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", 4).expect("bind");
    (server, store, root)
}

/// Raw one-shot HTTP exchange (independent of the client code under test).
fn raw_request(addr: std::net::SocketAddr, request: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[head_end + 4..].to_vec())
}

#[test]
fn healthz_and_stats_answer() {
    let (server, _store, root) = serve("health", &[("dri", 1, 7, b"payload")]);
    let (status, body) = raw_request(server.addr(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");

    let (status, body) = raw_request(server.addr(), "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    let json = String::from_utf8(body).expect("json utf-8");
    assert!(json.contains("\"records\":1"), "{json}");
    assert!(json.contains("\"generation\":0"), "{json}");
    assert!(json.contains("\"store\":{"), "{json}");

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn records_serve_the_exact_on_disk_bytes() {
    let payload: &[u8] = b"counters travel bit-identically";
    let (server, store, root) = serve("record", &[("baseline", 3, 0xabcd, payload)]);
    let path = format!(
        "GET /record/baseline/v{}/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
        3, 0xabcd
    );
    let (status, body) = raw_request(server.addr(), &path);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        fs::read(store.entry_path("baseline", 3, 0xabcd)).expect("on-disk record"),
        "wire bytes must be the on-disk record, byte for byte"
    );
    assert_eq!(validate_record(&body, 3, 0xabcd), Some(payload));

    // Misses and wrong schemas are clean 404s.
    for miss in [
        format!(
            "GET /record/baseline/v3/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0x9999
        ),
        format!(
            "GET /record/baseline/v4/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0xabcd
        ),
        format!(
            "GET /record/dri/v3/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0xabcd
        ),
    ] {
        assert_eq!(raw_request(server.addr(), &miss).0, 404);
    }
    // Malformed record paths are 400s, never filesystem probes.
    assert_eq!(
        raw_request(
            server.addr(),
            "GET /record/../v3/00 HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .0,
        400
    );
    assert_eq!(
        raw_request(server.addr(), "GET /nothing HTTP/1.1\r\nHost: t\r\n\r\n").0,
        404
    );

    let stats = server.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.bad_requests, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn head_requests_answer_like_get_without_a_body() {
    let (server, _store, root) = serve("head", &[("dri", 1, 3, b"xyz")]);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(
        text.contains("Content-Length: 3"),
        "HEAD advertises GET's length: {text}"
    );
    assert!(text.ends_with("\r\n\r\n"), "no body after the head: {text}");
    // HEAD of a missing record reports the real status, still body-less.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"HEAD /record/dri/v1/ff HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 404"), "{text}");
    assert!(text.ends_with("\r\n\r\n"), "{text}");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn corrupt_records_are_never_served() {
    let (server, store, root) = serve("corrupt", &[("dri", 1, 5, b"soon to be damaged")]);
    let path = store.entry_path("dri", 1, 5);
    let mut bytes = fs::read(&path).expect("record");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&path, &bytes).expect("tamper");

    let request = format!("GET /record/dri/v1/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n", 5);
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 404, "a corrupt record is a miss, not a payload");
    assert_eq!(store.stats().corrupt, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn the_service_is_read_only_by_default() {
    let (server, store, root) = serve("readonly", &[("dri", 1, 1, b"x")]);
    assert!(!server.writable());
    let before = store.disk_usage();
    // Even a perfectly framed, correctly signed record bounces off a
    // server that was started without a token: writes are disabled, not
    // merely unauthenticated.
    let record = frame_record(1, 2, b"z");
    let path = format!("/record/dri/v1/{:032x}", 2);
    let tag = auth::sign_hex("some-token", "PUT", &path, &record);
    let mut signed_put = format!(
        "PUT {path} HTTP/1.1\r\nHost: t\r\nX-DRI-Token: {tag}\r\nContent-Length: {}\r\n\r\n",
        record.len()
    )
    .into_bytes();
    signed_put.extend_from_slice(&record);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&signed_put).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 405"), "{text}");

    for request in [
        "PUT /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
        "DELETE /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\n\r\n".to_owned(),
        "POST /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
        "POST /batch-put HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
    ] {
        let status = raw_request(server.addr(), &request).0;
        assert_eq!(status, 405, "{request}");
    }
    assert_eq!(store.disk_usage(), before, "nothing landed");
    assert_eq!(server.stats().records_accepted, 0);
    // The three write-endpoint attempts (signed PUT, bare PUT,
    // batch-put) count as rejected writes; DELETE and POST to a
    // non-endpoint are plain 405s, not write attempts.
    assert_eq!(server.stats().writes_rejected, 3);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

/// A writable server over a fresh store seeded with `records`.
fn serve_writable(
    tag: &str,
    token: &str,
    records: &[(&str, u32, u128, &[u8])],
) -> (Server, Arc<ResultStore>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    for &(kind, schema, key, payload) in records {
        store.save(kind, schema, key, payload);
    }
    let server =
        Server::bind_with_token(Arc::clone(&store), "127.0.0.1:0", 4, Some(token.to_owned()))
            .expect("bind");
    (server, store, root)
}

/// One raw `PUT /record/...` with an arbitrary token header (`None` =
/// header omitted entirely).
fn raw_put(addr: std::net::SocketAddr, path: &str, token_header: Option<&str>, body: &[u8]) -> u16 {
    let token_line = token_header.map_or(String::new(), |t| format!("X-DRI-Token: {t}\r\n"));
    let mut request = format!(
        "PUT {path} HTTP/1.1\r\nHost: t\r\n{token_line}Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&request).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8_lossy(&response);
    text.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

#[test]
fn put_requires_a_valid_token_and_validates_the_record() {
    let token = "unit-secret";
    let (server, store, root) = serve_writable("put-auth", token, &[]);
    assert!(server.writable());
    let key = 0xfeedu128;
    let record = frame_record(1, key, b"pushed payload");
    let path = format!("/record/dri/v1/{key:032x}");

    // Missing token header → 401.
    assert_eq!(raw_put(server.addr(), &path, None, &record), 401);
    // Wrong secret → 401 (the tag verifies against the server's secret).
    let bad = auth::sign_hex("other-secret", "PUT", &path, &record);
    assert_eq!(raw_put(server.addr(), &path, Some(&bad), &record), 401);
    // Malformed tag → 401.
    assert_eq!(raw_put(server.addr(), &path, Some("zz"), &record), 401);
    // A valid tag for a *different* body → 401: the tag binds the exact
    // request, so a captured header cannot authorize new content.
    let other = auth::sign_hex(token, "PUT", &path, b"other body");
    assert_eq!(raw_put(server.addr(), &path, Some(&other), &record), 401);
    assert_eq!(store.disk_usage().records, 0, "nothing landed yet");
    assert_eq!(server.stats().writes_rejected, 4);

    // The genuine tag lands the record, atomically, where reads find it.
    let good = auth::sign_hex(token, "PUT", &path, &record);
    assert_eq!(raw_put(server.addr(), &path, Some(&good), &record), 200);
    assert_eq!(server.stats().records_accepted, 1);
    let (status, body) = raw_request(
        server.addr(),
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"),
    );
    assert_eq!(status, 200);
    assert_eq!(validate_record(&body, 1, key), Some(&b"pushed payload"[..]));

    // A key-mismatched record (valid bytes, wrong address) → 400, and a
    // corrupt record → 400; each signed correctly, so the failure is the
    // record, not the auth.
    let wrong_path = format!("/record/dri/v1/{:032x}", key + 1);
    let tag = auth::sign_hex(token, "PUT", &wrong_path, &record);
    assert_eq!(
        raw_put(server.addr(), &wrong_path, Some(&tag), &record),
        400
    );
    let mut damaged = record.clone();
    damaged[8] ^= 0x01;
    let tag = auth::sign_hex(token, "PUT", &path, &damaged);
    assert_eq!(raw_put(server.addr(), &path, Some(&tag), &damaged), 400);
    assert_eq!(server.stats().records_accepted, 1, "still just the one");

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn client_push_round_trips_and_latches_off_on_auth_rejection() {
    let token = "client-secret";
    let (server, _store, root) = serve_writable("client-push", token, &[]);

    // The right token pushes; the record then serves back validated.
    let remote = RemoteStore::with_token(server.addr().to_string(), Some(token.to_owned()));
    let record = frame_record(3, 0xab, b"via client");
    assert_eq!(remote.push("dri", 3, 0xab, &record), PushOutcome::Accepted);
    assert_eq!(
        remote.fetch("dri", 3, 0xab).as_deref(),
        Some(&b"via client"[..])
    );
    let stats = remote.stats();
    assert_eq!(stats.records_accepted, 1);
    assert_eq!(stats.writes_rejected, 0);
    assert_eq!(stats.push_round_trips, 1);
    assert!(!remote.is_push_disabled());

    // A client with the wrong token is rejected once, then latches its
    // push path off — reads keep working.
    let imposter = RemoteStore::with_token(server.addr().to_string(), Some("wrong".to_owned()));
    assert_eq!(
        imposter.push("dri", 3, 0xcd, &frame_record(3, 0xcd, b"nope")),
        PushOutcome::Rejected
    );
    assert!(imposter.is_push_disabled());
    assert_eq!(
        imposter.push("dri", 3, 0xce, &frame_record(3, 0xce, b"still no")),
        PushOutcome::Rejected,
        "latched: absorbed locally without another exchange"
    );
    let stats = imposter.stats();
    assert_eq!(stats.writes_rejected, 2);
    assert_eq!(stats.push_round_trips, 1, "only the first reached the wire");
    assert_eq!(stats.errors, 0, "auth rejection is not a transport error");
    assert!(!imposter.is_disabled(), "the read breaker is untouched");
    assert_eq!(
        imposter.fetch("dri", 3, 0xab).as_deref(),
        Some(&b"via client"[..]),
        "reads still flow"
    );
    // A token-less client is likewise rejected (it cannot sign at all).
    let anonymous = RemoteStore::new(server.addr().to_string());
    assert_eq!(
        anonymous.push("dri", 3, 0xcf, &frame_record(3, 0xcf, b"anon")),
        PushOutcome::Rejected
    );

    assert_eq!(server.stats().records_accepted, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batch_put_fails_only_the_corrupt_entry() {
    let token = "batch-secret";
    let (server, store, root) = serve_writable("batch-put", token, &[]);
    let remote = RemoteStore::with_token(server.addr().to_string(), Some(token.to_owned()));

    let first = frame_record(1, 1, b"first");
    let mut corrupt = frame_record(1, 2, b"second");
    corrupt[5] ^= 0x10;
    let mismatched = frame_record(1, 999, b"third"); // pushed under key 3
    let third = frame_record(1, 4, b"fourth");
    let (outcomes, trips) = remote.push_batch(&[
        ("dri", 1, 1, &first),
        ("dri", 1, 2, &corrupt),
        ("dri", 1, 3, &mismatched),
        ("dri", 1, 4, &third),
    ]);
    assert_eq!(trips, 1);
    assert_eq!(
        outcomes,
        vec![
            PushOutcome::Accepted,
            PushOutcome::Rejected,
            PushOutcome::Rejected,
            PushOutcome::Accepted,
        ]
    );
    let stats = server.stats();
    assert_eq!(stats.records_accepted, 2);
    assert_eq!(stats.writes_rejected, 2);
    assert_eq!(store.load("dri", 1, 1).as_deref(), Some(&b"first"[..]));
    assert_eq!(
        store.load("dri", 1, 2),
        None,
        "the corrupt entry never landed"
    );
    assert_eq!(store.load("dri", 1, 3), None, "nor the key-mismatched one");
    assert_eq!(store.load("dri", 1, 4).as_deref(), Some(&b"fourth"[..]));
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batch_put_rejects_structural_damage_and_over_cap_wholesale() {
    let token = "cap-secret";
    let (server, store, root) = serve_writable("batch-put-cap", token, &[]);

    // Over the MAX_BATCH frame cap → 400, nothing lands.
    let mut body = Vec::new();
    for key in 0..=dri_serve::server::MAX_BATCH as u128 {
        let record = frame_record(1, key, b"x");
        body.push(3u8);
        body.extend_from_slice(b"dri");
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&key.to_le_bytes());
        body.extend_from_slice(&(record.len() as u64).to_le_bytes());
        body.extend_from_slice(&record);
    }
    let tag = auth::sign_hex(token, "POST", "/batch-put", &body);
    let mut request = format!(
        "POST /batch-put HTTP/1.1\r\nHost: t\r\nX-DRI-Token: {tag}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(&body);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&request).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    assert!(
        String::from_utf8_lossy(&response).starts_with("HTTP/1.1 400"),
        "over-cap batches bounce wholesale"
    );
    assert_eq!(store.disk_usage().records, 0);

    // A truncated frame stream (signed, authenticated) is also a 400.
    let mut truncated = Vec::new();
    truncated.push(3u8);
    truncated.extend_from_slice(b"dri");
    truncated.extend_from_slice(&1u32.to_le_bytes()); // key + length missing
    let tag = auth::sign_hex(token, "POST", "/batch-put", &truncated);
    let mut request = format!(
        "POST /batch-put HTTP/1.1\r\nHost: t\r\nX-DRI-Token: {tag}\r\nContent-Length: {}\r\n\r\n",
        truncated.len()
    )
    .into_bytes();
    request.extend_from_slice(&truncated);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&request).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 400"));

    // An oversized *record* inside an otherwise fine batch fails only
    // its own entry (the framing stays parseable).
    let remote = RemoteStore::with_token(server.addr().to_string(), Some(token.to_owned()));
    let good = frame_record(1, 10, b"fits");
    let huge = frame_record(1, 11, &vec![0u8; dri_serve::server::MAX_PUSH_RECORD + 1]);
    let (outcomes, _) = remote.push_batch(&[("dri", 1, 10, &good), ("dri", 1, 11, &huge)]);
    assert_eq!(outcomes, vec![PushOutcome::Accepted, PushOutcome::Rejected]);
    assert_eq!(store.load("dri", 1, 10).as_deref(), Some(&b"fits"[..]));
    assert_eq!(store.load("dri", 1, 11), None);

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn client_fetches_and_validates() {
    let (server, _store, root) = serve("client", &[("dri", 2, 0xfeed, b"remote payload")]);
    let remote = RemoteStore::new(server.addr().to_string());
    assert_eq!(
        remote.fetch("dri", 2, 0xfeed).as_deref(),
        Some(&b"remote payload"[..])
    );
    assert_eq!(remote.fetch("dri", 2, 0xbeef), None, "clean miss");
    let stats = remote.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.bytes_fetched, 14);
    assert!(!remote.is_disabled());
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batch_fetches_many_records_in_one_round_trip() {
    let (server, _store, root) = serve(
        "batch",
        &[
            ("baseline", 1, 10, b"b10".as_slice()),
            ("dri", 1, 11, b"d11".as_slice()),
            ("dri", 1, 12, b"d12".as_slice()),
        ],
    );
    let remote = RemoteStore::new(server.addr().to_string());
    let entries = [
        ("baseline", 1u32, 10u128),
        ("dri", 1, 999), // miss
        ("dri", 1, 11),
        ("dri", 1, 12),
    ];
    let results = remote.fetch_batch(&entries);
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].as_deref(), Some(&b"b10"[..]));
    assert_eq!(results[1], None);
    assert_eq!(results[2].as_deref(), Some(&b"d11"[..]));
    assert_eq!(results[3].as_deref(), Some(&b"d12"[..]));
    let stats = remote.stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 1);
    assert_eq!(server.stats().batch_requests, 1);

    // A malformed batch body is rejected wholesale.
    let (status, _) = raw_request(
        server.addr(),
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nbad entry",
    );
    assert_eq!(status, 400);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn many_concurrent_readers_are_served() {
    let payload: &[u8] = b"hot record everyone wants";
    let (server, _store, root) = serve("concurrent", &[("dri", 1, 42, payload)]);
    let addr = server.addr();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(move || {
                let remote = RemoteStore::new(addr.to_string());
                for _ in 0..10 {
                    assert_eq!(remote.fetch("dri", 1, 42).as_deref(), Some(payload));
                }
            });
        }
    });
    assert_eq!(server.stats().hits, 80);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn empty_batch_plans_touch_nothing() {
    // No server needed: an empty plan must not open a socket, count a
    // request, or cost a round trip.
    let remote = RemoteStore::new("127.0.0.1:1"); // nothing listens here
    let results = remote.fetch_batch(&[]);
    assert!(results.is_empty());
    let stats = remote.stats();
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.batch_round_trips, 0);
    assert!(!remote.is_disabled());
}

#[test]
fn oversized_batches_split_into_chunked_round_trips() {
    let records: Vec<(String, u32, u128, Vec<u8>)> = (0..10u128)
        .map(|k| {
            (
                "dri".to_owned(),
                1u32,
                k,
                format!("payload-{k}").into_bytes(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, u32, u128, &[u8])> = records
        .iter()
        .map(|(kind, schema, key, payload)| (kind.as_str(), *schema, *key, payload.as_slice()))
        .collect();
    let (server, _store, root) = serve("chunked", &borrowed);
    let remote = RemoteStore::new(server.addr().to_string());
    let entries: Vec<(&str, u32, u128)> = records
        .iter()
        .map(|(kind, schema, key, _)| (kind.as_str(), *schema, *key))
        .collect();

    // 10 entries at a chunk size of 3 → 4 consecutive round-trips, with
    // results still zipped back in request order.
    let results = remote.fetch_batch_chunked(&entries, 3);
    assert_eq!(results.len(), 10);
    for (k, result) in results.iter().enumerate() {
        assert_eq!(
            result.as_deref(),
            Some(format!("payload-{k}").as_bytes()),
            "entry {k}"
        );
    }
    let stats = remote.stats();
    assert_eq!(stats.batch_round_trips, 4, "ceil(10 / 3) chunks");
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.hits, 10);
    assert_eq!(server.stats().batch_requests, 4);

    // The default chunk swallows the same plan in a single round-trip.
    let remote = RemoteStore::new(server.addr().to_string());
    let results = remote.fetch_batch(&entries);
    assert_eq!(results.iter().filter(|r| r.is_some()).count(), 10);
    assert_eq!(remote.stats().batch_round_trips, 1);

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batches_over_the_server_cap_are_rejected_wholesale() {
    let (server, _store, root) = serve("cap", &[("dri", 1, 1, b"x")]);
    let mut body = String::new();
    for key in 0..=dri_serve::server::MAX_BATCH as u128 {
        body.push_str(&format!("dri 1 {key:032x}\n"));
    }
    let request = format!(
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 400, "one reference over MAX_BATCH is a 400");
    assert_eq!(server.stats().bad_requests, 1);
    // A full-cap batch is still served.
    let mut body = String::new();
    for key in 0..dri_serve::server::MAX_BATCH as u128 {
        body.push_str(&format!("dri 1 {key:032x}\n"));
    }
    let request = format!(
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 200);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

/// Serves one rigged `POST /batch` response from a raw loopback socket,
/// returning the address to point a client at. The body is framed by the
/// caller, so tests can hand the client responses a well-behaved server
/// would never produce.
fn rig_batch_server(response_body: Vec<u8>) -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind rigged server");
    let addr = listener.local_addr().expect("rigged addr");
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let request = dri_serve::http::read_request(&mut stream).expect("read request");
        assert_eq!(request.path, "/batch");
        dri_serve::http::write_response(
            &mut stream,
            200,
            "OK",
            "application/octet-stream",
            &response_body,
        )
        .expect("write rigged response");
    });
    addr
}

#[test]
fn corrupt_frame_inside_a_good_batch_fails_only_that_entry() {
    // Build two genuine records to flank a frame whose bytes fail
    // end-to-end validation (right length, garbage content).
    let root = temp_root("rigged-batch");
    let store = ResultStore::open(&root).expect("open store");
    store.save("dri", 1, 1, b"first ok");
    store.save("dri", 1, 3, b"third ok");
    let record_1 = fs::read(store.entry_path("dri", 1, 1)).expect("record 1");
    let record_3 = fs::read(store.entry_path("dri", 1, 3)).expect("record 3");

    let mut body = Vec::new();
    let mut frame = |bytes: &[u8]| {
        body.push(1u8);
        body.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        body.extend_from_slice(bytes);
    };
    frame(&record_1);
    frame(&vec![0xA5u8; record_1.len()]); // corrupt: fails validation
    frame(&record_3);

    let addr = rig_batch_server(body);
    let remote = RemoteStore::new(addr.to_string());
    let results = remote.fetch_batch(&[("dri", 1, 1), ("dri", 1, 2), ("dri", 1, 3)]);
    assert_eq!(results[0].as_deref(), Some(&b"first ok"[..]));
    assert_eq!(results[1], None, "the corrupt frame degrades to a miss");
    assert_eq!(results[2].as_deref(), Some(&b"third ok"[..]));
    let stats = remote.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.corrupt, 1);
    assert_eq!(stats.errors, 0, "a bad frame is not a transport failure");
    assert!(!remote.is_disabled());
    let _ = fs::remove_dir_all(root);
}

#[test]
fn truncated_batch_responses_fail_the_remaining_entries() {
    let root = temp_root("truncated-batch");
    let store = ResultStore::open(&root).expect("open store");
    store.save("dri", 1, 1, b"whole");
    let record = fs::read(store.entry_path("dri", 1, 1)).expect("record");

    let mut body = Vec::new();
    body.push(1u8);
    body.extend_from_slice(&(record.len() as u64).to_le_bytes());
    body.extend_from_slice(&record);
    // Second frame: header promises more bytes than follow.
    body.push(1u8);
    body.extend_from_slice(&(record.len() as u64).to_le_bytes());
    body.extend_from_slice(&record[..4]);

    let addr = rig_batch_server(body);
    let remote = RemoteStore::new(addr.to_string());
    let results = remote.fetch_batch(&[("dri", 1, 1), ("dri", 1, 2), ("dri", 1, 3)]);
    assert_eq!(results[0].as_deref(), Some(&b"whole"[..]));
    assert_eq!(results[1], None);
    assert_eq!(results[2], None);
    let stats = remote.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.corrupt, 2, "every unframed entry counts corrupt");
    let _ = fs::remove_dir_all(root);
}
