//! The service's wire contract, exercised over real loopback sockets:
//! every endpooint, the end-to-end validation chain (disk → server →
//! wire → client), and the read-only guarantee.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use dri_serve::{RemoteStore, Server};
use dri_store::{validate_record, ResultStore};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-serve-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// A server over a fresh store seeded with `records`, on an ephemeral
/// loopback port.
fn serve(tag: &str, records: &[(&str, u32, u128, &[u8])]) -> (Server, Arc<ResultStore>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    for &(kind, schema, key, payload) in records {
        store.save(kind, schema, key, payload);
    }
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", 4).expect("bind");
    (server, store, root)
}

/// Raw one-shot HTTP exchange (independent of the client code under test).
fn raw_request(addr: std::net::SocketAddr, request: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[head_end + 4..].to_vec())
}

#[test]
fn healthz_and_stats_answer() {
    let (server, _store, root) = serve("health", &[("dri", 1, 7, b"payload")]);
    let (status, body) = raw_request(server.addr(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");

    let (status, body) = raw_request(server.addr(), "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    let json = String::from_utf8(body).expect("json utf-8");
    assert!(json.contains("\"records\":1"), "{json}");
    assert!(json.contains("\"generation\":0"), "{json}");
    assert!(json.contains("\"store\":{"), "{json}");

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn records_serve_the_exact_on_disk_bytes() {
    let payload: &[u8] = b"counters travel bit-identically";
    let (server, store, root) = serve("record", &[("baseline", 3, 0xabcd, payload)]);
    let path = format!(
        "GET /record/baseline/v{}/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
        3, 0xabcd
    );
    let (status, body) = raw_request(server.addr(), &path);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        fs::read(store.entry_path("baseline", 3, 0xabcd)).expect("on-disk record"),
        "wire bytes must be the on-disk record, byte for byte"
    );
    assert_eq!(validate_record(&body, 3, 0xabcd), Some(payload));

    // Misses and wrong schemas are clean 404s.
    for miss in [
        format!(
            "GET /record/baseline/v3/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0x9999
        ),
        format!(
            "GET /record/baseline/v4/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0xabcd
        ),
        format!(
            "GET /record/dri/v3/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0xabcd
        ),
    ] {
        assert_eq!(raw_request(server.addr(), &miss).0, 404);
    }
    // Malformed record paths are 400s, never filesystem probes.
    assert_eq!(
        raw_request(
            server.addr(),
            "GET /record/../v3/00 HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .0,
        400
    );
    assert_eq!(
        raw_request(server.addr(), "GET /nothing HTTP/1.1\r\nHost: t\r\n\r\n").0,
        404
    );

    let stats = server.stats();
    assert_eq!(stats.records_served, 1);
    assert_eq!(stats.not_found, 3);
    assert_eq!(stats.bad_requests, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn head_requests_answer_like_get_without_a_body() {
    let (server, _store, root) = serve("head", &[("dri", 1, 3, b"xyz")]);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(
        text.contains("Content-Length: 3"),
        "HEAD advertises GET's length: {text}"
    );
    assert!(text.ends_with("\r\n\r\n"), "no body after the head: {text}");
    // HEAD of a missing record reports the real status, still body-less.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"HEAD /record/dri/v1/ff HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 404"), "{text}");
    assert!(text.ends_with("\r\n\r\n"), "{text}");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn corrupt_records_are_never_served() {
    let (server, store, root) = serve("corrupt", &[("dri", 1, 5, b"soon to be damaged")]);
    let path = store.entry_path("dri", 1, 5);
    let mut bytes = fs::read(&path).expect("record");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&path, &bytes).expect("tamper");

    let request = format!("GET /record/dri/v1/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n", 5);
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 404, "a corrupt record is a miss, not a payload");
    assert_eq!(store.stats().corrupt, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn the_service_is_read_only() {
    let (server, store, root) = serve("readonly", &[("dri", 1, 1, b"x")]);
    let before = store.disk_usage();
    for request in [
        "PUT /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
        "DELETE /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\n\r\n".to_owned(),
        "POST /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
    ] {
        assert_eq!(raw_request(server.addr(), &request).0, 405, "{request}");
    }
    assert_eq!(store.disk_usage(), before, "no write path exists");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn client_fetches_and_validates() {
    let (server, _store, root) = serve("client", &[("dri", 2, 0xfeed, b"remote payload")]);
    let remote = RemoteStore::new(server.addr().to_string());
    assert_eq!(
        remote.fetch("dri", 2, 0xfeed).as_deref(),
        Some(&b"remote payload"[..])
    );
    assert_eq!(remote.fetch("dri", 2, 0xbeef), None, "clean miss");
    let stats = remote.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.bytes_fetched, 14);
    assert!(!remote.is_disabled());
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batch_fetches_many_records_in_one_round_trip() {
    let (server, _store, root) = serve(
        "batch",
        &[
            ("baseline", 1, 10, b"b10".as_slice()),
            ("dri", 1, 11, b"d11".as_slice()),
            ("dri", 1, 12, b"d12".as_slice()),
        ],
    );
    let remote = RemoteStore::new(server.addr().to_string());
    let entries = [
        ("baseline", 1u32, 10u128),
        ("dri", 1, 999), // miss
        ("dri", 1, 11),
        ("dri", 1, 12),
    ];
    let results = remote.fetch_batch(&entries);
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].as_deref(), Some(&b"b10"[..]));
    assert_eq!(results[1], None);
    assert_eq!(results[2].as_deref(), Some(&b"d11"[..]));
    assert_eq!(results[3].as_deref(), Some(&b"d12"[..]));
    let stats = remote.stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 1);
    assert_eq!(server.stats().batch_requests, 1);

    // A malformed batch body is rejected wholesale.
    let (status, _) = raw_request(
        server.addr(),
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nbad entry",
    );
    assert_eq!(status, 400);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn many_concurrent_readers_are_served() {
    let payload: &[u8] = b"hot record everyone wants";
    let (server, _store, root) = serve("concurrent", &[("dri", 1, 42, payload)]);
    let addr = server.addr();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(move || {
                let remote = RemoteStore::new(addr.to_string());
                for _ in 0..10 {
                    assert_eq!(remote.fetch("dri", 1, 42).as_deref(), Some(payload));
                }
            });
        }
    });
    assert_eq!(server.stats().records_served, 80);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}
