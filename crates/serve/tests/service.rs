//! The service's wire contract, exercised over real loopback sockets:
//! every endpooint, the end-to-end validation chain (disk → server →
//! wire → client), and the read-only guarantee.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use dri_serve::{RemoteStore, Server};
use dri_store::{validate_record, ResultStore};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-serve-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// A server over a fresh store seeded with `records`, on an ephemeral
/// loopback port.
fn serve(tag: &str, records: &[(&str, u32, u128, &[u8])]) -> (Server, Arc<ResultStore>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    for &(kind, schema, key, payload) in records {
        store.save(kind, schema, key, payload);
    }
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", 4).expect("bind");
    (server, store, root)
}

/// Raw one-shot HTTP exchange (independent of the client code under test).
fn raw_request(addr: std::net::SocketAddr, request: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[head_end + 4..].to_vec())
}

#[test]
fn healthz_and_stats_answer() {
    let (server, _store, root) = serve("health", &[("dri", 1, 7, b"payload")]);
    let (status, body) = raw_request(server.addr(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");

    let (status, body) = raw_request(server.addr(), "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    let json = String::from_utf8(body).expect("json utf-8");
    assert!(json.contains("\"records\":1"), "{json}");
    assert!(json.contains("\"generation\":0"), "{json}");
    assert!(json.contains("\"store\":{"), "{json}");

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn records_serve_the_exact_on_disk_bytes() {
    let payload: &[u8] = b"counters travel bit-identically";
    let (server, store, root) = serve("record", &[("baseline", 3, 0xabcd, payload)]);
    let path = format!(
        "GET /record/baseline/v{}/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
        3, 0xabcd
    );
    let (status, body) = raw_request(server.addr(), &path);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        fs::read(store.entry_path("baseline", 3, 0xabcd)).expect("on-disk record"),
        "wire bytes must be the on-disk record, byte for byte"
    );
    assert_eq!(validate_record(&body, 3, 0xabcd), Some(payload));

    // Misses and wrong schemas are clean 404s.
    for miss in [
        format!(
            "GET /record/baseline/v3/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0x9999
        ),
        format!(
            "GET /record/baseline/v4/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0xabcd
        ),
        format!(
            "GET /record/dri/v3/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n",
            0xabcd
        ),
    ] {
        assert_eq!(raw_request(server.addr(), &miss).0, 404);
    }
    // Malformed record paths are 400s, never filesystem probes.
    assert_eq!(
        raw_request(
            server.addr(),
            "GET /record/../v3/00 HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .0,
        400
    );
    assert_eq!(
        raw_request(server.addr(), "GET /nothing HTTP/1.1\r\nHost: t\r\n\r\n").0,
        404
    );

    let stats = server.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.bad_requests, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn head_requests_answer_like_get_without_a_body() {
    let (server, _store, root) = serve("head", &[("dri", 1, 3, b"xyz")]);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(
        text.contains("Content-Length: 3"),
        "HEAD advertises GET's length: {text}"
    );
    assert!(text.ends_with("\r\n\r\n"), "no body after the head: {text}");
    // HEAD of a missing record reports the real status, still body-less.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"HEAD /record/dri/v1/ff HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let text = String::from_utf8(response).expect("utf-8");
    assert!(text.starts_with("HTTP/1.1 404"), "{text}");
    assert!(text.ends_with("\r\n\r\n"), "{text}");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn corrupt_records_are_never_served() {
    let (server, store, root) = serve("corrupt", &[("dri", 1, 5, b"soon to be damaged")]);
    let path = store.entry_path("dri", 1, 5);
    let mut bytes = fs::read(&path).expect("record");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&path, &bytes).expect("tamper");

    let request = format!("GET /record/dri/v1/{:032x} HTTP/1.1\r\nHost: t\r\n\r\n", 5);
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 404, "a corrupt record is a miss, not a payload");
    assert_eq!(store.stats().corrupt, 1);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn the_service_is_read_only() {
    let (server, store, root) = serve("readonly", &[("dri", 1, 1, b"x")]);
    let before = store.disk_usage();
    for request in [
        "PUT /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
        "DELETE /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\n\r\n".to_owned(),
        "POST /record/dri/v1/01 HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nz".to_owned(),
    ] {
        assert_eq!(raw_request(server.addr(), &request).0, 405, "{request}");
    }
    assert_eq!(store.disk_usage(), before, "no write path exists");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn client_fetches_and_validates() {
    let (server, _store, root) = serve("client", &[("dri", 2, 0xfeed, b"remote payload")]);
    let remote = RemoteStore::new(server.addr().to_string());
    assert_eq!(
        remote.fetch("dri", 2, 0xfeed).as_deref(),
        Some(&b"remote payload"[..])
    );
    assert_eq!(remote.fetch("dri", 2, 0xbeef), None, "clean miss");
    let stats = remote.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.bytes_fetched, 14);
    assert!(!remote.is_disabled());
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batch_fetches_many_records_in_one_round_trip() {
    let (server, _store, root) = serve(
        "batch",
        &[
            ("baseline", 1, 10, b"b10".as_slice()),
            ("dri", 1, 11, b"d11".as_slice()),
            ("dri", 1, 12, b"d12".as_slice()),
        ],
    );
    let remote = RemoteStore::new(server.addr().to_string());
    let entries = [
        ("baseline", 1u32, 10u128),
        ("dri", 1, 999), // miss
        ("dri", 1, 11),
        ("dri", 1, 12),
    ];
    let results = remote.fetch_batch(&entries);
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].as_deref(), Some(&b"b10"[..]));
    assert_eq!(results[1], None);
    assert_eq!(results[2].as_deref(), Some(&b"d11"[..]));
    assert_eq!(results[3].as_deref(), Some(&b"d12"[..]));
    let stats = remote.stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 1);
    assert_eq!(server.stats().batch_requests, 1);

    // A malformed batch body is rejected wholesale.
    let (status, _) = raw_request(
        server.addr(),
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nbad entry",
    );
    assert_eq!(status, 400);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn many_concurrent_readers_are_served() {
    let payload: &[u8] = b"hot record everyone wants";
    let (server, _store, root) = serve("concurrent", &[("dri", 1, 42, payload)]);
    let addr = server.addr();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(move || {
                let remote = RemoteStore::new(addr.to_string());
                for _ in 0..10 {
                    assert_eq!(remote.fetch("dri", 1, 42).as_deref(), Some(payload));
                }
            });
        }
    });
    assert_eq!(server.stats().hits, 80);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn empty_batch_plans_touch_nothing() {
    // No server needed: an empty plan must not open a socket, count a
    // request, or cost a round trip.
    let remote = RemoteStore::new("127.0.0.1:1"); // nothing listens here
    let results = remote.fetch_batch(&[]);
    assert!(results.is_empty());
    let stats = remote.stats();
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.batch_round_trips, 0);
    assert!(!remote.is_disabled());
}

#[test]
fn oversized_batches_split_into_chunked_round_trips() {
    let records: Vec<(String, u32, u128, Vec<u8>)> = (0..10u128)
        .map(|k| {
            (
                "dri".to_owned(),
                1u32,
                k,
                format!("payload-{k}").into_bytes(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, u32, u128, &[u8])> = records
        .iter()
        .map(|(kind, schema, key, payload)| (kind.as_str(), *schema, *key, payload.as_slice()))
        .collect();
    let (server, _store, root) = serve("chunked", &borrowed);
    let remote = RemoteStore::new(server.addr().to_string());
    let entries: Vec<(&str, u32, u128)> = records
        .iter()
        .map(|(kind, schema, key, _)| (kind.as_str(), *schema, *key))
        .collect();

    // 10 entries at a chunk size of 3 → 4 consecutive round-trips, with
    // results still zipped back in request order.
    let results = remote.fetch_batch_chunked(&entries, 3);
    assert_eq!(results.len(), 10);
    for (k, result) in results.iter().enumerate() {
        assert_eq!(
            result.as_deref(),
            Some(format!("payload-{k}").as_bytes()),
            "entry {k}"
        );
    }
    let stats = remote.stats();
    assert_eq!(stats.batch_round_trips, 4, "ceil(10 / 3) chunks");
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.hits, 10);
    assert_eq!(server.stats().batch_requests, 4);

    // The default chunk swallows the same plan in a single round-trip.
    let remote = RemoteStore::new(server.addr().to_string());
    let results = remote.fetch_batch(&entries);
    assert_eq!(results.iter().filter(|r| r.is_some()).count(), 10);
    assert_eq!(remote.stats().batch_round_trips, 1);

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn batches_over_the_server_cap_are_rejected_wholesale() {
    let (server, _store, root) = serve("cap", &[("dri", 1, 1, b"x")]);
    let mut body = String::new();
    for key in 0..=dri_serve::server::MAX_BATCH as u128 {
        body.push_str(&format!("dri 1 {key:032x}\n"));
    }
    let request = format!(
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 400, "one reference over MAX_BATCH is a 400");
    assert_eq!(server.stats().bad_requests, 1);
    // A full-cap batch is still served.
    let mut body = String::new();
    for key in 0..dri_serve::server::MAX_BATCH as u128 {
        body.push_str(&format!("dri 1 {key:032x}\n"));
    }
    let request = format!(
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = raw_request(server.addr(), &request);
    assert_eq!(status, 200);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

/// Serves one rigged `POST /batch` response from a raw loopback socket,
/// returning the address to point a client at. The body is framed by the
/// caller, so tests can hand the client responses a well-behaved server
/// would never produce.
fn rig_batch_server(response_body: Vec<u8>) -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind rigged server");
    let addr = listener.local_addr().expect("rigged addr");
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let request = dri_serve::http::read_request(&mut stream).expect("read request");
        assert_eq!(request.path, "/batch");
        dri_serve::http::write_response(
            &mut stream,
            200,
            "OK",
            "application/octet-stream",
            &response_body,
        )
        .expect("write rigged response");
    });
    addr
}

#[test]
fn corrupt_frame_inside_a_good_batch_fails_only_that_entry() {
    // Build two genuine records to flank a frame whose bytes fail
    // end-to-end validation (right length, garbage content).
    let root = temp_root("rigged-batch");
    let store = ResultStore::open(&root).expect("open store");
    store.save("dri", 1, 1, b"first ok");
    store.save("dri", 1, 3, b"third ok");
    let record_1 = fs::read(store.entry_path("dri", 1, 1)).expect("record 1");
    let record_3 = fs::read(store.entry_path("dri", 1, 3)).expect("record 3");

    let mut body = Vec::new();
    let mut frame = |bytes: &[u8]| {
        body.push(1u8);
        body.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        body.extend_from_slice(bytes);
    };
    frame(&record_1);
    frame(&vec![0xA5u8; record_1.len()]); // corrupt: fails validation
    frame(&record_3);

    let addr = rig_batch_server(body);
    let remote = RemoteStore::new(addr.to_string());
    let results = remote.fetch_batch(&[("dri", 1, 1), ("dri", 1, 2), ("dri", 1, 3)]);
    assert_eq!(results[0].as_deref(), Some(&b"first ok"[..]));
    assert_eq!(results[1], None, "the corrupt frame degrades to a miss");
    assert_eq!(results[2].as_deref(), Some(&b"third ok"[..]));
    let stats = remote.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.corrupt, 1);
    assert_eq!(stats.errors, 0, "a bad frame is not a transport failure");
    assert!(!remote.is_disabled());
    let _ = fs::remove_dir_all(root);
}

#[test]
fn truncated_batch_responses_fail_the_remaining_entries() {
    let root = temp_root("truncated-batch");
    let store = ResultStore::open(&root).expect("open store");
    store.save("dri", 1, 1, b"whole");
    let record = fs::read(store.entry_path("dri", 1, 1)).expect("record");

    let mut body = Vec::new();
    body.push(1u8);
    body.extend_from_slice(&(record.len() as u64).to_le_bytes());
    body.extend_from_slice(&record);
    // Second frame: header promises more bytes than follow.
    body.push(1u8);
    body.extend_from_slice(&(record.len() as u64).to_le_bytes());
    body.extend_from_slice(&record[..4]);

    let addr = rig_batch_server(body);
    let remote = RemoteStore::new(addr.to_string());
    let results = remote.fetch_batch(&[("dri", 1, 1), ("dri", 1, 2), ("dri", 1, 3)]);
    assert_eq!(results[0].as_deref(), Some(&b"whole"[..]));
    assert_eq!(results[1], None);
    assert_eq!(results[2], None);
    let stats = remote.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.corrupt, 2, "every unframed entry counts corrupt");
    let _ = fs::remove_dir_all(root);
}
