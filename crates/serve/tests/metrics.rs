//! The `GET /metrics` contract: the Prometheus text exposition parses,
//! and its counters agree with `GET /stats` — by construction they read
//! the same atomics, and this test holds that construction in place.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use dri_serve::Server;
use dri_store::ResultStore;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-metrics-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn raw_request(addr: std::net::SocketAddr, request: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("receive");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[head_end + 4..].to_vec())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    raw_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// The value of the sample named `name` (optionally carrying a label
/// set, e.g. `request_latency{quantile="0.5"}`) in an exposition.
fn sample(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (sample_name, value) = line.split_once(' ')?;
            (sample_name == name).then(|| value.parse().expect("numeric sample"))
        })
}

/// The integer behind `"key":` in the (flat-enough) stats JSON.
fn stats_field(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).expect("stats field") + needle.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer stats field")
}

#[test]
fn metrics_exposition_parses_and_agrees_with_stats() {
    let root = temp_root("agree");
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    let payload = b"the served payload";
    let record_key = 0x5eedu128;
    store.save("dri", 1, record_key, payload);
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", 4).expect("bind");
    let addr = server.addr();

    // A workload the counters can disagree about: one hit, one miss,
    // one bad request.
    let path = format!("/record/dri/v1/{record_key:032x}");
    assert_eq!(get(addr, &path).0, 200);
    assert_eq!(
        get(addr, &format!("/record/dri/v1/{:032x}", 0xdeadu128)).0,
        404
    );
    assert_eq!(get(addr, "/record/bogus").0, 400);

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf-8 exposition");

    // Structural validity: every line is a comment or `name[{labels}] value`.
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample line has one space");
        assert!(!name.is_empty(), "named sample in {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "numeric value in {line:?} (got {value:?})"
        );
        samples += 1;
    }
    assert!(samples > 10, "a real exposition has many samples:\n{text}");

    // The scrape counted the workload exactly.
    assert_eq!(sample(&text, "dri_serve_hits_total"), Some(1.0));
    assert_eq!(sample(&text, "dri_serve_misses_total"), Some(1.0));
    assert_eq!(sample(&text, "dri_serve_bad_requests_total"), Some(1.0));
    assert_eq!(sample(&text, "dri_serve_store_records"), Some(1.0));

    // The latency summary covers every request routed before the scrape
    // (the scrape's own request is recorded after its body is built).
    let latency_count = sample(&text, "dri_serve_request_latency_ns_count").expect("summary count");
    assert_eq!(latency_count, 3.0, "hit + miss + bad request");
    let p50 = sample(&text, "dri_serve_request_latency_ns{quantile=\"0.5\"}").expect("p50");
    let max = sample(&text, "dri_serve_request_latency_ns_max").expect("max gauge");
    assert!(p50 > 0.0 && max >= p50, "p50 {p50} <= max {max}");

    // And /stats — snapshotting the very same atomics — must agree on
    // every counter the scrapes themselves do not advance.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let json = String::from_utf8(body).expect("utf-8 stats");
    for (metric, field) in [
        ("dri_serve_hits_total", "hits"),
        ("dri_serve_misses_total", "misses"),
        ("dri_serve_bad_requests_total", "bad_requests"),
        ("dri_serve_records_accepted_total", "records_accepted"),
        ("dri_serve_faults_injected_total", "faults_injected"),
    ] {
        assert_eq!(
            sample(&text, metric),
            Some(stats_field(&json, field) as f64),
            "{metric} vs {field}"
        );
    }

    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

/// Every JSON key in `doc`, in document order — a serde-free scan that
/// relies only on the stats document's flat shape (keys never contain
/// escapes) and is exact for it.
fn json_keys(doc: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = doc;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        if after[end + 1..].starts_with(':') {
            keys.push(after[..end].to_owned());
        }
        rest = &after[end + 1..];
    }
    keys
}

#[test]
fn stats_json_schema_is_the_documented_key_set() {
    // The /stats document is the contract `suite --store-stats`, the CI
    // accounting greps, and the client's `ServerStats` scraper all parse
    // with substring scans — so its key set (names *and* order) is
    // pinned here, serde-free, exactly as `server::stats_json` renders
    // it. Renaming, dropping, or reordering a counter must fail this
    // test, not silently break a scraper.
    let root = temp_root("schema");
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", 2).expect("bind");
    let (status, body) = get(server.addr(), "/stats");
    assert_eq!(status, 200);
    let json = String::from_utf8(body).expect("utf-8 stats");
    assert_eq!(
        json_keys(&json),
        [
            "records",
            "bytes",
            "generation",
            "writable",
            "requests",
            "hits",
            "misses",
            "bad_requests",
            "batch_requests",
            "bytes_served",
            "push_round_trips",
            "records_accepted",
            "writes_rejected",
            "faults_injected",
            "leases",
            "claims",
            "granted",
            "reclaimed",
            "renewed",
            "completed",
            "rejected",
            "store",
            "hits",
            "misses",
            "corrupt",
            "journal",
            "enabled",
            "depth",
            "batches",
            "appended",
            "fsyncs",
            "compactions",
            "compacted",
            "event_loop",
            "enabled",
            "accepted",
            "read_events",
            "write_events",
            "backpressure",
            "idle_reaped",
            "open",
            "ring",
            "shards",
            "replicas",
        ],
        "the /stats key set is a published schema:\n{json}"
    );
    // The write-side trio exists under exactly the names the client's
    // RemoteStats snapshot uses, so the two reports align by grep.
    for field in ["records_accepted", "writes_rejected", "push_round_trips"] {
        assert_eq!(stats_field(&json, field), 0, "{field} starts at zero");
    }
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn metrics_includes_the_store_tier_histograms() {
    let root = temp_root("store-tier");
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    store.save("dri", 1, 1, b"x");
    // A disk-tier load so the global registry's store histograms have a
    // sample (the store registers them process-wide at open).
    assert!(store.load("dri", 1, 1).is_some());
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", 2).expect("bind");
    let (status, body) = get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf-8");
    assert!(
        sample(&text, "dri_store_save_ns_count").unwrap_or(0.0) >= 1.0,
        "store save histogram rides along:\n{text}"
    );
    assert!(
        sample(&text, "dri_store_load_ns_count").unwrap_or(0.0) >= 1.0,
        "store load histogram rides along:\n{text}"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}
