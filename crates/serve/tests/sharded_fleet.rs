//! The sharded fleet, end to end over real loopback sockets: writes
//! replicate to every owning shard, reads split by primary and fail
//! over to replicas when a shard dies mid-campaign, and the per-shard
//! accounting sums to the fleet totals.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use dri_serve::{BatchEntry, PushOutcome, Server, ShardedStore};
use dri_store::{frame_record, ResultStore};

const TOKEN: &str = "fleet-secret";
const KIND: &str = "dri";
const SCHEMA: u32 = 1;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-fleet-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// One writable fleet member on an ephemeral port, with its own store.
fn shard(tag: &str) -> (Server, Arc<ResultStore>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    let server =
        Server::bind_with_token(Arc::clone(&store), "127.0.0.1:0", 2, Some(TOKEN.to_owned()))
            .expect("bind shard");
    (server, store, root)
}

/// A deterministic, distinguishable payload per key.
fn payload(key: u128) -> Vec<u8> {
    let mut bytes = key.to_le_bytes().to_vec();
    bytes.extend_from_slice(b"fleet-payload");
    bytes
}

#[test]
fn fleet_replicates_writes_splits_reads_and_survives_a_shard_death() {
    let (server_a, _store_a, root_a) = shard("a");
    let (server_b, _store_b, root_b) = shard("b");
    let (server_c, _store_c, root_c) = shard("c");
    let addrs = [
        server_a.addr().to_string(),
        server_b.addr().to_string(),
        server_c.addr().to_string(),
    ];
    // ShardedStore canonicalizes membership by sorting addresses, so
    // reorder the server handles to match the ring's shard indices.
    let mut sorted = addrs.clone();
    sorted.sort();
    let mut servers: Vec<Option<Server>> = vec![None, None, None];
    for (server, addr) in [server_a, server_b, server_c].into_iter().zip(&addrs) {
        let idx = sorted.iter().position(|a| a == addr).expect("addr in ring");
        servers[idx] = Some(server);
    }
    let fleet = ShardedStore::new(addrs.clone(), 2, Some(TOKEN.to_owned())).expect("fleet");
    assert!(fleet.is_sharded());
    assert_eq!(fleet.ring().replicas(), 2);

    // Push a grid's worth of records through key-sharded routing.
    let keys: Vec<u128> = (0..40u128).map(|i| i * 0x9e37_79b9 + 7).collect();
    let records: Vec<Vec<u8>> = keys
        .iter()
        .map(|&key| frame_record(SCHEMA, key, &payload(key)))
        .collect();
    let entries: Vec<(&str, u32, u128, &[u8])> = keys
        .iter()
        .zip(&records)
        .map(|(&key, record)| (KIND, SCHEMA, key, record.as_slice()))
        .collect();
    let (outcomes, push_trips) = fleet.push_batch(&entries);
    assert!(push_trips >= 2, "a sharded push must fan out");
    assert!(
        outcomes.iter().all(|o| *o == PushOutcome::Accepted),
        "every record must land: {outcomes:?}"
    );

    // Replication invariant: each record lives on exactly its owners —
    // ask every shard directly (bypassing ring routing) for every key.
    for &key in &keys {
        let owners = fleet.ring().owner_indices(key);
        assert_eq!(owners.len(), 2);
        for (idx, shard_client) in fleet.shards().iter().enumerate() {
            let held = shard_client.fetch(KIND, SCHEMA, key).is_some();
            assert_eq!(
                held,
                owners.contains(&idx),
                "key {key:x} on shard {idx} (owners {owners:?})"
            );
        }
    }

    // Accounting: with replication 2, the fleet accepted each record
    // twice — once per owning shard — and the per-shard server counters
    // sum to exactly that.
    let accepted_total: u64 = servers
        .iter()
        .flatten()
        .map(|server| server.stats().records_accepted)
        .sum();
    assert_eq!(accepted_total, 2 * keys.len() as u64);
    let client_total = fleet.stats();
    assert_eq!(client_total.records_accepted, 2 * keys.len() as u64);

    // A fleet-routed batch fetch answers every key from primaries only.
    let refs: Vec<(&str, u32, u128)> = keys.iter().map(|&key| (KIND, SCHEMA, key)).collect();
    let (fetched, _trips) = fleet.fetch_batch_outcomes(&refs, 4096);
    for (&key, outcome) in keys.iter().zip(&fetched) {
        assert_eq!(
            outcome,
            &BatchEntry::Hit(payload(key)),
            "warm fleet fetch of {key:x}"
        );
    }

    // A key nobody pushed is a definitive fleet-wide miss (one pass, no
    // failover — the primary *answered*).
    let (missing, _) = fleet.fetch_batch_outcomes(&[(KIND, SCHEMA, 0xdead_beef)], 4096);
    assert_eq!(missing, [BatchEntry::Miss]);

    // SIGKILL one shard (in-process: shut it down) and replay the whole
    // grid cold through a fresh fleet client: every key whose primary
    // died degrades to its replica, so the replay still sees 105/105 —
    // here 40/40 — hits and zero unknowns.
    let dead_idx = fleet.ring().primary(keys[0]);
    let dead_addr = fleet.shards()[dead_idx].addr().to_owned();
    servers[dead_idx]
        .take()
        .expect("dead shard handle")
        .shutdown();
    let cold = ShardedStore::new(addrs, 2, None).expect("cold fleet");
    let (degraded, _trips) = cold.fetch_batch_outcomes(&refs, 4096);
    for (&key, outcome) in keys.iter().zip(&degraded) {
        assert_eq!(
            outcome,
            &BatchEntry::Hit(payload(key)),
            "degraded fetch of {key:x} after {dead_addr} died"
        );
    }
    // The survivors carry per-shard counters; the dead shard carries
    // errors. Nothing was re-simulated, everything was read.
    let shard_stats = cold.shard_stats();
    assert_eq!(shard_stats.len(), 3);
    assert!(shard_stats[dead_idx].1.errors > 0, "dead shard saw errors");
    assert_eq!(cold.stats().hits, keys.len() as u64);

    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    for root in [root_a, root_b, root_c] {
        let _ = fs::remove_dir_all(root);
    }
}

#[test]
fn single_remote_fallback_on_malformed_shard_list() {
    // Malformed DRI_SHARDS must warn and degrade to the single-remote
    // protocol, never panic (this test owns both variables for its
    // duration; no other test in this binary reads them).
    std::env::set_var(dri_serve::SHARDS_ENV, "not-an-address");
    std::env::set_var(dri_serve::REMOTE_ENV, "127.0.0.1:19");
    let fallback = ShardedStore::from_env().expect("fallback to DRI_REMOTE");
    assert!(!fallback.is_sharded());
    assert_eq!(fallback.describe(), "127.0.0.1:19");

    // A well-formed list routes as a fleet, with replicas from the env.
    std::env::set_var(dri_serve::SHARDS_ENV, "127.0.0.1:19,127.0.0.1:21");
    std::env::set_var(dri_serve::REPLICAS_ENV, "2");
    let fleet = ShardedStore::from_env().expect("fleet from env");
    assert!(fleet.is_sharded());
    assert_eq!(fleet.ring().replicas(), 2);

    // And with no fleet *and* no single remote, the tier stays opt-in.
    std::env::remove_var(dri_serve::SHARDS_ENV);
    std::env::remove_var(dri_serve::REPLICAS_ENV);
    std::env::remove_var(dri_serve::REMOTE_ENV);
    assert!(ShardedStore::from_env().is_none());
}

#[test]
fn direct_shard_clients_share_the_token() {
    let (server, _store, root) = shard("token");
    let addr = server.addr().to_string();
    let fleet = ShardedStore::new([addr], 1, Some(TOKEN.to_owned())).expect("fleet");
    assert!(fleet.has_token());
    let record = frame_record(SCHEMA, 99, &payload(99));
    assert_eq!(fleet.push(KIND, SCHEMA, 99, &record), PushOutcome::Accepted);
    assert_eq!(fleet.fetch(KIND, SCHEMA, 99), Some(payload(99)));

    // The wrong token is rejected per shard, mirroring RemoteStore.
    let imposter = ShardedStore::new(
        [fleet.shards()[0].addr().to_owned()],
        1,
        Some("wrong".to_owned()),
    )
    .expect("imposter fleet");
    assert_eq!(
        imposter.push(KIND, SCHEMA, 7, &frame_record(SCHEMA, 7, b"x")),
        PushOutcome::Rejected
    );
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}
