//! The group-commit journal's durability contract, proven end-to-end:
//!
//! * **acked ⇒ durable** — a batch the server answered `200` for is
//!   served bit-identical after the process is `exit`-killed mid-write
//!   and restarted (the `crash:N` fault tears a frame exactly the way a
//!   `kill -9` between `write` and `fsync` would);
//! * **unacked ⇒ invisible** — no record from the torn, never-acked
//!   frame is ever served, before or after compaction.
//!
//! One test runs the real `dri-serve` binary and really kills it; the
//! other drives the journal in-process to pin the read-through and
//! compaction bookkeeping.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use dri_serve::{JournalConfig, RemoteStore, Server};
use dri_store::{frame_record, ResultStore};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dri-journal-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A distinctive payload for grid point `i` of batch `tag`.
fn payload(tag: u8, i: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(64);
    for w in 0..8u64 {
        bytes.extend_from_slice(&(tag as u64 * 1_000_003 + i * 17 + w).to_le_bytes());
    }
    bytes
}

fn key(tag: u8, i: u64) -> u128 {
    ((tag as u128) << 64) | i as u128
}

/// Spawns the real `dri-serve` binary on an ephemeral port and returns
/// the child plus the address it printed on stdout.
fn spawn_server(root: &PathBuf, token: &str, fault: Option<&str>) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dri-serve"));
    cmd.arg("--store")
        .arg(root)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .env("DRI_TOKEN", token)
        .env("DRI_JOURNAL", "1")
        .env_remove("DRI_FAULT")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(spec) = fault {
        cmd.env("DRI_FAULT", spec);
    }
    let mut child = cmd.spawn().expect("spawn dri-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("listening line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("addr in listening line")
        .to_owned();
    (child, addr)
}

fn batch_entries(tag: u8, n: u64) -> Vec<(u128, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let k = key(tag, i);
            (k, frame_record(1, k, &payload(tag, i)))
        })
        .collect()
}

fn push_one_batch(
    client: &RemoteStore,
    entries: &[(u128, Vec<u8>)],
) -> Vec<dri_serve::PushOutcome> {
    let refs: Vec<(&str, u32, u128, &[u8])> = entries
        .iter()
        .map(|(k, rec)| ("dri", 1u32, *k, rec.as_slice()))
        .collect();
    client.push_batch(&refs).0
}

#[test]
fn acked_batches_survive_a_mid_push_crash_and_the_torn_batch_stays_invisible() {
    let root = temp_root("kill");
    let token = "crash-proof-secret";

    // `crash:3`: the 3rd accepted connection (= the 3rd batch push —
    // batches A and B each complete in one exchange) tears its journal
    // frame mid-append and exits without a response, exactly a `kill -9`
    // between `write` and `fsync`.
    let (mut child, addr) = spawn_server(&root, token, Some("crash:3"));
    let client = RemoteStore::with_token(addr, Some(token.to_owned()));

    let batch_a = batch_entries(b'a', 5);
    let batch_b = batch_entries(b'b', 5);
    let batch_c = batch_entries(b'c', 5);

    for (name, batch) in [("A", &batch_a), ("B", &batch_b)] {
        let outcomes = push_one_batch(&client, batch);
        assert!(
            outcomes
                .iter()
                .all(|o| *o == dri_serve::PushOutcome::Accepted),
            "batch {name} is acked: {outcomes:?}"
        );
    }
    let outcomes = push_one_batch(&client, &batch_c);
    assert!(
        outcomes
            .iter()
            .all(|o| *o != dri_serve::PushOutcome::Accepted),
        "the crashed batch is never acked: {outcomes:?}"
    );
    let status = child.wait().expect("server exits");
    assert_eq!(status.code(), Some(17), "the crash fault's exit code");

    // Restart over the same root, no fault spec: recovery replays the
    // two synced frames and drops the torn one whole.
    let (mut child, addr) = spawn_server(&root, token, None);
    let survivor = RemoteStore::with_token(addr, Some(token.to_owned()));
    for (name, batch, tag) in [("A", &batch_a, b'a'), ("B", &batch_b, b'b')] {
        for (i, (k, _)) in batch.iter().enumerate() {
            assert_eq!(
                survivor.fetch("dri", 1, *k).as_deref(),
                Some(payload(tag, i as u64).as_slice()),
                "acked batch {name} record {i} is served bit-identical after the crash"
            );
        }
    }
    for (i, (k, _)) in batch_c.iter().enumerate() {
        assert_eq!(
            survivor.fetch("dri", 1, *k),
            None,
            "unacked record {i} from the torn frame is invisible"
        );
    }
    child.kill().expect("stop survivor");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn journaled_pushes_read_through_before_and_after_compaction() {
    let root = temp_root("readthrough");
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    let token = "journal-secret";
    // An hour-long compact interval: this test drives compaction by
    // hand so the counters are deterministic.
    let config = JournalConfig {
        commit_window: Duration::ZERO,
        compact_interval: Duration::from_secs(3600),
        ..JournalConfig::default()
    };
    let server = Server::bind_with_journal(
        Arc::clone(&store),
        "127.0.0.1:0",
        2,
        Some(token.to_owned()),
        30_000,
        None,
        Some(config),
    )
    .expect("bind");
    let client = RemoteStore::with_token(server.addr().to_string(), Some(token.to_owned()));

    let batch = batch_entries(b'j', 8);
    let outcomes = push_one_batch(&client, &batch);
    assert!(outcomes
        .iter()
        .all(|o| *o == dri_serve::PushOutcome::Accepted));

    // One fsync bought the whole batch, and reads hit the journal index
    // (nothing has been compacted into record files yet).
    let stats = server.journal_stats().expect("journal enabled");
    assert_eq!(stats.batches, 1, "one group-commit batch");
    assert_eq!(stats.fsyncs, 1, "one fsync for the whole batch");
    assert_eq!(stats.depth, 8, "all records still journal-resident");
    for (i, (k, _)) in batch.iter().enumerate() {
        assert_eq!(
            client.fetch("dri", 1, *k).as_deref(),
            Some(payload(b'j', i as u64).as_slice()),
            "record {i} reads through the journal index"
        );
    }

    // Compaction drains the journal into record files; reads now fall
    // through to the store and the bytes are unchanged.
    assert_eq!(server.compact_journal().expect("compact"), 8);
    let stats = server.journal_stats().expect("journal enabled");
    assert_eq!(stats.depth, 0, "journal drained");
    assert_eq!(stats.compacted, 8);
    for (i, (k, _)) in batch.iter().enumerate() {
        assert_eq!(
            client.fetch("dri", 1, *k).as_deref(),
            Some(payload(b'j', i as u64).as_slice()),
            "record {i} is bit-identical from the store after compaction"
        );
    }

    // The client-visible stats document carries the journal block.
    let remote = client.server_stats().expect("server stats parse");
    assert_eq!(remote.journal_batches, 1);
    assert_eq!(remote.journal_fsyncs, 1);
    assert_eq!(remote.journal_depth, 0);
    assert_eq!(remote.journal_compacted, 8);

    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}
