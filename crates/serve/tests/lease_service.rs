//! The campaign scheduler's wire contract over real loopback sockets:
//! authenticated claim/renew/complete, expiry-then-reclaim between two
//! worker clients, lease stats in `/stats`, and the fault-injection
//! layer (503s retried transparently, torn responses caught by the
//! client's end-to-end checks, drops survived by backoff).

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use dri_serve::{FaultSpec, LeaseClaim, LeaseError, RemoteStore, Server};
use dri_store::ResultStore;

const TOKEN: &str = "lease-test-secret";

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("dri-lease-svc-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// A writable server with a short lease TTL and optional fault spec.
fn serve(tag: &str, ttl_ms: u64, faults: Option<&str>) -> (Server, Arc<ResultStore>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(ResultStore::open(&root).expect("open store"));
    let faults = faults.map(|spec| FaultSpec::parse(spec).expect("fault spec"));
    let server = Server::bind_with_options(
        Arc::clone(&store),
        "127.0.0.1:0",
        4,
        Some(TOKEN.to_owned()),
        ttl_ms,
        faults,
    )
    .expect("bind");
    (server, store, root)
}

fn worker(server: &Server) -> RemoteStore {
    RemoteStore::with_token(server.addr().to_string(), Some(TOKEN.to_owned()))
}

fn units(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| (*s).to_owned()).collect()
}

fn granted(claim: LeaseClaim) -> (String, u64) {
    match claim {
        LeaseClaim::Granted {
            unit, generation, ..
        } => (unit, generation),
        other => panic!("expected a grant, got {other:?}"),
    }
}

#[test]
fn claim_renew_complete_drain_over_the_wire() {
    let (server, _store, root) = serve("lifecycle", 60_000, None);
    let w1 = worker(&server);
    let plan = units(&["compress", "gcc"]);

    let (unit_a, gen_a) = granted(w1.lease_claim("fig3", "w1", &plan).unwrap());
    assert_eq!(unit_a, "compress", "name order is deterministic");
    let deadline = w1.lease_renew("fig3", &unit_a, gen_a, "w1").unwrap();
    assert!(deadline > 0);
    w1.lease_complete("fig3", &unit_a, gen_a, "w1").unwrap();

    // A second worker takes the other unit; re-seeding is idempotent.
    let w2 = worker(&server);
    let (unit_b, gen_b) = granted(w2.lease_claim("fig3", "w2", &plan).unwrap());
    assert_eq!(unit_b, "gcc");

    // Everything claimed or done: the first worker is told to wait...
    assert_eq!(
        w1.lease_claim("fig3", "w1", &plan).unwrap(),
        LeaseClaim::Wait { claimed: 1 }
    );
    // ...and once the last unit completes, the campaign drains.
    w2.lease_complete("fig3", &unit_b, gen_b, "w2").unwrap();
    assert_eq!(
        w1.lease_claim("fig3", "w1", &plan).unwrap(),
        LeaseClaim::Drained
    );

    let stats = server.stats();
    assert_eq!(stats.lease_granted, 2);
    assert_eq!(stats.lease_completed, 2);
    assert_eq!(stats.lease_reclaimed, 0, "healthy run reclaims nothing");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn expired_lease_is_reclaimed_and_the_dead_workers_handle_goes_stale() {
    // 50 ms TTL: w1 "dies" by simply not renewing.
    let (server, _store, root) = serve("reclaim", 50, None);
    let w1 = worker(&server);
    let w2 = worker(&server);
    let plan = units(&["compress"]);

    let (unit, gen1) = granted(w1.lease_claim("fig3", "w1", &plan).unwrap());
    // Live claim: w2 must wait, not steal.
    assert_eq!(
        w2.lease_claim("fig3", "w2", &plan).unwrap(),
        LeaseClaim::Wait { claimed: 1 }
    );
    std::thread::sleep(std::time::Duration::from_millis(80));

    // Expired: w2's claim is a reclaim with a bumped generation.
    let reclaim = w2.lease_claim("fig3", "w2", &plan).unwrap();
    let LeaseClaim::Granted {
        unit: unit2,
        generation: gen2,
        reclaimed,
        ..
    } = reclaim
    else {
        panic!("expected a reclaim grant, got {reclaim:?}");
    };
    assert_eq!(unit2, unit);
    assert!(reclaimed);
    assert_eq!(gen2, gen1 + 1);

    // The dead worker's stale handle is refused on both calls.
    assert_eq!(
        w1.lease_renew("fig3", &unit, gen1, "w1"),
        Err(LeaseError::Refused("not-owner".to_owned()))
    );
    assert_eq!(
        w1.lease_complete("fig3", &unit, gen1, "w1"),
        Err(LeaseError::Refused("not-owner".to_owned()))
    );
    w2.lease_complete("fig3", &unit, gen2, "w2").unwrap();

    let stats = server.stats();
    assert_eq!(stats.lease_reclaimed, 1);
    assert_eq!(stats.lease_rejected, 2);
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn renew_after_expiry_is_refused_even_unreclaimed() {
    let (server, _store, root) = serve("renew-expiry", 50, None);
    let w1 = worker(&server);
    let (unit, generation) = granted(w1.lease_claim("c", "w1", &units(&["u"])).unwrap());
    std::thread::sleep(std::time::Duration::from_millis(80));
    // Nobody reclaimed the unit, but the heartbeat still loses: a
    // renewal racing a reclaim must lose deterministically.
    assert_eq!(
        w1.lease_renew("c", &unit, generation, "w1"),
        Err(LeaseError::Refused("expired".to_owned()))
    );
    // The late *completion* is still honoured — the work was pushed.
    w1.lease_complete("c", &unit, generation, "w1").unwrap();
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn lease_endpoints_require_the_write_token() {
    let (server, store, root) = serve("auth", 60_000, None);
    let impostor = RemoteStore::with_token(server.addr().to_string(), Some("wrong".to_owned()));
    assert_eq!(
        impostor.lease_claim("c", "w", &units(&["u"])),
        Err(LeaseError::Denied(401))
    );
    let unsigned = RemoteStore::new(server.addr().to_string());
    assert_eq!(
        unsigned.lease_claim("c", "w", &units(&["u"])),
        Err(LeaseError::Denied(401))
    );
    server.shutdown();

    // A read-only server (no token at all) answers 405.
    let read_only = Server::bind(Arc::clone(&store), "127.0.0.1:0", 2).expect("bind read-only");
    let hopeful = RemoteStore::with_token(read_only.addr().to_string(), Some(TOKEN.to_owned()));
    assert_eq!(
        hopeful.lease_claim("c", "w", &units(&["u"])),
        Err(LeaseError::Denied(405))
    );
    read_only.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn stats_json_carries_the_lease_and_fault_counters() {
    let (server, _store, root) = serve("stats-json", 50, None);
    let w1 = worker(&server);
    let w2 = worker(&server);
    let (unit, _) = granted(w1.lease_claim("c", "w1", &units(&["u"])).unwrap());
    std::thread::sleep(std::time::Duration::from_millis(80));
    let (unit2, gen2) = granted(w2.lease_claim("c", "w2", &units(&["u"])).unwrap());
    assert_eq!(unit2, unit);
    w2.lease_complete("c", &unit2, gen2, "w2").unwrap();

    // Scrape /stats exactly as CI's chaos-smoke job does.
    let probe = worker(&server);
    let (status, body) = {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let head_end = response.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let status: u16 = std::str::from_utf8(&response[..head_end])
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, response[head_end + 4..].to_vec())
    };
    drop(probe);
    assert_eq!(status, 200);
    let json = String::from_utf8(body).unwrap();
    assert!(
        json.contains("\"leases\":{\"claims\":2,\"granted\":2,\"reclaimed\":1,"),
        "{json}"
    );
    assert!(json.contains("\"completed\":1"), "{json}");
    assert!(json.contains("\"faults_injected\":0"), "{json}");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn injected_faults_are_survived_by_retry_and_validation() {
    // Every 4th connection answers 503, every 7th tears its response.
    // Periods 4 and 7 guarantee at most two consecutive faulty
    // connections, so the 3-attempt retry budget always reaches a clean
    // one — every logical call must succeed.
    let (server, store, root) = serve("chaos", 60_000, Some("503:4,torn:7"));
    store.save("dri", 1, 7, b"chaos payload");
    let w = worker(&server);

    // 12 fetches: deterministic fault pattern, every one must succeed.
    for _ in 0..12 {
        assert_eq!(w.fetch("dri", 1, 7).as_deref(), Some(&b"chaos payload"[..]));
    }
    let stats = w.stats();
    assert!(stats.retries > 0, "503s/torn responses were retried");
    assert_eq!(stats.errors, 0, "no retry round was exhausted");
    assert!(!w.is_disabled(), "breaker never latched");

    // The lease control plane rides the same retry path.
    let (unit, generation) = granted(w.lease_claim("c", "w", &units(&["u"])).unwrap());
    w.lease_complete("c", &unit, generation, "w").unwrap();

    let server_stats = server.stats();
    assert!(server_stats.faults_injected > 0, "faults actually fired");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}

#[test]
fn dropped_connections_exhaust_into_breaker_counts_only_once_per_call() {
    // Every connection is dropped: each logical fetch burns its full
    // retry budget and counts exactly one breaker strike.
    let (server, _store, root) = serve("drop-all", 60_000, Some("drop:1"));
    let w = worker(&server);
    assert_eq!(w.fetch("dri", 1, 1), None);
    let stats = w.stats();
    assert_eq!(stats.errors, 1, "one exhausted round = one strike");
    assert_eq!(
        stats.retries,
        u64::from(dri_serve::client::RETRY_ATTEMPTS) - 1,
        "the other attempts were retries, not strikes"
    );
    assert!(!w.is_disabled(), "one strike is not enough to latch");
    server.shutdown();
    let _ = fs::remove_dir_all(root);
}
