//! # dri-serve — the shared result-store service tier
//!
//! PR 2 made simulation results free *across processes sharing a
//! filesystem*; this crate makes them free **across machines**: a
//! dependency-free (std `TcpListener` only — the build environment is
//! offline) HTTP/1.1 service that serves one [`dri_store::ResultStore`]
//! root to many concurrent readers, plus the matching client
//! ([`client::RemoteStore`]) that `dri-experiments` wires into
//! `SimSession` as the tier between the local disk cache and a fresh
//! simulation (**memory → disk → remote → simulate**).
//!
//! Reads are open; **writes are opt-in and authenticated**. By default
//! the service is read-only — the single writer is whatever campaign
//! populates the store on the serving host, and workers only heal their
//! *local* stores. Started with a `DRI_TOKEN` shared secret, the service
//! additionally accepts **pushes** from trusted workers (`PUT
//! /record/...`, `POST /batch-put`), each request proven with a keyed
//! tag over its own method, path, and body (see [`auth`]) — which is
//! what turns a fleet of sweep workers plus one central host into a
//! shared memoization system: every grid point is simulated exactly once
//! fleet-wide.
//!
//! ## Endpoints
//!
//! | method + path | response |
//! |---|---|
//! | `GET /healthz` | `200 ok` — liveness probe |
//! | `GET /stats` | `200` JSON: disk usage, generation, traffic counters |
//! | `GET /metrics` | `200` Prometheus text exposition of the same counters |
//! | `GET /record/<kind>/v<schema>/<key>` | `200` raw record bytes, or `404` |
//! | `POST /batch` | `200` framed records for a list of keys (see below) |
//! | `PUT /record/<kind>/v<schema>/<key>` | `200` record accepted; `401`/`405`/`400` |
//! | `POST /batch-put` | `200` + one status byte per frame; `401`/`405`/`400` |
//! | `POST /lease/claim` | `200` `granted`/`wait`/`drained`; `401`/`405`/`400` |
//! | `POST /lease/renew` | `200` `renewed`, or `409` refused |
//! | `POST /lease/complete` | `200` `completed`, or `409` refused |
//!
//! `<kind>` is a record kind (`baseline`, `dri`, …), `<schema>` the
//! decimal schema version, `<key>` the 032-hex content key. A record is
//! validated (magic/schema/key/length/checksum) **before** it is served —
//! a corrupt file is a `404`, and the remote reader re-validates the
//! bytes it receives, so the validation chain is end-to-end: disk →
//! server → wire → client. Pushed records travel the same chain in
//! reverse: the worker frames the full checksummed record
//! ([`dri_store::frame_record`]), the server re-validates it against the
//! schema and key the request *names* (a mismatch fails the entry), and
//! the payload lands through the store's atomic temp+rename write, so
//! racing GC and concurrent readers never observe a torn record.
//!
//! ## The push protocol
//!
//! `PUT /record/<kind>/v<schema>/<key>` carries one complete record as
//! its body. `POST /batch-put` carries repeated frames of
//! `[kind_len:u8][kind][schema:u32 LE][key:u128 LE][record_len:u64 LE][record]`
//! (at most [`server::MAX_BATCH`] frames, each record at most
//! [`server::MAX_PUSH_RECORD`] bytes) and answers with one status byte
//! per frame, in order: `1` accepted, `0` rejected — a corrupt,
//! key-mismatched, or oversized record fails **only its own entry**.
//! Structural damage (a broken length prefix, an over-cap batch) is a
//! wholesale `400`; a missing or invalid request tag is a `401`; any
//! write to a server started without `DRI_TOKEN` is a `405`.
//!
//! ## The batch protocol
//!
//! `POST /batch` takes a plain-text body, one record reference per line —
//! `<kind> <schema> <key-hex>` — and answers with one binary frame per
//! requested line, in request order: a status byte (`1` found, `0`
//! miss), then a little-endian `u64` length, then that many raw record
//! bytes (length 0 on a miss). One round-trip fetches a whole manifest's
//! worth of results — this is what `SimSession::prefetch` rides to
//! replay an entire sweep grid in a single exchange.
//!
//! Limits: the server rejects more than [`server::MAX_BATCH`] references
//! per request (`400`); the client splits larger plans into chunks of
//! [`client::BATCH_CHUNK`] (< the server cap) and counts each exchange
//! in [`RemoteStats::batch_round_trips`]. A frame failing end-to-end
//! validation fails only its own entry; a truncated response fails the
//! entries after it; a transport failure fails the chunk and feeds the
//! circuit breaker. See `ARCHITECTURE.md` for the full wire schema.
//!
//! ## The campaign scheduler
//!
//! The `/lease/*` endpoints broker the store's durable work-unit lease
//! table ([`dri_store::lease`]) to `suite --steal` workers: claim →
//! simulate → push → complete, with heartbeat renewals mid-sweep and
//! expired leases reclaimed by any survivor. Bodies and responses are
//! plain `key=value` text lines; all three endpoints require the same
//! keyed request tag as the push path, so only trusted workers can
//! schedule. The lease TTL comes from `DRI_LEASE_TTL_MS` (see
//! [`server::lease_ttl_from_env`]). Wire format details live in
//! `ARCHITECTURE.md` §Campaign scheduler.
//!
//! ## Fault injection
//!
//! For chaos tests, `DRI_FAULT` ([`fault::FaultSpec`]) makes the server
//! misbehave **deterministically by connection count**: drop
//! connections, delay handling, answer `503`, or tear responses
//! mid-body. Production servers never set it; CI's chaos job does, and
//! the client's retry/backoff plus `Content-Length` cross-check are the
//! defenses under test.
//!
//! ## Concurrency
//!
//! On Linux the default front-end is a **readiness-based event loop**
//! (see [`server::EVENT_LOOP_ENV`]): one reactor thread owns a
//! nonblocking listener and every connection through an epoll set,
//! parsing requests incrementally as bytes arrive and draining
//! responses under `EPOLLOUT` backpressure, while a worker pool sized
//! like `DRI_THREADS` runs the (potentially blocking) routing — journal
//! fsyncs, lease I/O, injected chaos delays. A slow peer costs a
//! buffer, never a thread. `DRI_EVENT_LOOP=0` (and every non-Linux
//! platform) selects the original thread-per-connection pool, whose
//! accept loop applies backpressure by blocking once all workers are
//! busy and the small handoff queue is full. Both front-ends share one
//! routing core, so every endpoint, limit, and fault behaves
//! identically under either.
//!
//! ## Sharding across a fleet
//!
//! One process serves one store; a *fleet* is N independent processes
//! plus client-side routing. [`ShardedStore`] consistent-hashes every
//! record key onto a deterministic [`dri_store::HashRing`] built from
//! [`SHARDS_ENV`] (`DRI_SHARDS=addr1,addr2,...`), replicating each
//! record to [`REPLICAS_ENV`] owners and failing reads over to
//! replicas when a shard dies — each shard keeps its own circuit
//! breaker, so one dead shard degrades only its own keys.

#![warn(missing_docs)]

pub mod auth;
pub mod client;
#[cfg(target_os = "linux")]
mod event_loop;
pub mod fault;
pub mod http;
pub mod server;
pub mod sharded;

pub use auth::TOKEN_ENV;
pub use client::{
    BatchEntry, LeaseClaim, LeaseError, PushOutcome, RemoteStats, RemoteStore, ServerStats,
    BATCH_CHUNK, REMOTE_ENV, TIMEOUT_ENV, WIRE_COMPRESS_ENV,
};
pub use fault::{FaultSpec, FAULT_ENV};
pub use server::{
    JournalConfig, ServeStats, Server, DEFAULT_LEASE_TTL_MS, EVENT_LOOP_ENV, LEASE_TTL_ENV,
};
pub use sharded::{ShardedStore, DEFAULT_REPLICAS, REPLICAS_ENV, SHARDS_ENV};

/// Worker threads for the connection pool: `DRI_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism (the
/// same sizing rule the simulation sweeps use).
pub fn default_workers() -> usize {
    std::env::var("DRI_THREADS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}
