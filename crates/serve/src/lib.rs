//! # dri-serve — the read-only result-store service tier
//!
//! PR 2 made simulation results free *across processes sharing a
//! filesystem*; this crate makes them free **across machines**: a
//! dependency-free (std `TcpListener` only — the build environment is
//! offline) HTTP/1.1 service that serves one [`dri_store::ResultStore`]
//! root to many concurrent readers, plus the matching client
//! ([`client::RemoteStore`]) that `dri-experiments` wires into
//! `SimSession` as the tier between the local disk cache and a fresh
//! simulation (**memory → disk → remote → simulate**).
//!
//! The service is strictly **read-only** (many readers, one writer): the
//! single writer is whatever campaign populates the store on the serving
//! host; workers never write back over the wire — they heal their *local*
//! store instead, so a record crosses the network at most once per
//! worker.
//!
//! ## Endpoints
//!
//! | method + path | response |
//! |---|---|
//! | `GET /healthz` | `200 ok` — liveness probe |
//! | `GET /stats` | `200` JSON: disk usage, generation, traffic counters |
//! | `GET /record/<kind>/v<schema>/<key>` | `200` raw record bytes, or `404` |
//! | `POST /batch` | `200` framed records for a list of keys (see below) |
//!
//! `<kind>` is a record kind (`baseline`, `dri`, …), `<schema>` the
//! decimal schema version, `<key>` the 032-hex content key. A record is
//! validated (magic/schema/key/length/checksum) **before** it is served —
//! a corrupt file is a `404`, and the remote reader re-validates the
//! bytes it receives, so the validation chain is end-to-end: disk →
//! server → wire → client.
//!
//! ## The batch protocol
//!
//! `POST /batch` takes a plain-text body, one record reference per line —
//! `<kind> <schema> <key-hex>` — and answers with one binary frame per
//! requested line, in request order: a status byte (`1` found, `0`
//! miss), then a little-endian `u64` length, then that many raw record
//! bytes (length 0 on a miss). One round-trip fetches a whole manifest's
//! worth of results — this is what `SimSession::prefetch` rides to
//! replay an entire sweep grid in a single exchange.
//!
//! Limits: the server rejects more than [`server::MAX_BATCH`] references
//! per request (`400`); the client splits larger plans into chunks of
//! [`client::BATCH_CHUNK`] (< the server cap) and counts each exchange
//! in [`RemoteStats::batch_round_trips`]. A frame failing end-to-end
//! validation fails only its own entry; a truncated response fails the
//! entries after it; a transport failure fails the chunk and feeds the
//! circuit breaker. See `ARCHITECTURE.md` for the full wire schema.
//!
//! ## Concurrency
//!
//! Connections are handled by a thread-per-connection pool sized like
//! `DRI_THREADS` (default: available parallelism) — see
//! [`server::Server`]. The accept loop applies backpressure by blocking
//! once all workers are busy and the small handoff queue is full.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use client::{BatchEntry, RemoteStats, RemoteStore, BATCH_CHUNK, REMOTE_ENV};
pub use server::{ServeStats, Server};

/// Worker threads for the connection pool: `DRI_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism (the
/// same sizing rule the simulation sweeps use).
pub fn default_workers() -> usize {
    std::env::var("DRI_THREADS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}
