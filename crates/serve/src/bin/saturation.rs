//! `saturation` — fleet saturation trajectory for the bench record.
//!
//! Sweeps client connection counts against an in-process fleet and
//! reports sustained throughput (records/s), for every cell of
//! {fetch, push} × {event-loop, thread-pool front-end} × {1 shard,
//! 3 shards}. Each measured op is a full HTTP request on a fresh
//! loopback connection — exactly the connection churn a worker fleet
//! generates.
//!
//! The two op kinds saturate different resources. Warm fetches are
//! CPU-bound and show how each front-end holds up as connections
//! multiply. Journaled pushes are bound by the group-commit window —
//! a per-*server* latency floor every PUT pays to share its fsync — so
//! their aggregate throughput scales with the number of shards even on
//! one core: that is the cell the headline check pins (3 shards must
//! beat 1 on push records/s).
//!
//! ```text
//! saturation --out BENCH_10.json          # the CI trajectory artifact
//! saturation --ops 500 --connections 1,4  # a quick local smoke
//! ```
//!
//! Results land as JSON on `--out` (stdout summary always), shaped like
//! the repo's `BENCH_*.json` trajectory files.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dri_serve::{JournalConfig, Server, ShardedStore, DEFAULT_LEASE_TTL_MS, EVENT_LOOP_ENV};
use dri_store::{frame_record, ResultStore};

const KIND: &str = "dri";
const SCHEMA: u32 = 1;
const TOKEN: &str = "saturation-bench";
/// Connection worker threads per server — deliberately small, so the
/// push cells hit the worker-capacity × commit-window ceiling a real
/// fleet member has, instead of scaling with client threads.
const WORKERS: usize = 2;

const USAGE: &str = "\
usage: saturation [--records N] [--ops N] [--push-ops N]
                  [--connections LIST] [--out FILE]

Measures fleet throughput (records/s) per client connection count, for
each op kind (warm fetch, journaled push), front-end (epoll event loop
vs thread pool) and fleet size (1 vs 3 shards). Servers run in-process
on ephemeral ports over temp stores; nothing external is touched.

options:
  --records N         distinct warm records to seed per fleet (default 64)
  --ops N             fetches measured per cell (default 2000)
  --push-ops N        pushes measured per cell (default 600)
  --connections LIST  comma-separated client thread counts (default 1,4,8)
  --out FILE          write the JSON trajectory point here
  --help              this text";

struct Args {
    records: usize,
    ops: usize,
    push_ops: usize,
    connections: Vec<usize>,
    out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        records: 64,
        ops: 2000,
        push_ops: 600,
        connections: vec![1, 4, 8],
        out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--records" => {
                parsed.records = positive(it.next().ok_or("--records needs a count")?)?;
            }
            "--ops" => {
                parsed.ops = positive(it.next().ok_or("--ops needs a count")?)?;
            }
            "--push-ops" => {
                parsed.push_ops = positive(it.next().ok_or("--push-ops needs a count")?)?;
            }
            "--connections" => {
                let raw = it.next().ok_or("--connections needs a list")?;
                parsed.connections = raw
                    .split(',')
                    .map(|part| positive(part.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => {
                parsed.out = Some(it.next().ok_or("--out needs a file")?.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn positive(raw: impl AsRef<str>) -> Result<usize, String> {
    let raw = raw.as_ref();
    raw.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("expected a positive integer, got `{raw}`"))
}

/// One measured cell of the sweep.
struct Cell {
    op: &'static str,
    front_end: &'static str,
    shards: usize,
    connections: usize,
    records: usize,
    elapsed_ns: u128,
    records_per_s: f64,
}

/// A running fleet: servers on ephemeral ports over temp stores.
struct Fleet {
    servers: Vec<Server>,
    roots: Vec<PathBuf>,
    addrs: Vec<String>,
}

impl Fleet {
    fn start(shards: usize, tag: &str) -> std::io::Result<Fleet> {
        let mut servers = Vec::new();
        let mut roots = Vec::new();
        let mut addrs = Vec::new();
        for shard in 0..shards {
            let root = std::env::temp_dir().join(format!(
                "dri-saturation-{tag}-{shard}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&root);
            let store = Arc::new(ResultStore::open(&root).map_err(std::io::Error::other)?);
            let server = Server::bind_with_journal(
                store,
                "127.0.0.1:0",
                WORKERS,
                Some(TOKEN.to_owned()),
                DEFAULT_LEASE_TTL_MS,
                None,
                Some(JournalConfig::default()),
            )?;
            addrs.push(server.addr().to_string());
            servers.push(server);
            roots.push(root);
        }
        Ok(Fleet {
            servers,
            roots,
            addrs,
        })
    }

    fn stop(self) {
        for server in self.servers {
            server.shutdown();
        }
        for root in self.roots {
            let _ = fs::remove_dir_all(root);
        }
    }
}

/// Spreads a small index across the 64-bit keyspace.
fn widen(index: u64) -> u128 {
    (index.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 11) as u128
}

/// A deterministic, well-spread key grid.
fn keys(records: usize) -> Vec<u128> {
    (0..records as u64).map(widen).collect()
}

/// Seeds the fleet warm and verifies every record landed.
fn seed(fleet: &ShardedStore, keys: &[u128]) -> Result<(), String> {
    let records: Vec<Vec<u8>> = keys
        .iter()
        .map(|&key| frame_record(SCHEMA, key, &key.to_le_bytes()))
        .collect();
    let entries: Vec<(&str, u32, u128, &[u8])> = keys
        .iter()
        .zip(&records)
        .map(|(&key, record)| (KIND, SCHEMA, key, record.as_slice()))
        .collect();
    let (outcomes, _) = fleet.push_batch(&entries);
    if outcomes
        .iter()
        .any(|o| *o != dri_serve::PushOutcome::Accepted)
    {
        return Err("seed push was not fully accepted".to_owned());
    }
    Ok(())
}

/// Runs `ops` single-record operations split across `connections`
/// client threads (each with its own [`ShardedStore`], so its own
/// sockets), returning sustained records/s. `op` gets the client and a
/// globally unique op index.
fn measure(
    addrs: &[String],
    connections: usize,
    ops: usize,
    op: impl Fn(&ShardedStore, usize) + Sync,
) -> (u128, f64) {
    let next = AtomicUsize::new(0);
    let op = &op;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..connections {
            scope.spawn(|| {
                let client = ShardedStore::new(addrs.to_vec(), 1, Some(TOKEN.to_owned()))
                    .expect("client fleet");
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= ops {
                        break;
                    }
                    op(&client, index);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let rate = ops as f64 / elapsed.as_secs_f64();
    (elapsed.as_nanos(), rate)
}

fn json_escape(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"pr\": 10,\n  \"bench\": \"saturation\",\n");
    let host = std::env::var("BENCH_HOST").unwrap_or_else(|_| "unknown".to_owned());
    out.push_str(&format!("  \"host\": \"{}\",\n", json_escape(&host)));
    if let Ok(commit) = std::env::var("BENCH_COMMIT") {
        out.push_str(&format!("  \"commit\": \"{}\",\n", json_escape(&commit)));
    }
    out.push_str(
        "  \"note\": \"single-record ops over fresh loopback connections; each cell is \
         op x front-end x fleet-size x client-connections. fetch is warm and CPU-bound; \
         push is group-commit-journal bound (per-server commit window), the axis where \
         shard count multiplies throughput\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (idx, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"name\": \"saturation/{}/{}/{}shard/{}conn\",\n      \
             \"op\": \"{}\",\n      \
             \"front_end\": \"{}\",\n      \"shards\": {},\n      \"connections\": {},\n      \
             \"records\": {},\n      \"elapsed_ns\": {},\n      \"records_per_s\": {:.1}\n    }}{}\n",
            cell.op,
            cell.front_end,
            cell.shards,
            cell.connections,
            cell.op,
            cell.front_end,
            cell.shards,
            cell.connections,
            cell.records,
            cell.elapsed_ns,
            cell.records_per_s,
            if idx + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let key_grid = keys(args.records);
    let mut cells = Vec::new();
    for front_end in ["event-loop", "thread-pool"] {
        // The front-end is latched per server at bind time from the
        // environment; no servers are running while this flips.
        std::env::set_var(
            EVENT_LOOP_ENV,
            if front_end == "event-loop" { "1" } else { "0" },
        );
        for shards in [1usize, 3] {
            let fleet = match Fleet::start(shards, front_end) {
                Ok(fleet) => fleet,
                Err(err) => {
                    eprintln!("error: cannot start {shards}-shard fleet: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let client = ShardedStore::new(fleet.addrs.clone(), 1, Some(TOKEN.to_owned()))
                .expect("seed client");
            if let Err(msg) = seed(&client, &key_grid) {
                eprintln!("error: {msg}");
                fleet.stop();
                return ExitCode::FAILURE;
            }
            for &connections in &args.connections {
                // Warm reads: CPU-bound, isolates the front-end.
                let keys = &key_grid;
                let (elapsed_ns, records_per_s) =
                    measure(&fleet.addrs, connections, args.ops, |client, index| {
                        let key = keys[index % keys.len()];
                        assert!(
                            client.fetch(KIND, SCHEMA, key).is_some(),
                            "warm fetch of {key:x} missed"
                        );
                    });
                eprintln!(
                    "saturation: fetch {front_end:>11} {shards} shard(s) {connections:>2} conn: \
                     {records_per_s:>9.1} records/s ({} ops)",
                    args.ops
                );
                cells.push(Cell {
                    op: "fetch",
                    front_end,
                    shards,
                    connections,
                    records: args.ops,
                    elapsed_ns,
                    records_per_s,
                });

                // Journaled writes: commit-window bound per server, so
                // aggregate throughput scales with the shard count.
                let salt = (cells.len() as u128) << 96;
                let (elapsed_ns, records_per_s) =
                    measure(&fleet.addrs, connections, args.push_ops, |client, index| {
                        let key = salt | widen(index as u64);
                        let record = frame_record(SCHEMA, key, &key.to_le_bytes());
                        assert_eq!(
                            client.push(KIND, SCHEMA, key, &record),
                            dri_serve::PushOutcome::Accepted,
                            "push of {key:x} refused"
                        );
                    });
                eprintln!(
                    "saturation: push  {front_end:>11} {shards} shard(s) {connections:>2} conn: \
                     {records_per_s:>9.1} records/s ({} ops)",
                    args.push_ops
                );
                cells.push(Cell {
                    op: "push",
                    front_end,
                    shards,
                    connections,
                    records: args.push_ops,
                    elapsed_ns,
                    records_per_s,
                });
            }
            fleet.stop();
        }
    }
    std::env::remove_var(EVENT_LOOP_ENV);

    let rendered = render(&cells);
    if let Some(path) = &args.out {
        if let Err(err) = fs::write(path, &rendered) {
            eprintln!("error: cannot write `{path}`: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("saturation: wrote {path}");
    } else {
        print!("{rendered}");
    }

    // The trajectory's headline claim, machine-checked here so CI fails
    // the moment sharding stops buying throughput: at the best measured
    // concurrency, 3 event-loop shards beat 1 on push records/s (the
    // commit-window-bound axis — warm fetches are client-CPU-bound on
    // small hosts and may not separate).
    let best = |shards: usize| {
        cells
            .iter()
            .filter(|c| c.op == "push" && c.front_end == "event-loop" && c.shards == shards)
            .map(|c| c.records_per_s)
            .fold(0.0f64, f64::max)
    };
    let (one, three) = (best(1), best(3));
    if three <= one {
        eprintln!("error: 3 shards ({three:.1} rec/s) did not beat 1 shard ({one:.1} rec/s)");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "saturation: 3 shards sustain {:.2}x 1 shard on pushes",
        three / one
    );
    ExitCode::SUCCESS
}
