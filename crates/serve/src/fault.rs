//! Deterministic fault injection for chaos-testing the service tier.
//!
//! A `DRI_FAULT` spec is a comma-separated list of clauses, each
//! `action:every[:arg]`, applied per **accepted connection** against a
//! monotonically increasing connection counter — the *N*-th connection
//! always suffers the same fate, so a chaos test that fails is
//! re-runnable bit-for-bit. Actions:
//!
//! | clause         | effect on every *every*-th connection                |
//! |----------------|------------------------------------------------------|
//! | `drop:N`       | close the socket without writing a response          |
//! | `delay:N:MS`   | sleep `MS` milliseconds before handling the request  |
//! | `503:N`        | answer `503 Service Unavailable` without routing     |
//! | `torn:N`       | send a head with the full `Content-Length` but only  |
//! |                | half the body, then close (a torn response)          |
//! | `crash:N`      | kill the whole process after reading the request —   |
//! |                | a journaled `batch-put` leaves a torn frame behind,  |
//! |                | nothing is acked (a `kill -9` mid-fsync)             |
//!
//! Example: `DRI_FAULT=drop:7,delay:5:40,torn:13` drops every 7th
//! connection, delays every 5th by 40 ms, and tears every 13th response.
//! Counting starts at connection 1, so `drop:7` first fires on the 7th —
//! a spec never kills the very first health check. Clauses are checked
//! in the order written; the first that fires wins (a connection suffers
//! at most one fault, except `delay`, which composes with later clauses
//! because delaying then answering is exactly its point).
//!
//! The faults exercise distinct defenses: `drop` and `delay` the
//! transport retry/backoff path, `503` the HTTP-level retry path, and
//! `torn` the `Content-Length` cross-check in the response reader. None
//! of those corrupt durable state — the server's writes stay atomic;
//! only the wire misbehaves. `crash` is the exception by design: it
//! exists to prove the group-commit journal's recovery contract, so it
//! deliberately leaves a torn, unacked journal frame on disk before
//! dying. Restart the server *without* the fault spec to recover.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Environment variable holding the fault spec (absent/empty = no
/// faults, the production default).
pub const FAULT_ENV: &str = "DRI_FAULT";

/// What to do to one connection (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Close the socket before writing anything.
    Drop,
    /// Sleep this long, then handle the request normally (unless a later
    /// clause also fires).
    Delay(Duration),
    /// Answer `503 Service Unavailable` without routing.
    Error503,
    /// Write a head declaring the full body length, then only half the
    /// body.
    Torn,
    /// Read the request, tear a journal frame if one was being written,
    /// then `exit` the whole process without responding.
    Crash,
}

/// One parsed `action:every[:arg]` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultClause {
    action: FaultAction,
    /// Fires when `connection % every == 0`.
    every: u64,
}

/// A parsed `DRI_FAULT` spec plus the shared connection counter.
#[derive(Debug, Default)]
pub struct FaultSpec {
    clauses: Vec<FaultClause>,
    connections: AtomicU64,
}

impl FaultSpec {
    /// Parses a spec string. `None` with a reason on any malformed
    /// clause — a chaos run with a typo'd spec must fail loudly at
    /// startup, not silently run faultless.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut clauses = Vec::new();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let mut parts = clause.split(':');
            let action = parts.next().unwrap_or("");
            let every: u64 = parts
                .next()
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("fault clause {clause:?}: need a period >= 1"))?;
            let arg = parts.next();
            if parts.next().is_some() {
                return Err(format!("fault clause {clause:?}: too many fields"));
            }
            let action = match (action, arg) {
                ("drop", None) => FaultAction::Drop,
                ("delay", Some(ms)) => {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("fault clause {clause:?}: bad delay ms"))?;
                    FaultAction::Delay(Duration::from_millis(ms))
                }
                ("503", None) => FaultAction::Error503,
                ("torn", None) => FaultAction::Torn,
                ("crash", None) => FaultAction::Crash,
                _ => {
                    return Err(format!(
                    "fault clause {clause:?}: want drop:N, delay:N:MS, 503:N, torn:N, or crash:N"
                ))
                }
            };
            clauses.push(FaultClause { action, every });
        }
        if clauses.is_empty() {
            return Err("empty fault spec".to_owned());
        }
        Ok(FaultSpec {
            clauses,
            connections: AtomicU64::new(0),
        })
    }

    /// Reads [`FAULT_ENV`]; `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<FaultSpec>, String> {
        match std::env::var(FAULT_ENV) {
            Ok(spec) if !spec.trim().is_empty() => FaultSpec::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Advances the connection counter and returns the faults that fire
    /// on this connection, in clause order. At most one non-delay action
    /// is returned (the first that fires); any delays that also fire
    /// precede it.
    pub fn next_connection(&self) -> Vec<FaultAction> {
        let n = self.connections.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fired = Vec::new();
        for clause in &self.clauses {
            if !n.is_multiple_of(clause.every) {
                continue;
            }
            let is_delay = matches!(clause.action, FaultAction::Delay(_));
            fired.push(clause.action);
            if !is_delay {
                break;
            }
        }
        fired
    }

    /// Total connections counted so far (for `/stats`).
    pub fn connections_seen(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// The spec in canonical clause form, for the startup banner.
    pub fn describe(&self) -> String {
        let clauses: Vec<String> = self
            .clauses
            .iter()
            .map(|c| match c.action {
                FaultAction::Drop => format!("drop:{}", c.every),
                FaultAction::Delay(d) => format!("delay:{}:{}", c.every, d.as_millis()),
                FaultAction::Error503 => format!("503:{}", c.every),
                FaultAction::Torn => format!("torn:{}", c.every),
                FaultAction::Crash => format!("crash:{}", c.every),
            })
            .collect();
        clauses.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_actions_and_round_trips() {
        let spec = FaultSpec::parse("drop:7, delay:5:40,503:9,torn:13,crash:99").unwrap();
        assert_eq!(spec.describe(), "drop:7,delay:5:40,503:9,torn:13,crash:99");
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "",
            "drop",
            "drop:0",
            "drop:x",
            "drop:7:extra",
            "delay:5",
            "delay:5:ms",
            "503:1:2",
            "explode:3",
            "torn:",
            "crash:0",
            "crash:4:9",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn firing_is_deterministic_by_connection_counter() {
        let spec = FaultSpec::parse("drop:3,503:4").unwrap();
        let fates: Vec<Vec<FaultAction>> = (0..12).map(|_| spec.next_connection()).collect();
        for (i, fate) in fates.iter().enumerate() {
            let n = (i + 1) as u64;
            let expect = if n.is_multiple_of(3) {
                vec![FaultAction::Drop]
            } else if n.is_multiple_of(4) {
                vec![FaultAction::Error503]
            } else {
                vec![]
            };
            assert_eq!(*fate, expect, "connection {n}");
        }
        assert_eq!(spec.connections_seen(), 12);

        // An identical spec replays the identical fate sequence.
        let replay = FaultSpec::parse("drop:3,503:4").unwrap();
        let again: Vec<Vec<FaultAction>> = (0..12).map(|_| replay.next_connection()).collect();
        assert_eq!(fates, again);
    }

    #[test]
    fn delay_composes_with_a_following_action() {
        let spec = FaultSpec::parse("delay:2:5,drop:4").unwrap();
        assert_eq!(spec.next_connection(), vec![]);
        assert_eq!(
            spec.next_connection(),
            vec![FaultAction::Delay(Duration::from_millis(5))]
        );
        assert_eq!(spec.next_connection(), vec![]);
        assert_eq!(
            spec.next_connection(),
            vec![
                FaultAction::Delay(Duration::from_millis(5)),
                FaultAction::Drop
            ]
        );
    }

    #[test]
    fn env_absent_means_no_faults() {
        // FAULT_ENV is not set in the test environment.
        assert!(matches!(FaultSpec::from_env(), Ok(None) | Ok(Some(_))));
    }
}
