//! The remote-store client: what a cold worker process uses to pull
//! records from a warm central `dri-serve` instance.
//!
//! The client never trusts the wire more than the store trusts the disk:
//! every fetched record is re-validated with
//! [`dri_store::validate_record`] (magic, schema, embedded key, length,
//! checksum) before a byte of it is decoded, so a truncated proxy
//! response or a bit-flipped frame degrades to a miss — the caller
//! recomputes, exactly as it would for local corruption.
//!
//! The client is also built to *fail fast and stay out of the way*:
//! short connect timeouts (tunable via [`TIMEOUT_ENV`]), bounded retry
//! with exponential backoff for **transient** transport failures, and a
//! circuit breaker that disables the remote tier for the rest of the
//! process after [`MAX_CONSECUTIVE_ERRORS`] straight *exhausted* retry
//! rounds (with one warning) — a dead server must not add a timeout to
//! every sweep point of a campaign. Failures split three ways:
//!
//! * **Transient** (refused/reset connection, timeout, torn response,
//!   5xx): retried up to [`RETRY_ATTEMPTS`] times with exponential
//!   backoff + deterministic jitter; only a fully exhausted round counts
//!   once against the breaker.
//! * **Hard auth** (`401`/`405` on the write path): never retried —
//!   the server *answered*, definitively. Pushes latch off immediately.
//! * **Breaker open**: every later call is absorbed locally.
//!
//! The client also carries the scheduler's control plane: the
//! [`RemoteStore::lease_claim`] / [`RemoteStore::lease_renew`] /
//! [`RemoteStore::lease_complete`] calls a `suite --steal` worker loops
//! over. Lease traffic deliberately bypasses the data-plane breaker: a
//! worker whose *fetches* gave up must still heartbeat and complete the
//! unit it holds (the steal loop has its own bounded claim-failure
//! bailout).

use std::borrow::Cow;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dri_store::{compress, validate_record};
use dri_telemetry::{trace, Histogram, Registry, Span, TraceEvent};

use crate::http::read_response;

/// Environment variable naming the remote result service
/// (`host:port`, an optional `http://` prefix is accepted).
pub const REMOTE_ENV: &str = "DRI_REMOTE";

/// Environment variable gating wire compression. **Default on**: push
/// bodies travel delta-varint compressed (when that actually shrinks
/// them) under an `X-DRI-Encoding` header, and batch fetches advertise
/// `X-DRI-Accept-Encoding` so the server may compress its response. Set
/// to `0` to force the raw protocol (e.g. against a pre-journal server
/// for byte-identical wire captures). Either way the protocol stays
/// negotiated: a server that never saw the header answers raw.
pub const WIRE_COMPRESS_ENV: &str = "DRI_WIRE_COMPRESS";

/// Resolves [`WIRE_COMPRESS_ENV`]: on unless explicitly `0` (or empty).
fn wire_compress_from_env() -> bool {
    match std::env::var(WIRE_COMPRESS_ENV) {
        Ok(raw) => {
            let raw = raw.trim();
            !raw.is_empty() && raw != "0"
        }
        Err(_) => true,
    }
}

/// Transport failures tolerated before the breaker opens.
pub const MAX_CONSECUTIVE_ERRORS: u32 = 3;

/// Most record references [`RemoteStore::fetch_batch`] puts in one
/// `POST /batch` request. Larger plans are split into consecutive
/// round-trips of this size; the value is deliberately below the
/// server's own per-request cap (`dri_serve::server::MAX_BATCH`), so a
/// well-formed client chunk is never rejected wholesale.
pub const BATCH_CHUNK: usize = 4096;

/// Most body bytes one `POST /batch-put` chunk may carry — well under
/// the server's request-body cap (`crate::http::MAX_BODY`, 64 MiB), so
/// a count-full chunk of unusually large records can never build a
/// request the server drops at the transport layer (which would feed
/// the read-path circuit breaker for a sizing problem, not a dead
/// server). A single over-budget record still travels alone; the server
/// answers for it per-entry.
pub const PUSH_BODY_BUDGET: usize = 16 * 1024 * 1024;

/// Environment variable overriding both socket timeouts, in
/// milliseconds: connect uses the value as-is, read/write use five times
/// it (a slow *response* is worth more patience than a dead *connect*).
/// Unparsable or zero values warn once and fall back to the defaults,
/// the `DRI_THREADS` convention.
pub const TIMEOUT_ENV: &str = "DRI_REMOTE_TIMEOUT_MS";

/// Attempts per exchange: the first try plus bounded retries for
/// transient failures. Definitive answers (2xx/4xx) never retry.
pub const RETRY_ATTEMPTS: u32 = 3;

/// First-retry backoff; doubles per retry up to [`BACKOFF_CAP`], plus
/// deterministic jitter of at most half the step.
const BACKOFF_BASE: Duration = Duration::from_millis(25);
const BACKOFF_CAP: Duration = Duration::from_millis(200);

const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// The socket timeouts in force, resolved once per client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Timeouts {
    connect: Duration,
    io: Duration,
}

impl Timeouts {
    fn default_pair() -> Timeouts {
        Timeouts {
            connect: CONNECT_TIMEOUT,
            io: IO_TIMEOUT,
        }
    }

    /// Resolves [`TIMEOUT_ENV`] (see its docs for the semantics).
    fn from_env() -> Timeouts {
        static WARNED: std::sync::Once = std::sync::Once::new();
        let Ok(raw) = std::env::var(TIMEOUT_ENV) else {
            return Timeouts::default_pair();
        };
        match parse_timeout_ms(&raw) {
            Some(connect_ms) => Timeouts {
                connect: Duration::from_millis(connect_ms),
                io: Duration::from_millis(connect_ms.saturating_mul(5)),
            },
            None => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring unparsable {TIMEOUT_ENV}={raw:?} \
                         (want a positive integer of milliseconds); using the defaults"
                    );
                });
                Timeouts::default_pair()
            }
        }
    }
}

/// `Some(ms)` for a positive integer, `None` otherwise.
fn parse_timeout_ms(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok().filter(|&ms| ms > 0)
}

/// Backoff before retry number `attempt` (1-based): exponential from
/// [`BACKOFF_BASE`], capped at [`BACKOFF_CAP`], plus a deterministic
/// jitter derived by hashing `salt` — reproducible (no clocks, no RNG),
/// but de-synchronized across a fleet of workers whose salts differ.
fn backoff_delay(attempt: u32, salt: u64) -> Duration {
    let step = BACKOFF_BASE
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(8))
        .min(BACKOFF_CAP);
    // FNV-1a over the salt bytes: cheap, stable, dependency-free.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in salt.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    let jitter_ms = hash % (step.as_millis() as u64 / 2).max(1);
    step + Duration::from_millis(jitter_ms)
}

/// Snapshot of one client's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Requests attempted (including ones the breaker swallowed).
    pub requests: u64,
    /// Records fetched and validated.
    pub hits: u64,
    /// Clean 404s / miss frames.
    pub misses: u64,
    /// Responses rejected by end-to-end validation.
    pub corrupt: u64,
    /// Transport errors (connect/read/write/HTTP failures).
    pub errors: u64,
    /// Payload bytes of validated records.
    pub bytes_fetched: u64,
    /// `POST /batch` exchanges that reached the server (a chunked batch
    /// counts once per chunk; empty plans, breaker-absorbed chunks, and
    /// connections that never opened count zero).
    pub batch_round_trips: u64,
    /// Records the server accepted through the write path — named after
    /// the server's own `/stats` counter `records_accepted`, which
    /// advances in lockstep with this one.
    pub records_accepted: u64,
    /// Records the server definitively rejected: failed authentication,
    /// a read-only server, or a corrupt/key-mismatched frame. Mirrors
    /// the server's `/stats` counter `writes_rejected`.
    pub writes_rejected: u64,
    /// `PUT` / `POST /batch-put` exchanges that reached the server
    /// (the client-side mirror of the server's `push_round_trips`).
    pub push_round_trips: u64,
    /// Transient failures that were retried (each backoff sleep counts
    /// one). `errors` counts only *exhausted* rounds, so under flaky-but-
    /// recoverable transport this climbs while `errors` stays at zero.
    pub retries: u64,
}

/// One entry's outcome in a [`RemoteStore::fetch_batch_outcomes`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEntry {
    /// A validated record's payload.
    Hit(Vec<u8>),
    /// The server definitively answered with a miss frame: the record
    /// does not exist there, and re-asking (until the store is re-seeded)
    /// is wasted traffic.
    Miss,
    /// The record's state is unknown: a transport failure, a truncated
    /// response, or bytes that failed end-to-end validation. A later
    /// fetch could still succeed.
    Failed,
}

impl BatchEntry {
    /// Collapses the outcome to the plain `fetch_batch` shape
    /// (`Some(payload)` on a hit, `None` otherwise).
    pub fn into_payload(self) -> Option<Vec<u8>> {
        match self {
            BatchEntry::Hit(payload) => Some(payload),
            BatchEntry::Miss | BatchEntry::Failed => None,
        }
    }
}

/// One record's outcome in a [`RemoteStore::push`] /
/// [`RemoteStore::push_batch_chunked`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The server validated the record and landed it in its store.
    Accepted,
    /// The server definitively refused the record — bad or missing
    /// token, a read-only server, or a frame that failed validation.
    /// Retrying without changing something is wasted traffic.
    Rejected,
    /// The record's fate is unknown: a transport failure or a truncated
    /// response. The record survives in the worker's local tiers either
    /// way, so the worst case is another worker re-simulating it.
    Failed,
}

/// A granted-or-not answer from `POST /lease/claim`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseClaim {
    /// One unit to execute, with the handle needed to renew/complete it.
    Granted {
        /// The work unit (a benchmark name).
        unit: String,
        /// Claim generation — quote it in renew/complete.
        generation: u64,
        /// Expiry instant (server wall-clock ms).
        deadline_ms: u64,
        /// TTL granted per claim/renewal.
        ttl_ms: u64,
        /// Whether this grant took over a dead worker's expired lease.
        reclaimed: bool,
    },
    /// Everything is claimed and live; back off and re-ask.
    Wait {
        /// Units currently claimed fleet-wide.
        claimed: u64,
    },
    /// Every unit is completed: the campaign is drained.
    Drained,
}

/// Why a lease call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// Transport failure after retries, or an unparsable response. The
    /// caller may try again later.
    Unavailable,
    /// `409`: the scheduler refused — stale generation, expired lease,
    /// wrong owner, unknown unit. Carries the server's reason.
    Refused(String),
    /// `401`/`405`: authentication definitively rejected; the worker
    /// cannot participate in this campaign at all.
    Denied(u16),
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Unavailable => f.write_str("lease service unavailable"),
            LeaseError::Refused(reason) => write!(f, "lease refused: {reason}"),
            LeaseError::Denied(status) => write!(f, "lease denied (HTTP {status})"),
        }
    }
}

/// The trace-span outcome word for a failed lease call.
fn lease_error_outcome(err: &LeaseError) -> &'static str {
    match err {
        LeaseError::Unavailable => "unavailable",
        LeaseError::Refused(_) => "refused",
        LeaseError::Denied(_) => "denied",
    }
}

/// Classifies a lease response status and hands back its text body.
fn lease_response_text(status: u16, body: &[u8]) -> Result<String, LeaseError> {
    let text = String::from_utf8_lossy(body).into_owned();
    match status {
        200 => Ok(text),
        409 => {
            let reason = text
                .lines()
                .find_map(|line| line.strip_prefix("reason="))
                .unwrap_or("unspecified")
                .to_owned();
            Err(LeaseError::Refused(reason))
        }
        401 | 405 => Err(LeaseError::Denied(status)),
        _ => Err(LeaseError::Unavailable),
    }
}

/// Collects the remaining `key=value` lines of a lease response.
fn lease_kv<'a>(lines: impl Iterator<Item = &'a str>) -> Vec<(&'a str, &'a str)> {
    lines.filter_map(|line| line.split_once('=')).collect()
}

fn lease_field_u64(fields: &[(&str, &str)], key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

/// The server-side counters a `GET /stats` scrape surfaces to the
/// suite's `--store-stats` report: the lease-scheduler tallies and the
/// chaos-injection count, plus the store's size for context. Parsed
/// from the server's hand-rolled JSON by [`RemoteStore::server_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Records in the server's store.
    pub records: u64,
    /// Bytes in the server's store.
    pub bytes: u64,
    /// `DRI_FAULT` chaos actions the server fired (0 in production).
    pub faults_injected: u64,
    /// `POST /lease/claim` requests fielded.
    pub lease_claims: u64,
    /// Claims answered with a grant.
    pub lease_granted: u64,
    /// Grants that took over a dead worker's expired lease.
    pub lease_reclaimed: u64,
    /// Successful heartbeat renewals.
    pub lease_renewed: u64,
    /// Units marked complete.
    pub lease_completed: u64,
    /// Lease calls refused (stale generation, expired, wrong owner, …).
    pub lease_rejected: u64,
    /// Records the server accepted through the write path.
    pub records_accepted: u64,
    /// Write-path records the server definitively rejected.
    pub writes_rejected: u64,
    /// `PUT` / `POST /batch-put` exchanges the server fielded.
    pub push_round_trips: u64,
    /// Records sitting in the server's group-commit journal, acked but
    /// not yet compacted into record files (0 on a journal-less server).
    pub journal_depth: u64,
    /// Group-commit batches the server's journal has appended.
    pub journal_batches: u64,
    /// Fsyncs the journal has paid — one per batch, however many records
    /// each carried.
    pub journal_fsyncs: u64,
    /// Records compaction has drained from the journal into the store.
    pub journal_compacted: u64,
}

/// Pulls one unsigned-integer field out of the `/stats` JSON document.
/// The document is flat enough (every key unique, every value a bare
/// integer or boolean) that a substring scan is exact.
fn scrape_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses the server's `GET /stats` JSON into [`ServerStats`]. `None`
/// when a required field is absent — an old server or a non-stats body.
fn parse_server_stats(doc: &str) -> Option<ServerStats> {
    Some(ServerStats {
        records: scrape_u64(doc, "records")?,
        bytes: scrape_u64(doc, "bytes")?,
        faults_injected: scrape_u64(doc, "faults_injected")?,
        lease_claims: scrape_u64(doc, "claims")?,
        lease_granted: scrape_u64(doc, "granted")?,
        lease_reclaimed: scrape_u64(doc, "reclaimed")?,
        lease_renewed: scrape_u64(doc, "renewed")?,
        lease_completed: scrape_u64(doc, "completed")?,
        lease_rejected: scrape_u64(doc, "rejected")?,
        records_accepted: scrape_u64(doc, "records_accepted")?,
        writes_rejected: scrape_u64(doc, "writes_rejected")?,
        push_round_trips: scrape_u64(doc, "push_round_trips")?,
        journal_depth: scrape_u64(doc, "depth")?,
        journal_batches: scrape_u64(doc, "batches")?,
        journal_fsyncs: scrape_u64(doc, "fsyncs")?,
        journal_compacted: scrape_u64(doc, "compacted")?,
    })
}

/// A handle on one remote result service.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    /// Shared write-path secret used to sign push requests (`DRI_TOKEN`).
    /// `None` = this client never authenticates; its pushes are rejected
    /// by any server that accepts writes.
    token: Option<String>,
    disabled: AtomicBool,
    /// Latched after the server *definitively* rejects this client's
    /// authentication (`401`/`405`): later pushes are absorbed locally
    /// instead of spamming a server that already said no. Reads are
    /// unaffected — this is narrower than the transport breaker.
    push_disabled: AtomicBool,
    consecutive_errors: AtomicU32,
    /// Socket timeouts resolved at construction ([`TIMEOUT_ENV`]).
    timeouts: Timeouts,
    /// Whether this client negotiates wire compression
    /// ([`WIRE_COMPRESS_ENV`], on by default).
    wire_compress: bool,
    /// Monotonic per-attempt salt feeding the backoff jitter.
    attempt_salt: AtomicU64,
    /// Wire round-trip latency per attempt (connect through response),
    /// shared process-wide via [`Registry::global`] so `suite` can print
    /// remote-tier percentiles however many clients a run constructs.
    exchange_latency: Histogram,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    errors: AtomicU64,
    bytes_fetched: AtomicU64,
    batch_round_trips: AtomicU64,
    records_accepted: AtomicU64,
    writes_rejected: AtomicU64,
    push_round_trips: AtomicU64,
    retries: AtomicU64,
}

impl RemoteStore {
    /// Points a client at `addr` (`host:port`; `http://host:port` also
    /// accepted). No connection is made until the first fetch.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_token(addr, None)
    }

    /// [`RemoteStore::new`] with a write-path secret: push requests are
    /// signed with a keyed tag over the request (see [`crate::auth`]),
    /// which the server verifies against its own `DRI_TOKEN`.
    pub fn with_token(addr: impl Into<String>, token: Option<String>) -> Self {
        let addr = addr.into();
        let addr = addr
            .strip_prefix("http://")
            .unwrap_or(&addr)
            .trim_end_matches('/')
            .to_owned();
        RemoteStore {
            addr,
            token: token.filter(|t| !t.is_empty()),
            disabled: AtomicBool::new(false),
            push_disabled: AtomicBool::new(false),
            consecutive_errors: AtomicU32::new(0),
            timeouts: Timeouts::from_env(),
            wire_compress: wire_compress_from_env(),
            attempt_salt: AtomicU64::new(0),
            exchange_latency: Registry::global().histogram(
                "dri_client_exchange_ns",
                "remote-store HTTP round-trip latency per attempt (ns)",
            ),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
            batch_round_trips: AtomicU64::new(0),
            records_accepted: AtomicU64::new(0),
            writes_rejected: AtomicU64::new(0),
            push_round_trips: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// The client named by `DRI_REMOTE` — signing pushes with the
    /// `DRI_TOKEN` secret when that is set too — or `None` when the
    /// variable is unset or empty (the remote tier is strictly opt-in,
    /// like the disk tier).
    pub fn from_env() -> Option<Self> {
        let addr = std::env::var(REMOTE_ENV).ok()?;
        if addr.trim().is_empty() {
            return None;
        }
        Some(Self::with_token(
            addr,
            std::env::var(crate::auth::TOKEN_ENV).ok(),
        ))
    }

    /// The `host:port` this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether this client holds a write-path secret (it signs pushes).
    pub fn has_token(&self) -> bool {
        self.token.is_some()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> RemoteStats {
        RemoteStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_fetched: self.bytes_fetched.load(Ordering::Relaxed),
            batch_round_trips: self.batch_round_trips.load(Ordering::Relaxed),
            records_accepted: self.records_accepted.load(Ordering::Relaxed),
            writes_rejected: self.writes_rejected.load(Ordering::Relaxed),
            push_round_trips: self.push_round_trips.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    /// Whether the circuit breaker has given up on the server.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// Scrapes the server's `GET /stats` document and extracts the
    /// scheduler/chaos counters (see [`ServerStats`]) — what
    /// `suite --store-stats` prints alongside the client's own traffic.
    /// `None` on any transport failure, an unparsable body, or whenever
    /// the breaker is already open.
    pub fn server_stats(&self) -> Option<ServerStats> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_disabled() {
            return None;
        }
        match self.exchange("GET", "/stats", b"") {
            Ok((200, body)) => {
                self.consecutive_errors.store(0, Ordering::Relaxed);
                parse_server_stats(&String::from_utf8_lossy(&body))
            }
            Ok(_) | Err(_) => {
                self.transport_error();
                None
            }
        }
    }

    /// Fetches and validates the record for `(kind, schema, key)`,
    /// returning its **payload**. `None` on a miss, on corruption, on
    /// any transport failure, and on every call once the breaker is
    /// open — the caller falls through to simulation either way.
    pub fn fetch(&self, kind: &str, schema: u32, key: u128) -> Option<Vec<u8>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_disabled() {
            return None;
        }
        let path = format!("/record/{kind}/v{schema}/{key:032x}");
        match self.exchange("GET", &path, b"") {
            Ok((200, body)) => {
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.accept(&body, schema, key)
            }
            Ok((404, _)) => {
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Ok(_) | Err(_) => {
                self.transport_error();
                None
            }
        }
    }

    /// Batch [`Self::fetch`]: resolves many record references with as
    /// few round-trips as possible, returning results in request order
    /// (`None` per entry on miss/corruption).
    ///
    /// Plans larger than [`BATCH_CHUNK`] are split into consecutive
    /// `POST /batch` exchanges of that size — still orders of magnitude
    /// fewer round-trips than per-record fetches, and each chunk stays
    /// under the server's own request cap. An empty plan touches neither
    /// the network nor the counters. A transport failure yields `None`
    /// for that chunk's entries (later chunks are skipped once the
    /// breaker opens).
    pub fn fetch_batch(&self, entries: &[(&str, u32, u128)]) -> Vec<Option<Vec<u8>>> {
        self.fetch_batch_chunked(entries, BATCH_CHUNK)
    }

    /// [`Self::fetch_batch`] with an explicit chunk size (tests use tiny
    /// chunks to exercise the split; `chunk` is clamped to at least 1).
    pub fn fetch_batch_chunked(
        &self,
        entries: &[(&str, u32, u128)],
        chunk: usize,
    ) -> Vec<Option<Vec<u8>>> {
        self.fetch_batch_outcomes(entries, chunk)
            .0
            .into_iter()
            .map(BatchEntry::into_payload)
            .collect()
    }

    /// [`Self::fetch_batch_chunked`] with full per-entry outcomes: the
    /// caller learns which entries the server **definitively** answered
    /// with a miss frame (the record does not exist there) versus
    /// entries whose state is unknown (transport failure, truncated
    /// response, failed validation). Also returns how many `POST /batch`
    /// exchanges *this call* put on the wire — callers aggregating stats
    /// must use this rather than diffing the shared
    /// [`RemoteStats::batch_round_trips`] counter, which concurrent
    /// fetches also advance.
    pub fn fetch_batch_outcomes(
        &self,
        entries: &[(&str, u32, u128)],
        chunk: usize,
    ) -> (Vec<BatchEntry>, u64) {
        let mut results = Vec::with_capacity(entries.len());
        let mut round_trips = 0;
        for chunk_entries in entries.chunks(chunk.max(1)) {
            let (outcomes, trips) = self.fetch_batch_once(chunk_entries);
            results.extend(outcomes);
            round_trips += trips;
        }
        (results, round_trips)
    }

    /// One `POST /batch` exchange for up to one chunk of references.
    /// Returns the outcomes plus the round-trips performed (1 when an
    /// HTTP exchange reached the server, 0 when the breaker swallowed
    /// the chunk or the connection never opened).
    fn fetch_batch_once(&self, entries: &[(&str, u32, u128)]) -> (Vec<BatchEntry>, u64) {
        if entries.is_empty() {
            return (Vec::new(), 0);
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_disabled() {
            return (vec![BatchEntry::Failed; entries.len()], 0);
        }
        let mut body = String::new();
        for (kind, schema, key) in entries {
            body.push_str(&format!("{kind} {schema} {key:032x}\n"));
        }
        let frames = match self.exchange("POST", "/batch", body.as_bytes()) {
            Ok((200, frames)) => {
                self.batch_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                frames
            }
            Ok(_) => {
                // The exchange happened; the server rejected it.
                self.batch_round_trips.fetch_add(1, Ordering::Relaxed);
                self.transport_error();
                return (vec![BatchEntry::Failed; entries.len()], 1);
            }
            Err(_) => {
                self.transport_error();
                return (vec![BatchEntry::Failed; entries.len()], 0);
            }
        };
        let mut results = Vec::with_capacity(entries.len());
        let mut cursor = &frames[..];
        for &(_, schema, key) in entries {
            let Some((record, rest)) = take_frame(cursor) else {
                // A short response corrupts every remaining entry.
                self.corrupt
                    .fetch_add((entries.len() - results.len()) as u64, Ordering::Relaxed);
                results.resize(entries.len(), BatchEntry::Failed);
                return (results, 1);
            };
            cursor = rest;
            match record {
                Some(bytes) => results.push(match self.accept(&bytes, schema, key) {
                    Some(payload) => BatchEntry::Hit(payload),
                    None => BatchEntry::Failed,
                }),
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    results.push(BatchEntry::Miss);
                }
            }
        }
        (results, 1)
    }

    /// Whether pushes were latched off by a definitive auth rejection.
    pub fn is_push_disabled(&self) -> bool {
        self.push_disabled.load(Ordering::Relaxed)
    }

    /// Pushes one complete record (header + payload + checksum, as
    /// [`dri_store::frame_record`] builds it) to the server's store via
    /// `PUT /record/<kind>/v<schema>/<key>`. The request is signed with
    /// this client's token; the server re-validates the record against
    /// the path before a byte lands on its disk.
    pub fn push(&self, kind: &str, schema: u32, key: u128, record: &[u8]) -> PushOutcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_push_disabled() {
            self.writes_rejected.fetch_add(1, Ordering::Relaxed);
            return PushOutcome::Rejected;
        }
        if self.is_disabled() {
            return PushOutcome::Failed;
        }
        let path = format!("/record/{kind}/v{schema}/{key:032x}");
        match self.exchange("PUT", &path, record) {
            Ok((status, _)) => {
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                match status {
                    200 => {
                        self.records_accepted.fetch_add(1, Ordering::Relaxed);
                        PushOutcome::Accepted
                    }
                    401 | 405 => {
                        self.writes_rejected.fetch_add(1, Ordering::Relaxed);
                        self.auth_rejected(status);
                        PushOutcome::Rejected
                    }
                    _ => {
                        self.writes_rejected.fetch_add(1, Ordering::Relaxed);
                        PushOutcome::Rejected
                    }
                }
            }
            Err(_) => {
                self.transport_error();
                PushOutcome::Failed
            }
        }
    }

    /// Batch [`Self::push`] at the default chunk size.
    pub fn push_batch(&self, entries: &[(&str, u32, u128, &[u8])]) -> (Vec<PushOutcome>, u64) {
        self.push_batch_chunked(entries, BATCH_CHUNK)
    }

    /// Pushes many records with as few round-trips as possible: frames
    /// the entries into `POST /batch-put` requests of at most `chunk`
    /// records each (clamped to at least 1; the default stays under the
    /// server's [`crate::server::MAX_BATCH`] cap) **and** at most
    /// [`PUSH_BODY_BUDGET`] body bytes — records are small, but chunking
    /// by count alone could otherwise build a request the server's body
    /// cap rejects at the transport layer, and that failure would feed
    /// the shared read-circuit breaker. Returns per-entry outcomes in
    /// request order plus how many exchanges *this call* put on the
    /// wire — per-call reporting, exactly like
    /// [`Self::fetch_batch_outcomes`], so aggregating callers never race
    /// on the shared counters.
    pub fn push_batch_chunked(
        &self,
        entries: &[(&str, u32, u128, &[u8])],
        chunk: usize,
    ) -> (Vec<PushOutcome>, u64) {
        let mut outcomes = Vec::with_capacity(entries.len());
        let mut round_trips = 0;
        let mut start = 0;
        while start < entries.len() {
            let end = plan_push_chunk_end(entries, start, chunk.max(1), PUSH_BODY_BUDGET);
            let (chunk_outcomes, trips) = self.push_batch_once(&entries[start..end]);
            outcomes.extend(chunk_outcomes);
            round_trips += trips;
            start = end;
        }
        (outcomes, round_trips)
    }

    /// One `POST /batch-put` exchange for up to one chunk of records.
    fn push_batch_once(&self, entries: &[(&str, u32, u128, &[u8])]) -> (Vec<PushOutcome>, u64) {
        if entries.is_empty() {
            return (Vec::new(), 0);
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_push_disabled() {
            self.writes_rejected
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            return (vec![PushOutcome::Rejected; entries.len()], 0);
        }
        if self.is_disabled() {
            return (vec![PushOutcome::Failed; entries.len()], 0);
        }
        let mut body = Vec::new();
        for &(kind, schema, key, record) in entries {
            body.push(kind.len() as u8);
            body.extend_from_slice(kind.as_bytes());
            body.extend_from_slice(&schema.to_le_bytes());
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&(record.len() as u64).to_le_bytes());
            body.extend_from_slice(record);
        }
        match self.exchange("POST", "/batch-put", &body) {
            Ok((200, statuses)) => {
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                let outcomes: Vec<PushOutcome> = (0..entries.len())
                    .map(|i| match statuses.get(i) {
                        Some(1) => {
                            self.records_accepted.fetch_add(1, Ordering::Relaxed);
                            PushOutcome::Accepted
                        }
                        Some(_) => {
                            self.writes_rejected.fetch_add(1, Ordering::Relaxed);
                            PushOutcome::Rejected
                        }
                        // A short status vector leaves the tail unknown.
                        None => PushOutcome::Failed,
                    })
                    .collect();
                (outcomes, 1)
            }
            Ok((status @ (401 | 405), _)) => {
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.writes_rejected
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                self.auth_rejected(status);
                (vec![PushOutcome::Rejected; entries.len()], 1)
            }
            Ok(_) => {
                // The server answered (e.g. a structural 400): definitive
                // for this batch, but not an auth problem — later batches
                // may be fine.
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.writes_rejected
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                (vec![PushOutcome::Rejected; entries.len()], 1)
            }
            Err(_) => {
                self.transport_error();
                (vec![PushOutcome::Failed; entries.len()], 0)
            }
        }
    }

    /// `POST /lease/claim`: asks the scheduler for one unit of
    /// `campaign`, seeding the campaign with `units` (the full
    /// deterministic list — seeding is idempotent, so every worker sends
    /// the same list). See [`LeaseClaim`] for the three answers.
    ///
    /// Lease calls ride the same retry/backoff as data traffic but
    /// **bypass the data-plane circuit breaker** (module docs): the
    /// steal loop bounds its own claim failures. A retried claim whose
    /// lost response had granted a unit merely strands that lease until
    /// its TTL reclaims it — wasted work at worst, never a wrong result.
    pub fn lease_claim(
        &self,
        campaign: &str,
        worker: &str,
        units: &[String],
    ) -> Result<LeaseClaim, LeaseError> {
        let span = Span::begin("lease", "claim")
            .label("campaign", campaign)
            .label("worker", worker);
        let result = self.lease_claim_inner(campaign, worker, units);
        span.finish(match &result {
            Ok(LeaseClaim::Granted {
                reclaimed: true, ..
            }) => "reclaimed",
            Ok(LeaseClaim::Granted { .. }) => "granted",
            Ok(LeaseClaim::Wait { .. }) => "wait",
            Ok(LeaseClaim::Drained) => "drained",
            Err(err) => lease_error_outcome(err),
        });
        result
    }

    fn lease_claim_inner(
        &self,
        campaign: &str,
        worker: &str,
        units: &[String],
    ) -> Result<LeaseClaim, LeaseError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut body = format!("campaign={campaign}\nworker={worker}\n");
        for unit in units {
            body.push_str(&format!("unit={unit}\n"));
        }
        let (status, response) = self
            .exchange("POST", "/lease/claim", body.as_bytes())
            .map_err(|_| LeaseError::Unavailable)?;
        let text = lease_response_text(status, &response)?;
        let mut lines = text.lines();
        match lines.next() {
            Some("granted") => {
                let fields = lease_kv(lines);
                Ok(LeaseClaim::Granted {
                    unit: fields
                        .iter()
                        .find(|(k, _)| *k == "unit")
                        .map(|(_, v)| (*v).to_owned())
                        .ok_or(LeaseError::Unavailable)?,
                    generation: lease_field_u64(&fields, "gen").ok_or(LeaseError::Unavailable)?,
                    deadline_ms: lease_field_u64(&fields, "deadline_ms").unwrap_or(0),
                    ttl_ms: lease_field_u64(&fields, "ttl_ms").unwrap_or(0),
                    reclaimed: lease_field_u64(&fields, "reclaimed").unwrap_or(0) != 0,
                })
            }
            Some("wait") => Ok(LeaseClaim::Wait {
                claimed: lease_field_u64(&lease_kv(lines), "claimed").unwrap_or(0),
            }),
            Some("drained") => Ok(LeaseClaim::Drained),
            _ => Err(LeaseError::Unavailable),
        }
    }

    /// `POST /lease/renew`: the mid-sweep heartbeat. Returns the new
    /// deadline; [`LeaseError::Refused`] once the lease expired or was
    /// reclaimed (the worker must stop assuming ownership).
    pub fn lease_renew(
        &self,
        campaign: &str,
        unit: &str,
        generation: u64,
        worker: &str,
    ) -> Result<u64, LeaseError> {
        let span = Span::begin("lease", "renew")
            .label("campaign", campaign)
            .label("unit", unit)
            .label("worker", worker);
        let result = self.lease_renew_inner(campaign, unit, generation, worker);
        span.finish(match &result {
            Ok(_) => "renewed",
            Err(err) => lease_error_outcome(err),
        });
        result
    }

    fn lease_renew_inner(
        &self,
        campaign: &str,
        unit: &str,
        generation: u64,
        worker: &str,
    ) -> Result<u64, LeaseError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let body = format!("campaign={campaign}\nworker={worker}\nunit={unit}\ngen={generation}\n");
        let (status, response) = self
            .exchange("POST", "/lease/renew", body.as_bytes())
            .map_err(|_| LeaseError::Unavailable)?;
        let text = lease_response_text(status, &response)?;
        let mut lines = text.lines();
        match lines.next() {
            Some("renewed") => {
                lease_field_u64(&lease_kv(lines), "deadline_ms").ok_or(LeaseError::Unavailable)
            }
            _ => Err(LeaseError::Unavailable),
        }
    }

    /// `POST /lease/complete`: marks the unit done. A refusal after a
    /// reclaim is expected and harmless (the records were pushed; the
    /// reclaimer re-executes bit-identically).
    pub fn lease_complete(
        &self,
        campaign: &str,
        unit: &str,
        generation: u64,
        worker: &str,
    ) -> Result<(), LeaseError> {
        let span = Span::begin("lease", "complete")
            .label("campaign", campaign)
            .label("unit", unit)
            .label("worker", worker);
        let result = self.lease_complete_inner(campaign, unit, generation, worker);
        span.finish(match &result {
            Ok(()) => "completed",
            Err(err) => lease_error_outcome(err),
        });
        result
    }

    fn lease_complete_inner(
        &self,
        campaign: &str,
        unit: &str,
        generation: u64,
        worker: &str,
    ) -> Result<(), LeaseError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let body = format!("campaign={campaign}\nworker={worker}\nunit={unit}\ngen={generation}\n");
        let (status, response) = self
            .exchange("POST", "/lease/complete", body.as_bytes())
            .map_err(|_| LeaseError::Unavailable)?;
        let text = lease_response_text(status, &response)?;
        match text.lines().next() {
            Some("completed") => Ok(()),
            _ => Err(LeaseError::Unavailable),
        }
    }

    /// Latches pushes off after the server definitively rejected this
    /// client's authentication — retrying every sweep would spam a
    /// server that already said no. Reads continue unaffected.
    fn auth_rejected(&self, status: u16) {
        if !self.push_disabled.swap(true, Ordering::Relaxed) {
            if trace::enabled() {
                TraceEvent::new("breaker", "push_disabled")
                    .outcome(&status.to_string())
                    .label("addr", &self.addr)
                    .emit();
            }
            eprintln!(
                "warning: result store {} rejected a push with HTTP {status} \
                 ({}); disabling pushes for this process (results stay local)",
                self.addr,
                if status == 405 {
                    "the server is read-only — it was started without DRI_TOKEN"
                } else {
                    "missing or mismatched DRI_TOKEN"
                }
            );
        }
    }

    /// End-to-end validation of received record bytes; counts and
    /// returns the payload on success.
    fn accept(&self, record: &[u8], schema: u32, key: u128) -> Option<Vec<u8>> {
        match validate_record(record, schema, key) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_fetched
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn transport_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let seen = self.consecutive_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= MAX_CONSECUTIVE_ERRORS && !self.disabled.swap(true, Ordering::Relaxed) {
            if trace::enabled() {
                TraceEvent::new("breaker", "open")
                    .label("addr", &self.addr)
                    .label("consecutive_errors", &seen.to_string())
                    .emit();
            }
            eprintln!(
                "warning: remote result store {} failed {seen} times in a row; \
                 disabling the remote tier for this process (simulating locally)",
                self.addr
            );
        }
    }

    /// [`Self::request`] with bounded retry: a transport `Err` or a 5xx
    /// status — the transient failures fault injection and real networks
    /// produce — is retried up to [`RETRY_ATTEMPTS`] total attempts with
    /// exponential backoff + deterministic jitter. Any other status is a
    /// definitive answer and returns immediately. Callers treat only the
    /// *final* outcome as a transport error, so one exhausted round
    /// counts once against the breaker, however many attempts it burned.
    /// (Retried writes are safe: records are content-addressed and
    /// idempotent, and a re-claimed lease unit is merely re-executed
    /// bit-identically.)
    fn exchange(&self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let mut attempt = 1;
        loop {
            let started = Instant::now();
            let outcome = self.request(method, path, body);
            self.exchange_latency.record_duration(started.elapsed());
            let transient = match &outcome {
                Err(_) => true,
                Ok((status, _)) => *status >= 500,
            };
            if !transient || attempt >= RETRY_ATTEMPTS {
                return outcome;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            if trace::enabled() {
                TraceEvent::new("retry", path)
                    .outcome(&match &outcome {
                        Err(err) => err.kind().to_string(),
                        Ok((status, _)) => format!("http {status}"),
                    })
                    .label("method", method)
                    .label("attempt", &attempt.to_string())
                    .emit();
            }
            // Per-process salt stream: reproducible within a worker,
            // de-synchronized across a fleet.
            let salt = (u64::from(std::process::id()) << 32)
                | self.attempt_salt.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff_delay(attempt, salt));
            attempt += 1;
        }
    }

    /// One `Connection: close` HTTP exchange. Write methods are signed
    /// with the keyed request tag when this client holds a token.
    ///
    /// Wire compression (when enabled) happens here, transparently to
    /// every caller: push bodies that shrink under the delta codec
    /// travel compressed with an `X-DRI-Encoding` header — and are
    /// signed *as sent*, so the server verifies before decoding — and
    /// `/batch` requests advertise `X-DRI-Accept-Encoding`; a compressed
    /// response is decompressed before being handed back.
    fn request(&self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
        let mut stream = TcpStream::connect_timeout(&addr, self.timeouts.connect)?;
        stream.set_read_timeout(Some(self.timeouts.io))?;
        stream.set_write_timeout(Some(self.timeouts.io))?;
        let is_push = (method == "PUT" && path.starts_with("/record/")) || path == "/batch-put";
        let mut wire_body = Cow::Borrowed(body);
        let mut extra = String::new();
        if self.wire_compress && is_push && !body.is_empty() {
            let packed = compress::compress(body);
            if packed.len() < body.len() {
                wire_body = Cow::Owned(packed);
                extra.push_str(&format!(
                    "{}: {}\r\n",
                    crate::http::ENCODING_HEADER,
                    compress::WIRE_ENCODING
                ));
            }
        }
        if self.wire_compress && path == "/batch" {
            extra.push_str(&format!(
                "{}: {}\r\n",
                crate::http::ACCEPT_ENCODING_HEADER,
                compress::WIRE_ENCODING
            ));
        }
        // Sign only requests bound for the write endpoints: reads never
        // need a tag, and hashing a large `/batch` prefetch body (or
        // handing observers tags over known plaintexts) for an endpoint
        // that ignores the header would be pure waste. The lease control
        // plane is a write path too — only trusted workers may schedule.
        let writes = method == "PUT" || path == "/batch-put" || path.starts_with("/lease/");
        let auth = match &self.token {
            Some(secret) if writes => format!(
                "X-DRI-Token: {}\r\n",
                crate::auth::sign_hex(secret, method, path, &wire_body)
            ),
            _ => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\n\
             Host: {}\r\n\
             {auth}{extra}Content-Length: {}\r\n\
             Connection: close\r\n\r\n",
            self.addr,
            wire_body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&wire_body)?;
        stream.flush()?;
        let (status, body, encoding) = read_response(&mut stream)?;
        let body = match encoding.as_deref() {
            None => body,
            Some(name) if name == compress::WIRE_ENCODING => {
                compress::decompress(&body, crate::http::MAX_BODY).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad compressed response body")
                })?
            }
            Some(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unsupported response body encoding",
                ))
            }
        };
        Ok((status, body))
    }
}

/// Wire size of one `/batch-put` frame for `entry`:
/// `[kind_len:u8][kind][schema:u32][key:u128][record_len:u64][record]`.
fn push_frame_len(entry: &(&str, u32, u128, &[u8])) -> usize {
    1 + entry.0.len() + 4 + 16 + 8 + entry.3.len()
}

/// Where the push chunk starting at `start` ends: at most `chunk`
/// entries **and** at most `body_budget` body bytes — whichever bites
/// first — but always at least one entry, however large (the server
/// answers for an oversized record per-entry rather than the transport
/// layer failing the exchange).
fn plan_push_chunk_end(
    entries: &[(&str, u32, u128, &[u8])],
    start: usize,
    chunk: usize,
    body_budget: usize,
) -> usize {
    let mut end = start;
    let mut body_bytes = 0usize;
    while end < entries.len() && end - start < chunk {
        let frame_bytes = push_frame_len(&entries[end]);
        if end > start && body_bytes + frame_bytes > body_budget {
            break;
        }
        body_bytes += frame_bytes;
        end += 1;
    }
    end
}

/// Splits one `[status][len][bytes]` batch frame off `cursor`:
/// `Some((Some(bytes), rest))` for a found record, `Some((None, rest))`
/// for a miss frame, `None` when the buffer is too short.
#[allow(clippy::type_complexity)]
fn take_frame(cursor: &[u8]) -> Option<(Option<Vec<u8>>, &[u8])> {
    let (&status, rest) = cursor.split_first()?;
    let (len, rest) = rest.split_at_checked(8)?;
    let len = u64::from_le_bytes(len.try_into().ok()?) as usize;
    let (bytes, rest) = rest.split_at_checked(len)?;
    match status {
        1 => Some((Some(bytes.to_vec()), rest)),
        0 if len == 0 => Some((None, rest)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_normalization() {
        assert_eq!(
            RemoteStore::new("http://10.0.0.1:7171/").addr(),
            "10.0.0.1:7171"
        );
        assert_eq!(RemoteStore::new("localhost:80").addr(), "localhost:80");
    }

    #[test]
    fn frames_parse_and_reject_short_buffers() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&3u64.to_le_bytes());
        buf.extend_from_slice(b"abc");
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        let (first, rest) = take_frame(&buf).expect("hit frame");
        assert_eq!(first.as_deref(), Some(&b"abc"[..]));
        let (second, rest) = take_frame(rest).expect("miss frame");
        assert_eq!(second, None);
        assert!(rest.is_empty());
        assert!(take_frame(&buf[..5]).is_none(), "truncated header");
        assert!(take_frame(&buf[..10]).is_none(), "truncated payload");
    }

    #[test]
    fn push_chunks_split_on_count_and_body_bytes() {
        let small = vec![0u8; 10];
        let big = vec![0u8; 100];
        let entries: Vec<(&str, u32, u128, &[u8])> = vec![
            ("dri", 1, 1, &small),
            ("dri", 1, 2, &small),
            ("dri", 1, 3, &big),
            ("dri", 1, 4, &small),
        ];
        // Count bites first with a generous byte budget.
        assert_eq!(plan_push_chunk_end(&entries, 0, 2, usize::MAX), 2);
        // Bytes bite first: two small frames (42 bytes each) fit a
        // 90-byte budget, the big third frame (132 bytes) does not.
        assert_eq!(plan_push_chunk_end(&entries, 0, 100, 90), 2);
        // An over-budget entry still travels — alone.
        assert_eq!(plan_push_chunk_end(&entries, 2, 100, 90), 3);
        // Tail chunk ends at the slice end.
        assert_eq!(plan_push_chunk_end(&entries, 3, 100, 90), 4);
        assert_eq!(push_frame_len(&entries[0]), 1 + 3 + 4 + 16 + 8 + 10);
    }

    #[test]
    fn timeout_env_values_parse_strictly() {
        assert_eq!(parse_timeout_ms("250"), Some(250));
        assert_eq!(parse_timeout_ms(" 1000 "), Some(1000));
        for bad in ["", "0", "-5", "2s", "fast", "1.5"] {
            assert_eq!(parse_timeout_ms(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        // Same (attempt, salt) → same delay; the schedule is replayable.
        assert_eq!(backoff_delay(1, 7), backoff_delay(1, 7));
        assert_ne!(
            backoff_delay(1, 7),
            backoff_delay(1, 8),
            "salt varies jitter"
        );
        for attempt in 1..=10 {
            let delay = backoff_delay(attempt, 42);
            let step = BACKOFF_BASE
                .saturating_mul(1u32 << (attempt - 1).min(8))
                .min(BACKOFF_CAP);
            assert!(delay >= step, "attempt {attempt}: jitter only adds");
            assert!(
                delay <= step + step / 2,
                "attempt {attempt}: jitter bounded by half the step"
            );
            assert!(delay <= BACKOFF_CAP + BACKOFF_CAP / 2, "capped");
        }
    }

    #[test]
    fn lease_responses_parse_and_classify() {
        assert_eq!(
            lease_response_text(200, b"granted\nunit=gcc\n"),
            Ok("granted\nunit=gcc\n".to_owned())
        );
        assert_eq!(
            lease_response_text(409, b"refused\nreason=expired\n"),
            Err(LeaseError::Refused("expired".to_owned()))
        );
        assert_eq!(lease_response_text(401, b""), Err(LeaseError::Denied(401)));
        assert_eq!(lease_response_text(405, b""), Err(LeaseError::Denied(405)));
        assert_eq!(
            lease_response_text(500, b"boom"),
            Err(LeaseError::Unavailable)
        );

        let text = "unit=gcc\ngen=3\ndeadline_ms=9000\nreclaimed=1\n";
        let fields = lease_kv(text.lines());
        assert_eq!(lease_field_u64(&fields, "gen"), Some(3));
        assert_eq!(lease_field_u64(&fields, "deadline_ms"), Some(9000));
        assert_eq!(lease_field_u64(&fields, "reclaimed"), Some(1));
        assert_eq!(lease_field_u64(&fields, "absent"), None);
        assert_eq!(lease_field_u64(&fields, "unit"), None, "non-numeric");
    }

    #[test]
    fn server_stats_parse_from_stats_json() {
        // Shaped exactly like `server::stats_json` renders, including the
        // fields whose names are near-collisions (`records_accepted`,
        // `writes_rejected`, `bytes_served`) — the scraper must not
        // confuse them with `records`, `rejected`, or `bytes`.
        let doc = "{\"records\":12,\"bytes\":3456,\"generation\":2,\"writable\":true,\
                   \"requests\":99,\"hits\":40,\"misses\":8,\
                   \"bad_requests\":1,\"batch_requests\":3,\"bytes_served\":70000,\
                   \"push_round_trips\":5,\"records_accepted\":33,\"writes_rejected\":2,\
                   \"faults_injected\":7,\
                   \"leases\":{\"claims\":20,\"granted\":16,\"reclaimed\":4,\
                   \"renewed\":50,\"completed\":15,\"rejected\":1},\
                   \"store\":{\"hits\":40,\"misses\":8,\"corrupt\":0},\
                   \"journal\":{\"enabled\":true,\"depth\":6,\"batches\":9,\
                   \"appended\":21,\"fsyncs\":9,\"compactions\":2,\"compacted\":15}}\n";
        assert_eq!(
            parse_server_stats(doc),
            Some(ServerStats {
                records: 12,
                bytes: 3456,
                faults_injected: 7,
                lease_claims: 20,
                lease_granted: 16,
                lease_reclaimed: 4,
                lease_renewed: 50,
                lease_completed: 15,
                lease_rejected: 1,
                records_accepted: 33,
                writes_rejected: 2,
                push_round_trips: 5,
                journal_depth: 6,
                journal_batches: 9,
                journal_fsyncs: 9,
                journal_compacted: 15,
            })
        );
        assert_eq!(
            parse_server_stats("{\"records\":1}"),
            None,
            "missing fields"
        );
        assert_eq!(parse_server_stats("not json at all"), None);
    }

    #[test]
    fn breaker_opens_after_repeated_failures() {
        // Reserved TEST-NET-3 address: connects fail fast with unreachable
        // (or time out) — either way a transport error, never a server.
        let remote = RemoteStore::new("127.0.0.1:1"); // closed port
        for _ in 0..MAX_CONSECUTIVE_ERRORS {
            assert_eq!(remote.fetch("dri", 1, 1), None);
        }
        assert!(remote.is_disabled());
        let errors_at_open = remote.stats().errors;
        // Once open, calls are absorbed without touching the network.
        assert_eq!(remote.fetch("dri", 1, 2), None);
        assert_eq!(remote.stats().errors, errors_at_open);
        assert_eq!(
            remote.stats().requests,
            u64::from(MAX_CONSECUTIVE_ERRORS) + 1
        );
    }
}
