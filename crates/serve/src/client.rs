//! The remote-store client: what a cold worker process uses to pull
//! records from a warm central `dri-serve` instance.
//!
//! The client never trusts the wire more than the store trusts the disk:
//! every fetched record is re-validated with
//! [`dri_store::validate_record`] (magic, schema, embedded key, length,
//! checksum) before a byte of it is decoded, so a truncated proxy
//! response or a bit-flipped frame degrades to a miss — the caller
//! recomputes, exactly as it would for local corruption.
//!
//! The client is also built to *fail fast and stay out of the way*:
//! short connect timeouts, and a circuit breaker that disables the
//! remote tier for the rest of the process after
//! [`MAX_CONSECUTIVE_ERRORS`] straight transport failures (with one
//! warning) — a dead server must not add a timeout to every sweep point
//! of a campaign.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use dri_store::validate_record;

use crate::http::read_response;

/// Environment variable naming the remote result service
/// (`host:port`, an optional `http://` prefix is accepted).
pub const REMOTE_ENV: &str = "DRI_REMOTE";

/// Transport failures tolerated before the breaker opens.
pub const MAX_CONSECUTIVE_ERRORS: u32 = 3;

/// Most record references [`RemoteStore::fetch_batch`] puts in one
/// `POST /batch` request. Larger plans are split into consecutive
/// round-trips of this size; the value is deliberately below the
/// server's own per-request cap (`dri_serve::server::MAX_BATCH`), so a
/// well-formed client chunk is never rejected wholesale.
pub const BATCH_CHUNK: usize = 4096;

/// Most body bytes one `POST /batch-put` chunk may carry — well under
/// the server's request-body cap (`crate::http::MAX_BODY`, 64 MiB), so
/// a count-full chunk of unusually large records can never build a
/// request the server drops at the transport layer (which would feed
/// the read-path circuit breaker for a sizing problem, not a dead
/// server). A single over-budget record still travels alone; the server
/// answers for it per-entry.
pub const PUSH_BODY_BUDGET: usize = 16 * 1024 * 1024;

const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Snapshot of one client's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Requests attempted (including ones the breaker swallowed).
    pub requests: u64,
    /// Records fetched and validated.
    pub hits: u64,
    /// Clean 404s / miss frames.
    pub misses: u64,
    /// Responses rejected by end-to-end validation.
    pub corrupt: u64,
    /// Transport errors (connect/read/write/HTTP failures).
    pub errors: u64,
    /// Payload bytes of validated records.
    pub bytes_fetched: u64,
    /// `POST /batch` exchanges that reached the server (a chunked batch
    /// counts once per chunk; empty plans, breaker-absorbed chunks, and
    /// connections that never opened count zero).
    pub batch_round_trips: u64,
    /// Records the server accepted through the write path (its
    /// `records_accepted` counter advances in lockstep).
    pub pushes: u64,
    /// Records the server definitively rejected: failed authentication,
    /// a read-only server, or a corrupt/key-mismatched frame.
    pub push_rejected: u64,
    /// `PUT` / `POST /batch-put` exchanges that reached the server
    /// (the client-side mirror of the server's `push_round_trips`).
    pub push_round_trips: u64,
}

/// One entry's outcome in a [`RemoteStore::fetch_batch_outcomes`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEntry {
    /// A validated record's payload.
    Hit(Vec<u8>),
    /// The server definitively answered with a miss frame: the record
    /// does not exist there, and re-asking (until the store is re-seeded)
    /// is wasted traffic.
    Miss,
    /// The record's state is unknown: a transport failure, a truncated
    /// response, or bytes that failed end-to-end validation. A later
    /// fetch could still succeed.
    Failed,
}

impl BatchEntry {
    /// Collapses the outcome to the plain `fetch_batch` shape
    /// (`Some(payload)` on a hit, `None` otherwise).
    pub fn into_payload(self) -> Option<Vec<u8>> {
        match self {
            BatchEntry::Hit(payload) => Some(payload),
            BatchEntry::Miss | BatchEntry::Failed => None,
        }
    }
}

/// One record's outcome in a [`RemoteStore::push`] /
/// [`RemoteStore::push_batch_chunked`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The server validated the record and landed it in its store.
    Accepted,
    /// The server definitively refused the record — bad or missing
    /// token, a read-only server, or a frame that failed validation.
    /// Retrying without changing something is wasted traffic.
    Rejected,
    /// The record's fate is unknown: a transport failure or a truncated
    /// response. The record survives in the worker's local tiers either
    /// way, so the worst case is another worker re-simulating it.
    Failed,
}

/// A handle on one remote result service.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    /// Shared write-path secret used to sign push requests (`DRI_TOKEN`).
    /// `None` = this client never authenticates; its pushes are rejected
    /// by any server that accepts writes.
    token: Option<String>,
    disabled: AtomicBool,
    /// Latched after the server *definitively* rejects this client's
    /// authentication (`401`/`405`): later pushes are absorbed locally
    /// instead of spamming a server that already said no. Reads are
    /// unaffected — this is narrower than the transport breaker.
    push_disabled: AtomicBool,
    consecutive_errors: AtomicU32,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    errors: AtomicU64,
    bytes_fetched: AtomicU64,
    batch_round_trips: AtomicU64,
    pushes: AtomicU64,
    push_rejected: AtomicU64,
    push_round_trips: AtomicU64,
}

impl RemoteStore {
    /// Points a client at `addr` (`host:port`; `http://host:port` also
    /// accepted). No connection is made until the first fetch.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_token(addr, None)
    }

    /// [`RemoteStore::new`] with a write-path secret: push requests are
    /// signed with a keyed tag over the request (see [`crate::auth`]),
    /// which the server verifies against its own `DRI_TOKEN`.
    pub fn with_token(addr: impl Into<String>, token: Option<String>) -> Self {
        let addr = addr.into();
        let addr = addr
            .strip_prefix("http://")
            .unwrap_or(&addr)
            .trim_end_matches('/')
            .to_owned();
        RemoteStore {
            addr,
            token: token.filter(|t| !t.is_empty()),
            disabled: AtomicBool::new(false),
            push_disabled: AtomicBool::new(false),
            consecutive_errors: AtomicU32::new(0),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
            batch_round_trips: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            push_rejected: AtomicU64::new(0),
            push_round_trips: AtomicU64::new(0),
        }
    }

    /// The client named by `DRI_REMOTE` — signing pushes with the
    /// `DRI_TOKEN` secret when that is set too — or `None` when the
    /// variable is unset or empty (the remote tier is strictly opt-in,
    /// like the disk tier).
    pub fn from_env() -> Option<Self> {
        let addr = std::env::var(REMOTE_ENV).ok()?;
        if addr.trim().is_empty() {
            return None;
        }
        Some(Self::with_token(
            addr,
            std::env::var(crate::auth::TOKEN_ENV).ok(),
        ))
    }

    /// The `host:port` this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether this client holds a write-path secret (it signs pushes).
    pub fn has_token(&self) -> bool {
        self.token.is_some()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> RemoteStats {
        RemoteStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_fetched: self.bytes_fetched.load(Ordering::Relaxed),
            batch_round_trips: self.batch_round_trips.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            push_rejected: self.push_rejected.load(Ordering::Relaxed),
            push_round_trips: self.push_round_trips.load(Ordering::Relaxed),
        }
    }

    /// Whether the circuit breaker has given up on the server.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// Fetches and validates the record for `(kind, schema, key)`,
    /// returning its **payload**. `None` on a miss, on corruption, on
    /// any transport failure, and on every call once the breaker is
    /// open — the caller falls through to simulation either way.
    pub fn fetch(&self, kind: &str, schema: u32, key: u128) -> Option<Vec<u8>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_disabled() {
            return None;
        }
        let path = format!("/record/{kind}/v{schema}/{key:032x}");
        match self.request("GET", &path, b"") {
            Ok((200, body)) => {
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.accept(&body, schema, key)
            }
            Ok((404, _)) => {
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Ok(_) | Err(_) => {
                self.transport_error();
                None
            }
        }
    }

    /// Batch [`Self::fetch`]: resolves many record references with as
    /// few round-trips as possible, returning results in request order
    /// (`None` per entry on miss/corruption).
    ///
    /// Plans larger than [`BATCH_CHUNK`] are split into consecutive
    /// `POST /batch` exchanges of that size — still orders of magnitude
    /// fewer round-trips than per-record fetches, and each chunk stays
    /// under the server's own request cap. An empty plan touches neither
    /// the network nor the counters. A transport failure yields `None`
    /// for that chunk's entries (later chunks are skipped once the
    /// breaker opens).
    pub fn fetch_batch(&self, entries: &[(&str, u32, u128)]) -> Vec<Option<Vec<u8>>> {
        self.fetch_batch_chunked(entries, BATCH_CHUNK)
    }

    /// [`Self::fetch_batch`] with an explicit chunk size (tests use tiny
    /// chunks to exercise the split; `chunk` is clamped to at least 1).
    pub fn fetch_batch_chunked(
        &self,
        entries: &[(&str, u32, u128)],
        chunk: usize,
    ) -> Vec<Option<Vec<u8>>> {
        self.fetch_batch_outcomes(entries, chunk)
            .0
            .into_iter()
            .map(BatchEntry::into_payload)
            .collect()
    }

    /// [`Self::fetch_batch_chunked`] with full per-entry outcomes: the
    /// caller learns which entries the server **definitively** answered
    /// with a miss frame (the record does not exist there) versus
    /// entries whose state is unknown (transport failure, truncated
    /// response, failed validation). Also returns how many `POST /batch`
    /// exchanges *this call* put on the wire — callers aggregating stats
    /// must use this rather than diffing the shared
    /// [`RemoteStats::batch_round_trips`] counter, which concurrent
    /// fetches also advance.
    pub fn fetch_batch_outcomes(
        &self,
        entries: &[(&str, u32, u128)],
        chunk: usize,
    ) -> (Vec<BatchEntry>, u64) {
        let mut results = Vec::with_capacity(entries.len());
        let mut round_trips = 0;
        for chunk_entries in entries.chunks(chunk.max(1)) {
            let (outcomes, trips) = self.fetch_batch_once(chunk_entries);
            results.extend(outcomes);
            round_trips += trips;
        }
        (results, round_trips)
    }

    /// One `POST /batch` exchange for up to one chunk of references.
    /// Returns the outcomes plus the round-trips performed (1 when an
    /// HTTP exchange reached the server, 0 when the breaker swallowed
    /// the chunk or the connection never opened).
    fn fetch_batch_once(&self, entries: &[(&str, u32, u128)]) -> (Vec<BatchEntry>, u64) {
        if entries.is_empty() {
            return (Vec::new(), 0);
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_disabled() {
            return (vec![BatchEntry::Failed; entries.len()], 0);
        }
        let mut body = String::new();
        for (kind, schema, key) in entries {
            body.push_str(&format!("{kind} {schema} {key:032x}\n"));
        }
        let frames = match self.request("POST", "/batch", body.as_bytes()) {
            Ok((200, frames)) => {
                self.batch_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                frames
            }
            Ok(_) => {
                // The exchange happened; the server rejected it.
                self.batch_round_trips.fetch_add(1, Ordering::Relaxed);
                self.transport_error();
                return (vec![BatchEntry::Failed; entries.len()], 1);
            }
            Err(_) => {
                self.transport_error();
                return (vec![BatchEntry::Failed; entries.len()], 0);
            }
        };
        let mut results = Vec::with_capacity(entries.len());
        let mut cursor = &frames[..];
        for &(_, schema, key) in entries {
            let Some((record, rest)) = take_frame(cursor) else {
                // A short response corrupts every remaining entry.
                self.corrupt
                    .fetch_add((entries.len() - results.len()) as u64, Ordering::Relaxed);
                results.resize(entries.len(), BatchEntry::Failed);
                return (results, 1);
            };
            cursor = rest;
            match record {
                Some(bytes) => results.push(match self.accept(&bytes, schema, key) {
                    Some(payload) => BatchEntry::Hit(payload),
                    None => BatchEntry::Failed,
                }),
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    results.push(BatchEntry::Miss);
                }
            }
        }
        (results, 1)
    }

    /// Whether pushes were latched off by a definitive auth rejection.
    pub fn is_push_disabled(&self) -> bool {
        self.push_disabled.load(Ordering::Relaxed)
    }

    /// Pushes one complete record (header + payload + checksum, as
    /// [`dri_store::frame_record`] builds it) to the server's store via
    /// `PUT /record/<kind>/v<schema>/<key>`. The request is signed with
    /// this client's token; the server re-validates the record against
    /// the path before a byte lands on its disk.
    pub fn push(&self, kind: &str, schema: u32, key: u128, record: &[u8]) -> PushOutcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_push_disabled() {
            self.push_rejected.fetch_add(1, Ordering::Relaxed);
            return PushOutcome::Rejected;
        }
        if self.is_disabled() {
            return PushOutcome::Failed;
        }
        let path = format!("/record/{kind}/v{schema}/{key:032x}");
        match self.request("PUT", &path, record) {
            Ok((status, _)) => {
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                match status {
                    200 => {
                        self.pushes.fetch_add(1, Ordering::Relaxed);
                        PushOutcome::Accepted
                    }
                    401 | 405 => {
                        self.push_rejected.fetch_add(1, Ordering::Relaxed);
                        self.auth_rejected(status);
                        PushOutcome::Rejected
                    }
                    _ => {
                        self.push_rejected.fetch_add(1, Ordering::Relaxed);
                        PushOutcome::Rejected
                    }
                }
            }
            Err(_) => {
                self.transport_error();
                PushOutcome::Failed
            }
        }
    }

    /// Batch [`Self::push`] at the default chunk size.
    pub fn push_batch(&self, entries: &[(&str, u32, u128, &[u8])]) -> (Vec<PushOutcome>, u64) {
        self.push_batch_chunked(entries, BATCH_CHUNK)
    }

    /// Pushes many records with as few round-trips as possible: frames
    /// the entries into `POST /batch-put` requests of at most `chunk`
    /// records each (clamped to at least 1; the default stays under the
    /// server's [`crate::server::MAX_BATCH`] cap) **and** at most
    /// [`PUSH_BODY_BUDGET`] body bytes — records are small, but chunking
    /// by count alone could otherwise build a request the server's body
    /// cap rejects at the transport layer, and that failure would feed
    /// the shared read-circuit breaker. Returns per-entry outcomes in
    /// request order plus how many exchanges *this call* put on the
    /// wire — per-call reporting, exactly like
    /// [`Self::fetch_batch_outcomes`], so aggregating callers never race
    /// on the shared counters.
    pub fn push_batch_chunked(
        &self,
        entries: &[(&str, u32, u128, &[u8])],
        chunk: usize,
    ) -> (Vec<PushOutcome>, u64) {
        let mut outcomes = Vec::with_capacity(entries.len());
        let mut round_trips = 0;
        let mut start = 0;
        while start < entries.len() {
            let end = plan_push_chunk_end(entries, start, chunk.max(1), PUSH_BODY_BUDGET);
            let (chunk_outcomes, trips) = self.push_batch_once(&entries[start..end]);
            outcomes.extend(chunk_outcomes);
            round_trips += trips;
            start = end;
        }
        (outcomes, round_trips)
    }

    /// One `POST /batch-put` exchange for up to one chunk of records.
    fn push_batch_once(&self, entries: &[(&str, u32, u128, &[u8])]) -> (Vec<PushOutcome>, u64) {
        if entries.is_empty() {
            return (Vec::new(), 0);
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        if self.is_push_disabled() {
            self.push_rejected
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            return (vec![PushOutcome::Rejected; entries.len()], 0);
        }
        if self.is_disabled() {
            return (vec![PushOutcome::Failed; entries.len()], 0);
        }
        let mut body = Vec::new();
        for &(kind, schema, key, record) in entries {
            body.push(kind.len() as u8);
            body.extend_from_slice(kind.as_bytes());
            body.extend_from_slice(&schema.to_le_bytes());
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&(record.len() as u64).to_le_bytes());
            body.extend_from_slice(record);
        }
        match self.request("POST", "/batch-put", &body) {
            Ok((200, statuses)) => {
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                let outcomes: Vec<PushOutcome> = (0..entries.len())
                    .map(|i| match statuses.get(i) {
                        Some(1) => {
                            self.pushes.fetch_add(1, Ordering::Relaxed);
                            PushOutcome::Accepted
                        }
                        Some(_) => {
                            self.push_rejected.fetch_add(1, Ordering::Relaxed);
                            PushOutcome::Rejected
                        }
                        // A short status vector leaves the tail unknown.
                        None => PushOutcome::Failed,
                    })
                    .collect();
                (outcomes, 1)
            }
            Ok((status @ (401 | 405), _)) => {
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.push_rejected
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                self.auth_rejected(status);
                (vec![PushOutcome::Rejected; entries.len()], 1)
            }
            Ok(_) => {
                // The server answered (e.g. a structural 400): definitive
                // for this batch, but not an auth problem — later batches
                // may be fine.
                self.push_round_trips.fetch_add(1, Ordering::Relaxed);
                self.consecutive_errors.store(0, Ordering::Relaxed);
                self.push_rejected
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                (vec![PushOutcome::Rejected; entries.len()], 1)
            }
            Err(_) => {
                self.transport_error();
                (vec![PushOutcome::Failed; entries.len()], 0)
            }
        }
    }

    /// Latches pushes off after the server definitively rejected this
    /// client's authentication — retrying every sweep would spam a
    /// server that already said no. Reads continue unaffected.
    fn auth_rejected(&self, status: u16) {
        if !self.push_disabled.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: result store {} rejected a push with HTTP {status} \
                 ({}); disabling pushes for this process (results stay local)",
                self.addr,
                if status == 405 {
                    "the server is read-only — it was started without DRI_TOKEN"
                } else {
                    "missing or mismatched DRI_TOKEN"
                }
            );
        }
    }

    /// End-to-end validation of received record bytes; counts and
    /// returns the payload on success.
    fn accept(&self, record: &[u8], schema: u32, key: u128) -> Option<Vec<u8>> {
        match validate_record(record, schema, key) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_fetched
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn transport_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let seen = self.consecutive_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= MAX_CONSECUTIVE_ERRORS && !self.disabled.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: remote result store {} failed {seen} times in a row; \
                 disabling the remote tier for this process (simulating locally)",
                self.addr
            );
        }
    }

    /// One `Connection: close` HTTP exchange. Write methods are signed
    /// with the keyed request tag when this client holds a token.
    fn request(&self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        // Sign only requests bound for the write endpoints: reads never
        // need a tag, and hashing a large `/batch` prefetch body (or
        // handing observers tags over known plaintexts) for an endpoint
        // that ignores the header would be pure waste.
        let writes = method == "PUT" || path == "/batch-put";
        let auth = match &self.token {
            Some(secret) if writes => format!(
                "X-DRI-Token: {}\r\n",
                crate::auth::sign_hex(secret, method, path, body)
            ),
            _ => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\n\
             Host: {}\r\n\
             {auth}Content-Length: {}\r\n\
             Connection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(&mut stream)
    }
}

/// Wire size of one `/batch-put` frame for `entry`:
/// `[kind_len:u8][kind][schema:u32][key:u128][record_len:u64][record]`.
fn push_frame_len(entry: &(&str, u32, u128, &[u8])) -> usize {
    1 + entry.0.len() + 4 + 16 + 8 + entry.3.len()
}

/// Where the push chunk starting at `start` ends: at most `chunk`
/// entries **and** at most `body_budget` body bytes — whichever bites
/// first — but always at least one entry, however large (the server
/// answers for an oversized record per-entry rather than the transport
/// layer failing the exchange).
fn plan_push_chunk_end(
    entries: &[(&str, u32, u128, &[u8])],
    start: usize,
    chunk: usize,
    body_budget: usize,
) -> usize {
    let mut end = start;
    let mut body_bytes = 0usize;
    while end < entries.len() && end - start < chunk {
        let frame_bytes = push_frame_len(&entries[end]);
        if end > start && body_bytes + frame_bytes > body_budget {
            break;
        }
        body_bytes += frame_bytes;
        end += 1;
    }
    end
}

/// Splits one `[status][len][bytes]` batch frame off `cursor`:
/// `Some((Some(bytes), rest))` for a found record, `Some((None, rest))`
/// for a miss frame, `None` when the buffer is too short.
#[allow(clippy::type_complexity)]
fn take_frame(cursor: &[u8]) -> Option<(Option<Vec<u8>>, &[u8])> {
    let (&status, rest) = cursor.split_first()?;
    let (len, rest) = rest.split_at_checked(8)?;
    let len = u64::from_le_bytes(len.try_into().ok()?) as usize;
    let (bytes, rest) = rest.split_at_checked(len)?;
    match status {
        1 => Some((Some(bytes.to_vec()), rest)),
        0 if len == 0 => Some((None, rest)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_normalization() {
        assert_eq!(
            RemoteStore::new("http://10.0.0.1:7171/").addr(),
            "10.0.0.1:7171"
        );
        assert_eq!(RemoteStore::new("localhost:80").addr(), "localhost:80");
    }

    #[test]
    fn frames_parse_and_reject_short_buffers() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&3u64.to_le_bytes());
        buf.extend_from_slice(b"abc");
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        let (first, rest) = take_frame(&buf).expect("hit frame");
        assert_eq!(first.as_deref(), Some(&b"abc"[..]));
        let (second, rest) = take_frame(rest).expect("miss frame");
        assert_eq!(second, None);
        assert!(rest.is_empty());
        assert!(take_frame(&buf[..5]).is_none(), "truncated header");
        assert!(take_frame(&buf[..10]).is_none(), "truncated payload");
    }

    #[test]
    fn push_chunks_split_on_count_and_body_bytes() {
        let small = vec![0u8; 10];
        let big = vec![0u8; 100];
        let entries: Vec<(&str, u32, u128, &[u8])> = vec![
            ("dri", 1, 1, &small),
            ("dri", 1, 2, &small),
            ("dri", 1, 3, &big),
            ("dri", 1, 4, &small),
        ];
        // Count bites first with a generous byte budget.
        assert_eq!(plan_push_chunk_end(&entries, 0, 2, usize::MAX), 2);
        // Bytes bite first: two small frames (42 bytes each) fit a
        // 90-byte budget, the big third frame (132 bytes) does not.
        assert_eq!(plan_push_chunk_end(&entries, 0, 100, 90), 2);
        // An over-budget entry still travels — alone.
        assert_eq!(plan_push_chunk_end(&entries, 2, 100, 90), 3);
        // Tail chunk ends at the slice end.
        assert_eq!(plan_push_chunk_end(&entries, 3, 100, 90), 4);
        assert_eq!(push_frame_len(&entries[0]), 1 + 3 + 4 + 16 + 8 + 10);
    }

    #[test]
    fn breaker_opens_after_repeated_failures() {
        // Reserved TEST-NET-3 address: connects fail fast with unreachable
        // (or time out) — either way a transport error, never a server.
        let remote = RemoteStore::new("127.0.0.1:1"); // closed port
        for _ in 0..MAX_CONSECUTIVE_ERRORS {
            assert_eq!(remote.fetch("dri", 1, 1), None);
        }
        assert!(remote.is_disabled());
        let errors_at_open = remote.stats().errors;
        // Once open, calls are absorbed without touching the network.
        assert_eq!(remote.fetch("dri", 1, 2), None);
        assert_eq!(remote.stats().errors, errors_at_open);
        assert_eq!(
            remote.stats().requests,
            u64::from(MAX_CONSECUTIVE_ERRORS) + 1
        );
    }
}
