//! `dri-serve` — serve a result-store root over HTTP.
//!
//! ```text
//! dri-serve --store /var/cache/dri            # 127.0.0.1:7171, DRI_THREADS workers
//! dri-serve --store ... --addr 0.0.0.0:7171   # expose to the rack
//! dri-serve --addr 127.0.0.1:0                # ephemeral port (printed)
//! DRI_TOKEN=s3cret dri-serve --store ...      # accept authenticated pushes
//! ```
//!
//! Workers then point `DRI_REMOTE` at the printed address and replay
//! warm grids with zero local simulations; workers holding the same
//! `DRI_TOKEN` additionally push what they simulate (`DRI_PUSH=1`), so
//! the store fills fleet-wide instead of per machine.

use std::process::ExitCode;
use std::sync::Arc;

use std::time::Duration;

use dri_serve::{
    default_workers, server::lease_ttl_from_env, FaultSpec, JournalConfig, Server, TOKEN_ENV,
};
use dri_store::ResultStore;

/// `DRI_JOURNAL=1` puts the write path through the group-commit journal:
/// pushes land as one fsynced segment append per batch (acked only after
/// the fsync) and a background compactor drains sealed segments into
/// record files. Unset/0 keeps the original per-record atomic writes.
const JOURNAL_ENV: &str = "DRI_JOURNAL";
/// Commit window (ms) single `PUT`s wait to coalesce into one fsync
/// (default 2; 0 = fsync immediately). Batch puts never wait.
const COMMIT_WINDOW_ENV: &str = "DRI_COMMIT_WINDOW_MS";
/// Interval (ms) between background compaction passes (default 250).
const COMPACT_INTERVAL_ENV: &str = "DRI_JOURNAL_COMPACT_MS";

/// Parses a millisecond env knob, keeping `default` on absent/bad input.
fn env_ms(name: &str, default: Duration) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(default)
}

/// Resolves the journal env knobs: `None` unless `DRI_JOURNAL=1`.
fn journal_from_env() -> Option<JournalConfig> {
    let raw = std::env::var(JOURNAL_ENV).ok()?;
    if raw.trim() != "1" {
        return None;
    }
    let defaults = JournalConfig::default();
    Some(JournalConfig {
        commit_window: env_ms(COMMIT_WINDOW_ENV, defaults.commit_window),
        compact_interval: env_ms(COMPACT_INTERVAL_ENV, defaults.compact_interval),
        ..defaults
    })
}

const USAGE: &str = "\
usage: dri-serve [--store DIR] [--addr HOST:PORT] [--workers N] [--token SECRET]

Serves a dri-store root as an HTTP result service (GET /healthz,
GET /stats, GET /record/<kind>/v<schema>/<key>, POST /batch; with a
token also PUT /record/..., POST /batch-put, and the campaign
scheduler's POST /lease/claim|renew|complete). Runs until killed.

options:
  --store DIR       store root (default: the DRI_STORE environment variable)
  --addr HOST:PORT  bind address (default: 127.0.0.1:7171; port 0 = ephemeral)
  --workers N       connection worker threads (default: DRI_THREADS, else
                    the machine's available parallelism)
  --token SECRET    shared write-path secret (default: the DRI_TOKEN
                    environment variable; prefer the variable — argv is
                    visible to every local process). Absent = read-only.
  --help            this text

environment:
  DRI_EVENT_LOOP    0 = thread-per-connection front-end instead of the
                    default epoll event loop (Linux only; other
                    platforms always use the thread pool)
  DRI_SHARDS        the fleet this server belongs to (addr1,addr2,...),
                    advertised in /stats and /metrics; clients route by
                    consistent-hashing record keys across the same list
  DRI_REPLICAS      owners per record key in the fleet (default 2)
  DRI_LEASE_TTL_MS  lease TTL granted to --steal workers (default 30000)
  DRI_JOURNAL       1 = group-commit write journal: one fsync per push
                    batch, acked after the fsync, drained to record files
                    by a background compactor (default: off)
  DRI_COMMIT_WINDOW_MS
                    ms a single PUT waits to share its fsync with
                    concurrent writers (default 2; 0 = fsync immediately)
  DRI_JOURNAL_COMPACT_MS
                    ms between background compaction passes (default 250)
  DRI_FAULT         chaos spec, e.g. drop:7,delay:5:40,503:9,torn:11,
                    crash:17 — deterministic fault injection for tests;
                    never set this on a production server";

struct Args {
    store: Option<String>,
    addr: String,
    workers: usize,
    token: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        store: std::env::var("DRI_STORE").ok().filter(|s| !s.is_empty()),
        addr: "127.0.0.1:7171".to_owned(),
        workers: default_workers(),
        token: std::env::var(TOKEN_ENV).ok().filter(|s| !s.is_empty()),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => {
                parsed.store = Some(it.next().ok_or("--store needs a directory")?.clone());
            }
            "--addr" => {
                parsed.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--workers" => {
                let raw = it.next().ok_or("--workers needs a positive integer")?;
                parsed.workers = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{raw}`"))?;
            }
            "--token" => {
                // An empty value means "no token", exactly like the env
                // path — otherwise the banner would claim a write path
                // the server (which filters empty secrets) never enables.
                parsed.token = Some(it.next().ok_or("--token needs a secret")?.clone())
                    .filter(|t| !t.is_empty());
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = args.store else {
        eprintln!("error: no store root (pass --store DIR or set DRI_STORE)\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let store = match ResultStore::open(&root) {
        Ok(store) => Arc::new(store),
        Err(err) => {
            eprintln!("error: cannot open store at `{root}`: {err}");
            return ExitCode::FAILURE;
        }
    };
    let usage = store.disk_usage();
    let writable = args.token.is_some();
    let faults = match FaultSpec::from_env() {
        Ok(faults) => faults,
        Err(msg) => {
            // A typo'd chaos spec must fail loudly at startup, not
            // silently run a faultless "chaos" test.
            eprintln!("error: bad DRI_FAULT: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let fault_banner = faults.as_ref().map(FaultSpec::describe);
    let journal = journal_from_env();
    let journal_banner = journal.as_ref().map(|config| {
        format!(
            "group-commit journal on (commit window {} ms, compact every {} ms)",
            config.commit_window.as_millis(),
            config.compact_interval.as_millis()
        )
    });
    let server = match Server::bind_with_journal(
        Arc::clone(&store),
        args.addr.as_str(),
        args.workers,
        args.token,
        lease_ttl_from_env(),
        faults,
        journal,
    ) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: cannot bind `{}`: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(spec) = fault_banner {
        eprintln!("dri-serve: FAULT INJECTION ACTIVE ({spec}) — chaos-test mode");
    }
    if let Some(line) = journal_banner {
        eprintln!("dri-serve: {line}");
    }
    if let Some((shards, replicas)) = dri_serve::sharded::fleet_membership_from_env() {
        eprintln!("dri-serve: fleet member ({shards} shards, {replicas} replicas per key)");
    }
    // The listening line goes to stdout so scripts can capture the
    // (possibly ephemeral) port; progress/diagnostics stay on stderr.
    println!("dri-serve: listening on http://{}", server.addr());
    eprintln!(
        "dri-serve: store {root} ({} records, {} bytes), {} front-end, {} workers; {} — Ctrl-C to stop",
        usage.records,
        usage.bytes,
        if dri_serve::server::event_loop_from_env() {
            "event-loop"
        } else {
            "thread-pool"
        },
        args.workers,
        if writable {
            "accepting authenticated pushes (DRI_TOKEN)"
        } else {
            "read-only (set DRI_TOKEN to accept pushes)"
        }
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
