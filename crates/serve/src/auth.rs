//! Shared-secret request authentication for the write path.
//!
//! The build environment is offline and dependency-free, so there is no
//! crypto crate to lean on. Instead of sending the secret itself, a
//! pushing client proves knowledge of it with a **keyed request tag**: an
//! HMAC-style double hash, built from the same fixed-constant 128-bit
//! FNV-1a primitive ([`dri_store::KeyHasher`]) the store keys use, over
//! the request's method, path, and full body:
//!
//! ```text
//! tag = H(0x5c ‖ secret ‖ H(0x36 ‖ secret ‖ method ‖ path ‖ len(body) ‖ body))
//! ```
//!
//! The tag travels in the [`TOKEN_HEADER`] request header as 32 hex
//! digits, and the server recomputes it from the secret it holds
//! (`DRI_TOKEN`) and the request it actually received — so the secret
//! never crosses the wire, a tag cannot be replayed against a *different*
//! record or endpoint, and a tampered body fails verification. The
//! comparison is constant-time ([`constant_time_eq_u128`]).
//!
//! **Scope.** FNV-1a is not a cryptographic hash; this construction
//! authenticates *trusted workers on a trusted network* (the fleet the
//! README's distributed-campaign section describes) and keeps a confused
//! or misconfigured client from corrupting a shared store. It is not a
//! defense against an adversary with wire access — front the service
//! with real TLS/auth infrastructure for that.

use dri_store::KeyHasher;

/// Environment variable holding the shared write-path secret. Unset (or
/// empty) on the server means writes are disabled entirely (`405`);
/// unset on a worker means pushes are rejected by the server (`401`).
pub const TOKEN_ENV: &str = "DRI_TOKEN";

/// Request header carrying the keyed request tag (32 hex digits).
pub const TOKEN_HEADER: &str = "x-dri-token";

/// Domain-separation byte starting the inner hash (HMAC's `ipad` role).
const INNER_TAG: u8 = 0x36;
/// Domain-separation byte starting the outer hash (HMAC's `opad` role).
const OUTER_TAG: u8 = 0x5c;

/// Computes the keyed request tag for (`method`, `path`, `body`) under
/// `secret` (see the module docs for the construction).
pub fn sign(secret: &str, method: &str, path: &str, body: &[u8]) -> u128 {
    let mut inner = KeyHasher::new();
    inner.write_u8(INNER_TAG);
    inner.write_str(secret);
    inner.write_str(method);
    inner.write_str(path);
    inner.write_u64(body.len() as u64);
    inner.write_bytes(body);
    let mut outer = KeyHasher::new();
    outer.write_u8(OUTER_TAG);
    outer.write_str(secret);
    outer.write_u128(inner.finish());
    outer.finish()
}

/// [`sign`] rendered the way it travels: 32 lowercase hex digits.
pub fn sign_hex(secret: &str, method: &str, path: &str, body: &[u8]) -> String {
    format!("{:032x}", sign(secret, method, path, body))
}

/// Parses a presented tag (exactly 32 hex digits; case-insensitive).
pub fn parse_tag(presented: &str) -> Option<u128> {
    let presented = presented.trim();
    if presented.len() != 32 {
        return None;
    }
    u128::from_str_radix(presented, 16).ok()
}

/// Constant-time equality of two tags: the comparison cost never depends
/// on *where* the values diverge, so response timing leaks nothing about
/// how close a forged tag came.
pub fn constant_time_eq_u128(a: u128, b: u128) -> bool {
    let diff = a ^ b;
    let mut acc = 0u8;
    for byte in diff.to_le_bytes() {
        acc |= byte;
    }
    acc == 0
}

/// Verifies a presented header value against the expected tag for this
/// request. `None`/malformed tags fail closed.
pub fn verify(
    secret: &str,
    method: &str,
    path: &str,
    body: &[u8],
    presented: Option<&str>,
) -> bool {
    let Some(presented) = presented.and_then(parse_tag) else {
        return false;
    };
    constant_time_eq_u128(sign(secret, method, path, body), presented)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_deterministic_and_input_sensitive() {
        let tag = sign("secret", "PUT", "/record/dri/v1/00ff", b"payload");
        assert_eq!(
            tag,
            sign("secret", "PUT", "/record/dri/v1/00ff", b"payload")
        );
        for (secret, method, path, body) in [
            ("secret2", "PUT", "/record/dri/v1/00ff", &b"payload"[..]),
            ("secret", "POST", "/record/dri/v1/00ff", b"payload"),
            ("secret", "PUT", "/record/dri/v1/00fe", b"payload"),
            ("secret", "PUT", "/record/dri/v1/00ff", b"payloae"),
            ("secret", "PUT", "/record/dri/v1/00ff", b""),
        ] {
            assert_ne!(tag, sign(secret, method, path, body), "{method} {path}");
        }
    }

    #[test]
    fn hex_roundtrip_and_verification() {
        let hex = sign_hex("s", "PUT", "/p", b"b");
        assert_eq!(hex.len(), 32);
        assert_eq!(parse_tag(&hex), Some(sign("s", "PUT", "/p", b"b")));
        assert!(verify("s", "PUT", "/p", b"b", Some(&hex)));
        assert!(verify("s", "PUT", "/p", b"b", Some(&hex.to_uppercase())));
        assert!(!verify("s", "PUT", "/p", b"x", Some(&hex)), "other body");
        assert!(!verify("t", "PUT", "/p", b"b", Some(&hex)), "other secret");
        assert!(!verify("s", "PUT", "/p", b"b", None), "missing header");
        assert!(!verify("s", "PUT", "/p", b"b", Some("zz")), "malformed tag");
    }

    #[test]
    fn constant_time_compare_agrees_with_plain_equality() {
        assert!(constant_time_eq_u128(0, 0));
        assert!(constant_time_eq_u128(u128::MAX, u128::MAX));
        assert!(!constant_time_eq_u128(1, 0));
        assert!(!constant_time_eq_u128(1 << 127, 0));
    }
}
